# Empty compiler generated dependencies file for fastmon_tests.
# This may be replaced when dependencies are built.
