
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aging.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_aging.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_aging.cpp.o.d"
  "/root/repo/tests/test_atpg.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_atpg.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_atpg.cpp.o.d"
  "/root/repo/tests/test_bench_io.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_bench_io.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_bench_io.cpp.o.d"
  "/root/repo/tests/test_bist_metrics.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_bist_metrics.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_bist_metrics.cpp.o.d"
  "/root/repo/tests/test_cell_library.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_cell_library.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_cell_library.cpp.o.d"
  "/root/repo/tests/test_classify.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_classify.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_classify.cpp.o.d"
  "/root/repo/tests/test_clock_gen.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_clock_gen.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_clock_gen.cpp.o.d"
  "/root/repo/tests/test_discretize.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_discretize.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_discretize.cpp.o.d"
  "/root/repo/tests/test_fault_report.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_fault_report.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_fault_report.cpp.o.d"
  "/root/repo/tests/test_fault_sim.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_fault_sim.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_fault_sim.cpp.o.d"
  "/root/repo/tests/test_file_io.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_file_io.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_file_io.cpp.o.d"
  "/root/repo/tests/test_flow.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_flow.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_flow.cpp.o.d"
  "/root/repo/tests/test_flow_structures.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_flow_structures.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_flow_structures.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_ilp.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_ilp.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_ilp.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interval.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_interval.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_interval.cpp.o.d"
  "/root/repo/tests/test_logic_sim.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_logic_sim.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_logic_sim.cpp.o.d"
  "/root/repo/tests/test_lp.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_lp.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_lp.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_monitor.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_overhead_validate.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_overhead_validate.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_overhead_validate.cpp.o.d"
  "/root/repo/tests/test_podem.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_podem.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_podem.cpp.o.d"
  "/root/repo/tests/test_robustness_policy.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_robustness_policy.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_robustness_policy.cpp.o.d"
  "/root/repo/tests/test_scan.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_scan.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_scan.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_sdf.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_sdf.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_sdf.cpp.o.d"
  "/root/repo/tests/test_set_cover.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_set_cover.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_set_cover.cpp.o.d"
  "/root/repo/tests/test_stabbing.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_stabbing.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_stabbing.cpp.o.d"
  "/root/repo/tests/test_structures.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_structures.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_structures.cpp.o.d"
  "/root/repo/tests/test_timing.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_timing.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_timing.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_verilog_io.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_verilog_io.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_verilog_io.cpp.o.d"
  "/root/repo/tests/test_wave_sim.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_wave_sim.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_wave_sim.cpp.o.d"
  "/root/repo/tests/test_wave_sim_reference.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_wave_sim_reference.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_wave_sim_reference.cpp.o.d"
  "/root/repo/tests/test_waveform.cpp" "tests/CMakeFiles/fastmon_tests.dir/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/fastmon_tests.dir/test_waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastmon_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
