# Empty compiler generated dependencies file for fast_scheduling.
# This may be replaced when dependencies are built.
