file(REMOVE_RECURSE
  "CMakeFiles/fast_scheduling.dir/fast_scheduling.cpp.o"
  "CMakeFiles/fast_scheduling.dir/fast_scheduling.cpp.o.d"
  "fast_scheduling"
  "fast_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
