# Empty dependencies file for custom_bench.
# This may be replaced when dependencies are built.
