file(REMOVE_RECURSE
  "CMakeFiles/custom_bench.dir/custom_bench.cpp.o"
  "CMakeFiles/custom_bench.dir/custom_bench.cpp.o.d"
  "custom_bench"
  "custom_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
