
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bist_fast.cpp" "examples/CMakeFiles/bist_fast.dir/bist_fast.cpp.o" "gcc" "examples/CMakeFiles/bist_fast.dir/bist_fast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastmon_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
