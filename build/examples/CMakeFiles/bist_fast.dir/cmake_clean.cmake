file(REMOVE_RECURSE
  "CMakeFiles/bist_fast.dir/bist_fast.cpp.o"
  "CMakeFiles/bist_fast.dir/bist_fast.cpp.o.d"
  "bist_fast"
  "bist_fast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
