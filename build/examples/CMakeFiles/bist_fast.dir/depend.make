# Empty dependencies file for bist_fast.
# This may be replaced when dependencies are built.
