file(REMOVE_RECURSE
  "CMakeFiles/aging_lifecycle.dir/aging_lifecycle.cpp.o"
  "CMakeFiles/aging_lifecycle.dir/aging_lifecycle.cpp.o.d"
  "aging_lifecycle"
  "aging_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
