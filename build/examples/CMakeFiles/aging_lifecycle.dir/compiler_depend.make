# Empty compiler generated dependencies file for aging_lifecycle.
# This may be replaced when dependencies are built.
