file(REMOVE_RECURSE
  "libfastmon_opt.a"
)
