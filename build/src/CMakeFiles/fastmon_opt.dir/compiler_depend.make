# Empty compiler generated dependencies file for fastmon_opt.
# This may be replaced when dependencies are built.
