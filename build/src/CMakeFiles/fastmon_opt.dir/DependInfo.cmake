
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/ilp.cpp" "src/CMakeFiles/fastmon_opt.dir/opt/ilp.cpp.o" "gcc" "src/CMakeFiles/fastmon_opt.dir/opt/ilp.cpp.o.d"
  "/root/repo/src/opt/lp.cpp" "src/CMakeFiles/fastmon_opt.dir/opt/lp.cpp.o" "gcc" "src/CMakeFiles/fastmon_opt.dir/opt/lp.cpp.o.d"
  "/root/repo/src/opt/set_cover.cpp" "src/CMakeFiles/fastmon_opt.dir/opt/set_cover.cpp.o" "gcc" "src/CMakeFiles/fastmon_opt.dir/opt/set_cover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
