file(REMOVE_RECURSE
  "CMakeFiles/fastmon_opt.dir/opt/ilp.cpp.o"
  "CMakeFiles/fastmon_opt.dir/opt/ilp.cpp.o.d"
  "CMakeFiles/fastmon_opt.dir/opt/lp.cpp.o"
  "CMakeFiles/fastmon_opt.dir/opt/lp.cpp.o.d"
  "CMakeFiles/fastmon_opt.dir/opt/set_cover.cpp.o"
  "CMakeFiles/fastmon_opt.dir/opt/set_cover.cpp.o.d"
  "libfastmon_opt.a"
  "libfastmon_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
