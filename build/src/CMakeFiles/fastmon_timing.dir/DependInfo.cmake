
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/delay_model.cpp" "src/CMakeFiles/fastmon_timing.dir/timing/delay_model.cpp.o" "gcc" "src/CMakeFiles/fastmon_timing.dir/timing/delay_model.cpp.o.d"
  "/root/repo/src/timing/sdf.cpp" "src/CMakeFiles/fastmon_timing.dir/timing/sdf.cpp.o" "gcc" "src/CMakeFiles/fastmon_timing.dir/timing/sdf.cpp.o.d"
  "/root/repo/src/timing/sta.cpp" "src/CMakeFiles/fastmon_timing.dir/timing/sta.cpp.o" "gcc" "src/CMakeFiles/fastmon_timing.dir/timing/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastmon_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
