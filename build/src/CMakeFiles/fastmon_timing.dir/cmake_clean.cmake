file(REMOVE_RECURSE
  "CMakeFiles/fastmon_timing.dir/timing/delay_model.cpp.o"
  "CMakeFiles/fastmon_timing.dir/timing/delay_model.cpp.o.d"
  "CMakeFiles/fastmon_timing.dir/timing/sdf.cpp.o"
  "CMakeFiles/fastmon_timing.dir/timing/sdf.cpp.o.d"
  "CMakeFiles/fastmon_timing.dir/timing/sta.cpp.o"
  "CMakeFiles/fastmon_timing.dir/timing/sta.cpp.o.d"
  "libfastmon_timing.a"
  "libfastmon_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
