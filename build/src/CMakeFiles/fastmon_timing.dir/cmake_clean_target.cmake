file(REMOVE_RECURSE
  "libfastmon_timing.a"
)
