# Empty compiler generated dependencies file for fastmon_timing.
# This may be replaced when dependencies are built.
