# Empty dependencies file for fastmon_netlist.
# This may be replaced when dependencies are built.
