file(REMOVE_RECURSE
  "libfastmon_netlist.a"
)
