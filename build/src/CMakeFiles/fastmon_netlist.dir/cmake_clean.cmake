file(REMOVE_RECURSE
  "CMakeFiles/fastmon_netlist.dir/netlist/bench_io.cpp.o"
  "CMakeFiles/fastmon_netlist.dir/netlist/bench_io.cpp.o.d"
  "CMakeFiles/fastmon_netlist.dir/netlist/builder.cpp.o"
  "CMakeFiles/fastmon_netlist.dir/netlist/builder.cpp.o.d"
  "CMakeFiles/fastmon_netlist.dir/netlist/cell_library.cpp.o"
  "CMakeFiles/fastmon_netlist.dir/netlist/cell_library.cpp.o.d"
  "CMakeFiles/fastmon_netlist.dir/netlist/generator.cpp.o"
  "CMakeFiles/fastmon_netlist.dir/netlist/generator.cpp.o.d"
  "CMakeFiles/fastmon_netlist.dir/netlist/iscas_data.cpp.o"
  "CMakeFiles/fastmon_netlist.dir/netlist/iscas_data.cpp.o.d"
  "CMakeFiles/fastmon_netlist.dir/netlist/netlist.cpp.o"
  "CMakeFiles/fastmon_netlist.dir/netlist/netlist.cpp.o.d"
  "CMakeFiles/fastmon_netlist.dir/netlist/structures.cpp.o"
  "CMakeFiles/fastmon_netlist.dir/netlist/structures.cpp.o.d"
  "CMakeFiles/fastmon_netlist.dir/netlist/verilog_io.cpp.o"
  "CMakeFiles/fastmon_netlist.dir/netlist/verilog_io.cpp.o.d"
  "libfastmon_netlist.a"
  "libfastmon_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
