file(REMOVE_RECURSE
  "CMakeFiles/fastmon_schedule.dir/schedule/clock_gen.cpp.o"
  "CMakeFiles/fastmon_schedule.dir/schedule/clock_gen.cpp.o.d"
  "CMakeFiles/fastmon_schedule.dir/schedule/discretize.cpp.o"
  "CMakeFiles/fastmon_schedule.dir/schedule/discretize.cpp.o.d"
  "CMakeFiles/fastmon_schedule.dir/schedule/freq_select.cpp.o"
  "CMakeFiles/fastmon_schedule.dir/schedule/freq_select.cpp.o.d"
  "CMakeFiles/fastmon_schedule.dir/schedule/pattern_config_select.cpp.o"
  "CMakeFiles/fastmon_schedule.dir/schedule/pattern_config_select.cpp.o.d"
  "CMakeFiles/fastmon_schedule.dir/schedule/robustness.cpp.o"
  "CMakeFiles/fastmon_schedule.dir/schedule/robustness.cpp.o.d"
  "CMakeFiles/fastmon_schedule.dir/schedule/scan.cpp.o"
  "CMakeFiles/fastmon_schedule.dir/schedule/scan.cpp.o.d"
  "CMakeFiles/fastmon_schedule.dir/schedule/schedule.cpp.o"
  "CMakeFiles/fastmon_schedule.dir/schedule/schedule.cpp.o.d"
  "CMakeFiles/fastmon_schedule.dir/schedule/validate.cpp.o"
  "CMakeFiles/fastmon_schedule.dir/schedule/validate.cpp.o.d"
  "libfastmon_schedule.a"
  "libfastmon_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
