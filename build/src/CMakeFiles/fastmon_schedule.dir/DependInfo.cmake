
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/clock_gen.cpp" "src/CMakeFiles/fastmon_schedule.dir/schedule/clock_gen.cpp.o" "gcc" "src/CMakeFiles/fastmon_schedule.dir/schedule/clock_gen.cpp.o.d"
  "/root/repo/src/schedule/discretize.cpp" "src/CMakeFiles/fastmon_schedule.dir/schedule/discretize.cpp.o" "gcc" "src/CMakeFiles/fastmon_schedule.dir/schedule/discretize.cpp.o.d"
  "/root/repo/src/schedule/freq_select.cpp" "src/CMakeFiles/fastmon_schedule.dir/schedule/freq_select.cpp.o" "gcc" "src/CMakeFiles/fastmon_schedule.dir/schedule/freq_select.cpp.o.d"
  "/root/repo/src/schedule/pattern_config_select.cpp" "src/CMakeFiles/fastmon_schedule.dir/schedule/pattern_config_select.cpp.o" "gcc" "src/CMakeFiles/fastmon_schedule.dir/schedule/pattern_config_select.cpp.o.d"
  "/root/repo/src/schedule/robustness.cpp" "src/CMakeFiles/fastmon_schedule.dir/schedule/robustness.cpp.o" "gcc" "src/CMakeFiles/fastmon_schedule.dir/schedule/robustness.cpp.o.d"
  "/root/repo/src/schedule/scan.cpp" "src/CMakeFiles/fastmon_schedule.dir/schedule/scan.cpp.o" "gcc" "src/CMakeFiles/fastmon_schedule.dir/schedule/scan.cpp.o.d"
  "/root/repo/src/schedule/schedule.cpp" "src/CMakeFiles/fastmon_schedule.dir/schedule/schedule.cpp.o" "gcc" "src/CMakeFiles/fastmon_schedule.dir/schedule/schedule.cpp.o.d"
  "/root/repo/src/schedule/validate.cpp" "src/CMakeFiles/fastmon_schedule.dir/schedule/validate.cpp.o" "gcc" "src/CMakeFiles/fastmon_schedule.dir/schedule/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastmon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
