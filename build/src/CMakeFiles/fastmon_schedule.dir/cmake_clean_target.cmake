file(REMOVE_RECURSE
  "libfastmon_schedule.a"
)
