# Empty dependencies file for fastmon_schedule.
# This may be replaced when dependencies are built.
