# Empty dependencies file for fastmon_fault.
# This may be replaced when dependencies are built.
