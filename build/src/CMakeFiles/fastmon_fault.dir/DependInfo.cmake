
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/classify.cpp" "src/CMakeFiles/fastmon_fault.dir/fault/classify.cpp.o" "gcc" "src/CMakeFiles/fastmon_fault.dir/fault/classify.cpp.o.d"
  "/root/repo/src/fault/detection_range.cpp" "src/CMakeFiles/fastmon_fault.dir/fault/detection_range.cpp.o" "gcc" "src/CMakeFiles/fastmon_fault.dir/fault/detection_range.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/CMakeFiles/fastmon_fault.dir/fault/fault.cpp.o" "gcc" "src/CMakeFiles/fastmon_fault.dir/fault/fault.cpp.o.d"
  "/root/repo/src/fault/fault_report.cpp" "src/CMakeFiles/fastmon_fault.dir/fault/fault_report.cpp.o" "gcc" "src/CMakeFiles/fastmon_fault.dir/fault/fault_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
