file(REMOVE_RECURSE
  "libfastmon_fault.a"
)
