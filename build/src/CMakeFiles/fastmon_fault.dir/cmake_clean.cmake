file(REMOVE_RECURSE
  "CMakeFiles/fastmon_fault.dir/fault/classify.cpp.o"
  "CMakeFiles/fastmon_fault.dir/fault/classify.cpp.o.d"
  "CMakeFiles/fastmon_fault.dir/fault/detection_range.cpp.o"
  "CMakeFiles/fastmon_fault.dir/fault/detection_range.cpp.o.d"
  "CMakeFiles/fastmon_fault.dir/fault/fault.cpp.o"
  "CMakeFiles/fastmon_fault.dir/fault/fault.cpp.o.d"
  "CMakeFiles/fastmon_fault.dir/fault/fault_report.cpp.o"
  "CMakeFiles/fastmon_fault.dir/fault/fault_report.cpp.o.d"
  "libfastmon_fault.a"
  "libfastmon_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
