file(REMOVE_RECURSE
  "CMakeFiles/fastmon_sim.dir/sim/fault_sim.cpp.o"
  "CMakeFiles/fastmon_sim.dir/sim/fault_sim.cpp.o.d"
  "CMakeFiles/fastmon_sim.dir/sim/logic_sim.cpp.o"
  "CMakeFiles/fastmon_sim.dir/sim/logic_sim.cpp.o.d"
  "CMakeFiles/fastmon_sim.dir/sim/wave_sim.cpp.o"
  "CMakeFiles/fastmon_sim.dir/sim/wave_sim.cpp.o.d"
  "CMakeFiles/fastmon_sim.dir/sim/waveform.cpp.o"
  "CMakeFiles/fastmon_sim.dir/sim/waveform.cpp.o.d"
  "libfastmon_sim.a"
  "libfastmon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
