# Empty dependencies file for fastmon_sim.
# This may be replaced when dependencies are built.
