file(REMOVE_RECURSE
  "libfastmon_sim.a"
)
