
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fault_sim.cpp" "src/CMakeFiles/fastmon_sim.dir/sim/fault_sim.cpp.o" "gcc" "src/CMakeFiles/fastmon_sim.dir/sim/fault_sim.cpp.o.d"
  "/root/repo/src/sim/logic_sim.cpp" "src/CMakeFiles/fastmon_sim.dir/sim/logic_sim.cpp.o" "gcc" "src/CMakeFiles/fastmon_sim.dir/sim/logic_sim.cpp.o.d"
  "/root/repo/src/sim/wave_sim.cpp" "src/CMakeFiles/fastmon_sim.dir/sim/wave_sim.cpp.o" "gcc" "src/CMakeFiles/fastmon_sim.dir/sim/wave_sim.cpp.o.d"
  "/root/repo/src/sim/waveform.cpp" "src/CMakeFiles/fastmon_sim.dir/sim/waveform.cpp.o" "gcc" "src/CMakeFiles/fastmon_sim.dir/sim/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastmon_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
