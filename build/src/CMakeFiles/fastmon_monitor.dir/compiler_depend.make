# Empty compiler generated dependencies file for fastmon_monitor.
# This may be replaced when dependencies are built.
