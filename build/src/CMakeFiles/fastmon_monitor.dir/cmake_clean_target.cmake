file(REMOVE_RECURSE
  "libfastmon_monitor.a"
)
