file(REMOVE_RECURSE
  "CMakeFiles/fastmon_monitor.dir/monitor/aging.cpp.o"
  "CMakeFiles/fastmon_monitor.dir/monitor/aging.cpp.o.d"
  "CMakeFiles/fastmon_monitor.dir/monitor/monitor.cpp.o"
  "CMakeFiles/fastmon_monitor.dir/monitor/monitor.cpp.o.d"
  "CMakeFiles/fastmon_monitor.dir/monitor/overhead.cpp.o"
  "CMakeFiles/fastmon_monitor.dir/monitor/overhead.cpp.o.d"
  "CMakeFiles/fastmon_monitor.dir/monitor/placement.cpp.o"
  "CMakeFiles/fastmon_monitor.dir/monitor/placement.cpp.o.d"
  "CMakeFiles/fastmon_monitor.dir/monitor/policy.cpp.o"
  "CMakeFiles/fastmon_monitor.dir/monitor/policy.cpp.o.d"
  "CMakeFiles/fastmon_monitor.dir/monitor/shifting.cpp.o"
  "CMakeFiles/fastmon_monitor.dir/monitor/shifting.cpp.o.d"
  "libfastmon_monitor.a"
  "libfastmon_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
