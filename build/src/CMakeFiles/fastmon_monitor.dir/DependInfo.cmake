
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/aging.cpp" "src/CMakeFiles/fastmon_monitor.dir/monitor/aging.cpp.o" "gcc" "src/CMakeFiles/fastmon_monitor.dir/monitor/aging.cpp.o.d"
  "/root/repo/src/monitor/monitor.cpp" "src/CMakeFiles/fastmon_monitor.dir/monitor/monitor.cpp.o" "gcc" "src/CMakeFiles/fastmon_monitor.dir/monitor/monitor.cpp.o.d"
  "/root/repo/src/monitor/overhead.cpp" "src/CMakeFiles/fastmon_monitor.dir/monitor/overhead.cpp.o" "gcc" "src/CMakeFiles/fastmon_monitor.dir/monitor/overhead.cpp.o.d"
  "/root/repo/src/monitor/placement.cpp" "src/CMakeFiles/fastmon_monitor.dir/monitor/placement.cpp.o" "gcc" "src/CMakeFiles/fastmon_monitor.dir/monitor/placement.cpp.o.d"
  "/root/repo/src/monitor/policy.cpp" "src/CMakeFiles/fastmon_monitor.dir/monitor/policy.cpp.o" "gcc" "src/CMakeFiles/fastmon_monitor.dir/monitor/policy.cpp.o.d"
  "/root/repo/src/monitor/shifting.cpp" "src/CMakeFiles/fastmon_monitor.dir/monitor/shifting.cpp.o" "gcc" "src/CMakeFiles/fastmon_monitor.dir/monitor/shifting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastmon_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
