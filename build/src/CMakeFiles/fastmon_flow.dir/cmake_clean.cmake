file(REMOVE_RECURSE
  "CMakeFiles/fastmon_flow.dir/flow/hdf_flow.cpp.o"
  "CMakeFiles/fastmon_flow.dir/flow/hdf_flow.cpp.o.d"
  "CMakeFiles/fastmon_flow.dir/flow/report.cpp.o"
  "CMakeFiles/fastmon_flow.dir/flow/report.cpp.o.d"
  "libfastmon_flow.a"
  "libfastmon_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
