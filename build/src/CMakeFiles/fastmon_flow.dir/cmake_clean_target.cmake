file(REMOVE_RECURSE
  "libfastmon_flow.a"
)
