# Empty dependencies file for fastmon_flow.
# This may be replaced when dependencies are built.
