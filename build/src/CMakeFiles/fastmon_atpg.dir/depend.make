# Empty dependencies file for fastmon_atpg.
# This may be replaced when dependencies are built.
