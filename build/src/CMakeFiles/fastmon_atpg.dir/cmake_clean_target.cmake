file(REMOVE_RECURSE
  "libfastmon_atpg.a"
)
