
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/bist.cpp" "src/CMakeFiles/fastmon_atpg.dir/atpg/bist.cpp.o" "gcc" "src/CMakeFiles/fastmon_atpg.dir/atpg/bist.cpp.o.d"
  "/root/repo/src/atpg/metrics.cpp" "src/CMakeFiles/fastmon_atpg.dir/atpg/metrics.cpp.o" "gcc" "src/CMakeFiles/fastmon_atpg.dir/atpg/metrics.cpp.o.d"
  "/root/repo/src/atpg/pattern.cpp" "src/CMakeFiles/fastmon_atpg.dir/atpg/pattern.cpp.o" "gcc" "src/CMakeFiles/fastmon_atpg.dir/atpg/pattern.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/CMakeFiles/fastmon_atpg.dir/atpg/podem.cpp.o" "gcc" "src/CMakeFiles/fastmon_atpg.dir/atpg/podem.cpp.o.d"
  "/root/repo/src/atpg/tdf_atpg.cpp" "src/CMakeFiles/fastmon_atpg.dir/atpg/tdf_atpg.cpp.o" "gcc" "src/CMakeFiles/fastmon_atpg.dir/atpg/tdf_atpg.cpp.o.d"
  "/root/repo/src/atpg/tfault_sim.cpp" "src/CMakeFiles/fastmon_atpg.dir/atpg/tfault_sim.cpp.o" "gcc" "src/CMakeFiles/fastmon_atpg.dir/atpg/tfault_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
