file(REMOVE_RECURSE
  "CMakeFiles/fastmon_atpg.dir/atpg/bist.cpp.o"
  "CMakeFiles/fastmon_atpg.dir/atpg/bist.cpp.o.d"
  "CMakeFiles/fastmon_atpg.dir/atpg/metrics.cpp.o"
  "CMakeFiles/fastmon_atpg.dir/atpg/metrics.cpp.o.d"
  "CMakeFiles/fastmon_atpg.dir/atpg/pattern.cpp.o"
  "CMakeFiles/fastmon_atpg.dir/atpg/pattern.cpp.o.d"
  "CMakeFiles/fastmon_atpg.dir/atpg/podem.cpp.o"
  "CMakeFiles/fastmon_atpg.dir/atpg/podem.cpp.o.d"
  "CMakeFiles/fastmon_atpg.dir/atpg/tdf_atpg.cpp.o"
  "CMakeFiles/fastmon_atpg.dir/atpg/tdf_atpg.cpp.o.d"
  "CMakeFiles/fastmon_atpg.dir/atpg/tfault_sim.cpp.o"
  "CMakeFiles/fastmon_atpg.dir/atpg/tfault_sim.cpp.o.d"
  "libfastmon_atpg.a"
  "libfastmon_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
