# Empty dependencies file for fastmon_util.
# This may be replaced when dependencies are built.
