file(REMOVE_RECURSE
  "CMakeFiles/fastmon_util.dir/util/interval.cpp.o"
  "CMakeFiles/fastmon_util.dir/util/interval.cpp.o.d"
  "CMakeFiles/fastmon_util.dir/util/log.cpp.o"
  "CMakeFiles/fastmon_util.dir/util/log.cpp.o.d"
  "CMakeFiles/fastmon_util.dir/util/prng.cpp.o"
  "CMakeFiles/fastmon_util.dir/util/prng.cpp.o.d"
  "CMakeFiles/fastmon_util.dir/util/stats.cpp.o"
  "CMakeFiles/fastmon_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/fastmon_util.dir/util/table.cpp.o"
  "CMakeFiles/fastmon_util.dir/util/table.cpp.o.d"
  "libfastmon_util.a"
  "libfastmon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
