file(REMOVE_RECURSE
  "libfastmon_util.a"
)
