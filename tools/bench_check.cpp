// bench_check — bench-history regression gate for the campaign bench.
//
// run_bench.sh already validates each BENCH_campaign.json in
// isolation; this tool adds memory.  `append` distills a validated
// artifact's demo entry into one JSON line of BENCH_history.jsonl
// (schema fastmon-bench-history-v1), and `check` compares the current
// artifact against the median of the recent comparable history —
// same fast flag and batch width, so a FASTMON_FAST=1 smoke run is
// never judged against full-population numbers.  A metric that drops
// below (1 - tolerance) * median exits non-zero, catching gradual
// perf erosion that any single-run validation is blind to.
//
// The tolerance bands default wide (wall-clock on shared CI runners
// is noisy); ratios like batch_speedup are steadier than absolute
// devices/sec, so they get the tighter band.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/file_lock.hpp"
#include "util/json.hpp"

namespace {

using fastmon::Json;

constexpr const char* kSchema = "fastmon-bench-history-v1";

void print_usage() {
    std::cout <<
        "usage: bench_check <append|check> [options]\n"
        "\n"
        "common options:\n"
        "  --artifact <path>   campaign bench artifact\n"
        "                      (default BENCH_campaign.json)\n"
        "  --history <path>    history ledger, one JSON object per line\n"
        "                      (default BENCH_history.jsonl)\n"
        "  --fast              mark/compare FASTMON_FAST=1 smoke runs\n"
        "\n"
        "append: distill the artifact's demo entry into one history line\n"
        "  --git <describe>    git describe to record (default unknown)\n"
        "\n"
        "check: gate the artifact against the comparable history\n"
        "  --window <n>        newest comparable entries to use\n"
        "                      (default 10)\n"
        "  --min-history <n>   entries required before the gate engages;\n"
        "                      fewer passes with a note (default 3)\n"
        "  --tolerance-speedup <f>  allowed fractional drop in\n"
        "                      batch_speedup / sta_speedup (default 0.4)\n"
        "  --tolerance-dps <f> allowed fractional drop in\n"
        "                      devices_per_sec (default 0.6)\n"
        "\n"
        "exit status: 0 ok, 1 regression, 2 usage / malformed input\n";
}

std::optional<Json> parse_file(const std::string& path, std::string& error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    fastmon::JsonParseError perr;
    std::optional<Json> j = Json::parse(buf.str(), perr);
    if (!j) {
        error = path + ": parse error at line " +
                std::to_string(perr.line) + ": " + perr.message;
        return std::nullopt;
    }
    return j;
}

double num(const Json& j, const char* key, double fallback) {
    const Json* v = j.find(key);
    return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

/// The demo entry of the artifact (entries[0] carries the
/// differential speedups), reduced to the history metrics.
struct DemoPerf {
    int batch_width = 0;
    double devices_per_sec = 0.0;
    double batch_speedup = 0.0;
    double sta_speedup = 0.0;
    double demo_wall_seconds = 0.0;
};

std::optional<DemoPerf> read_demo_perf(const std::string& artifact_path,
                                       std::string& error) {
    const std::optional<Json> doc = parse_file(artifact_path, error);
    if (!doc) return std::nullopt;
    const Json* entries = doc->find("entries");
    if (entries == nullptr || !entries->is_array() ||
        entries->as_array().empty()) {
        error = artifact_path + ": no campaign entries";
        return std::nullopt;
    }
    const Json& demo = entries->as_array().front();
    DemoPerf perf;
    perf.batch_width = static_cast<int>(num(demo, "batch_width", 0.0));
    perf.devices_per_sec = num(demo, "devices_per_sec", 0.0);
    perf.batch_speedup = num(demo, "batch_speedup", 0.0);
    perf.sta_speedup = num(demo, "sta_speedup", 0.0);
    if (const Json* run = demo.find("run"); run != nullptr) {
        perf.demo_wall_seconds = num(*run, "total_wall_seconds", 0.0);
    }
    if (perf.batch_width < 1 || perf.devices_per_sec <= 0.0) {
        error = artifact_path + ": demo entry lacks batch_width / "
                                "devices_per_sec (run the bench first)";
        return std::nullopt;
    }
    return perf;
}

/// Parses the JSONL ledger, skipping blank lines; a malformed line is
/// an error (the ledger is append-only and machine-written, so damage
/// means something is wrong, not "ignore it").
std::optional<std::vector<Json>> read_history(const std::string& path,
                                              std::string& error,
                                              bool missing_ok) {
    std::vector<Json> lines;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (missing_ok) return lines;
        error = "cannot open " + path;
        return std::nullopt;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        fastmon::JsonParseError perr;
        std::optional<Json> j = Json::parse(line, perr);
        if (!j || !j->is_object()) {
            error = path + ":" + std::to_string(lineno) +
                    ": malformed history line (" + perr.message + ")";
            return std::nullopt;
        }
        lines.push_back(std::move(*j));
    }
    return lines;
}

double median(std::vector<double> values) {
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

struct Options {
    std::string command;
    std::string artifact = "BENCH_campaign.json";
    std::string history = "BENCH_history.jsonl";
    std::string git = "unknown";
    bool fast = false;
    std::size_t window = 10;
    std::size_t min_history = 3;
    double tolerance_speedup = 0.4;
    double tolerance_dps = 0.6;
};

bool parse_args(int argc, char** argv, Options& opt) {
    if (argc < 2) return false;
    opt.command = argv[1];
    if (opt.command == "--help" || opt.command == "-h") {
        print_usage();
        std::exit(0);
    }
    if (opt.command != "append" && opt.command != "check") return false;
    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "error: " << argv[i] << " needs a value\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const char* arg = argv[i];
        const char* v = nullptr;
        if (std::strcmp(arg, "--fast") == 0) {
            opt.fast = true;
        } else if (std::strcmp(arg, "--artifact") == 0) {
            if (!(v = need_value(i))) return false;
            opt.artifact = v;
        } else if (std::strcmp(arg, "--history") == 0) {
            if (!(v = need_value(i))) return false;
            opt.history = v;
        } else if (std::strcmp(arg, "--git") == 0) {
            if (!(v = need_value(i))) return false;
            opt.git = v;
        } else if (std::strcmp(arg, "--window") == 0) {
            if (!(v = need_value(i))) return false;
            opt.window = static_cast<std::size_t>(std::atoll(v));
        } else if (std::strcmp(arg, "--min-history") == 0) {
            if (!(v = need_value(i))) return false;
            opt.min_history = static_cast<std::size_t>(std::atoll(v));
        } else if (std::strcmp(arg, "--tolerance-speedup") == 0) {
            if (!(v = need_value(i))) return false;
            opt.tolerance_speedup = std::atof(v);
        } else if (std::strcmp(arg, "--tolerance-dps") == 0) {
            if (!(v = need_value(i))) return false;
            opt.tolerance_dps = std::atof(v);
        } else {
            std::cerr << "error: unknown option " << arg << "\n";
            return false;
        }
    }
    if (opt.window == 0) opt.window = 1;
    return true;
}

int run_append(const Options& opt) {
    std::string error;
    // Exclusive ledger lock: two concurrent bench runs must not
    // interleave their read-check-append cycles (flock is advisory and
    // auto-released if the holder crashes, so a dead run never wedges
    // the ledger).
    const auto lock =
        fastmon::FileLock::exclusive(opt.history + ".lock", &error);
    if (!lock) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }
    const std::optional<DemoPerf> perf = read_demo_perf(opt.artifact, error);
    if (!perf) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }
    Json line = Json::object();
    line.set("schema", kSchema);
    line.set("git", opt.git);
    line.set("fast", opt.fast);
    line.set("batch_width", static_cast<std::int64_t>(perf->batch_width));
    line.set("devices_per_sec", perf->devices_per_sec);
    line.set("batch_speedup", perf->batch_speedup);
    line.set("sta_speedup", perf->sta_speedup);
    line.set("demo_wall_seconds", perf->demo_wall_seconds);
    std::ofstream out(opt.history, std::ios::app | std::ios::binary);
    if (!out || !(out << line.dump(0) << '\n')) {
        std::cerr << "error: cannot append to " << opt.history << "\n";
        return 2;
    }
    std::cout << "bench_check: appended to " << opt.history << ": "
              << line.dump(0) << "\n";
    return 0;
}

int run_check(const Options& opt) {
    std::string error;
    // Same lock as append: a check racing another run's append must see
    // either the full new line or none of it, never a partial write.
    const auto lock =
        fastmon::FileLock::exclusive(opt.history + ".lock", &error);
    if (!lock) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }
    const std::optional<DemoPerf> perf = read_demo_perf(opt.artifact, error);
    if (!perf) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }
    const std::optional<std::vector<Json>> history =
        read_history(opt.history, error, /*missing_ok=*/true);
    if (!history) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }

    // Only entries from the same regime are comparable: the fast flag
    // changes the population and the batch width changes the engine.
    std::vector<const Json*> comparable;
    for (const Json& line : *history) {
        const Json* fast = line.find("fast");
        if (fast == nullptr || !fast->is_bool() ||
            fast->as_bool() != opt.fast) {
            continue;
        }
        if (static_cast<int>(num(line, "batch_width", 0.0)) !=
            perf->batch_width) {
            continue;
        }
        comparable.push_back(&line);
    }
    if (comparable.size() < opt.min_history) {
        std::cout << "bench_check: pass — no comparable history yet ("
                  << comparable.size() << " of " << opt.min_history
                  << " required entries for fast=" << (opt.fast ? 1 : 0)
                  << " width=" << perf->batch_width << ")\n";
        return 0;
    }
    if (comparable.size() > opt.window) {
        comparable.erase(comparable.begin(),
                         comparable.end() -
                             static_cast<std::ptrdiff_t>(opt.window));
    }

    struct Gate {
        const char* key;
        double current;
        double tolerance;
    };
    const Gate gates[] = {
        {"devices_per_sec", perf->devices_per_sec, opt.tolerance_dps},
        {"batch_speedup", perf->batch_speedup, opt.tolerance_speedup},
        {"sta_speedup", perf->sta_speedup, opt.tolerance_speedup},
    };
    bool ok = true;
    for (const Gate& gate : gates) {
        std::vector<double> values;
        for (const Json* line : comparable) {
            const double v = num(*line, gate.key, 0.0);
            if (v > 0.0) values.push_back(v);
        }
        if (values.size() < opt.min_history) {
            std::printf("bench_check: %-16s current %10.2f  (history too "
                        "thin, skipped)\n", gate.key, gate.current);
            continue;
        }
        const double med = median(values);
        const double floor = med * (1.0 - gate.tolerance);
        const bool pass = gate.current >= floor;
        std::printf("bench_check: %-16s current %10.2f  median %10.2f "
                    "(n=%zu)  floor %10.2f  %s\n",
                    gate.key, gate.current, med, values.size(), floor,
                    pass ? "ok" : "REGRESSION");
        ok = ok && pass;
    }
    if (!ok) {
        std::cerr << "bench_check: REGRESSION against " << opt.history
                  << " (window " << comparable.size() << ", fast="
                  << (opt.fast ? 1 : 0) << ", width=" << perf->batch_width
                  << ")\n";
        return 1;
    }
    std::cout << "bench_check: within the tolerance band of "
              << comparable.size() << " comparable run(s)  [OK]\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    if (!parse_args(argc, argv, opt)) {
        print_usage();
        return 2;
    }
    return opt.command == "append" ? run_append(opt) : run_check(opt);
}
