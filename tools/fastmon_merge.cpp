// fastmon_merge — validate and merge shard campaign artifacts.
//
// Takes the per-shard artifacts a fleet run produced (`fastmon_campaign
// --shard i/N --shard-out ...`), validates each one (schema, content
// checksum, campaign fingerprint, device-range coverage, aggregate
// cross-check), and folds the survivors into one campaign report whose
// campaign/aggregate blocks are bit-identical to a single-process run
// of the same campaign.  Damage is never fatal: a missing, corrupt, or
// foreign shard is reported per shard, the merge degrades honestly
// (run.merge + run.status say exactly what is covered), and the exit
// status stays 0 as long as anything at all could be merged —
// mirroring the repo-wide graceful-degradation contract.  Exit 1 means
// no report could be produced; exit 2 is a usage error.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "util/atomic_file.hpp"

namespace {

void print_usage() {
    std::cout <<
        "usage: fastmon_merge [options] <shard.json> [<shard.json> ...]\n"
        "\n"
        "  --out <path>     merged campaign report (default\n"
        "                   merged_report.json)\n"
        "  --strict         exit 1 unless every shard is ok and the merged\n"
        "                   report covers the full population\n"
        "  --quiet          suppress the per-shard status table\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fastmon;
    std::string out_path = "merged_report.json";
    std::vector<std::string> shard_paths;
    bool strict = false;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            print_usage();
            return 0;
        } else if (std::strcmp(arg, "--strict") == 0) {
            strict = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(arg, "--out") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --out needs a value\n";
                return 2;
            }
            out_path = argv[++i];
        } else if (arg[0] == '-') {
            std::cerr << "error: unknown option " << arg
                      << " (--help for usage)\n";
            return 2;
        } else {
            shard_paths.push_back(arg);
        }
    }
    if (shard_paths.empty()) {
        std::cerr << "error: no shard artifacts given (--help for usage)\n";
        return 2;
    }

    const ShardMerge merged = merge_shard_results(shard_paths);

    if (!quiet) {
        for (const ShardStatus& s : merged.shards) {
            std::printf("shard %zu: %-20s %s%s%s\n", s.slot,
                        shard_state_name(s.state), s.path.c_str(),
                        s.detail.empty() ? "" : " — ",
                        s.detail.c_str());
        }
        std::printf("merged: %zu of %zu devices (%s)\n",
                    merged.devices_merged, merged.devices_expected,
                    merged.status.overall());
    }

    if (!merged.mergeable) {
        std::cerr << "error: no valid shard artifacts; nothing to merge\n";
        return 1;
    }
    if (!atomic_write_file(out_path, merged.report.dump(2))) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
    }
    if (!quiet) std::printf("report: %s\n", out_path.c_str());
    if (strict && !merged.complete) {
        std::cerr << "error: --strict and the merge is incomplete\n";
        return 1;
    }
    return 0;
}
