// fastmon_status — pretty-print a live campaign heartbeat sidecar.
//
// Reads the *.heartbeat.json file a telemetry-enabled fastmon_campaign
// run rewrites atomically (util/progress.hpp) and renders it as a
// one-screen status report: state, devices done, throughput, ETA, and
// a per-worker utilization table.  Single-shot by default; --follow
// polls until the writer records a terminal state (anything other
// than "running").  Because the writer uses write-to-temp-then-rename,
// a reader never sees a torn file — at worst a transiently missing
// one, which --follow tolerates.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using fastmon::Json;
using fastmon::TextTable;

void print_usage() {
    std::cout <<
        "usage: fastmon_status [options] <heartbeat.json>\n"
        "\n"
        "  --follow           poll until the campaign reports a terminal\n"
        "                     state (finished / cancelled / degraded)\n"
        "  --interval <sec>   polling period for --follow (default 1)\n"
        "  --stale-after <s>  with --follow, report `stale` and exit 3\n"
        "                     when the heartbeat stops advancing (or the\n"
        "                     file stays unreadable) for this long\n"
        "                     (default 10; 0 waits forever)\n"
        "\n"
        "Reads the heartbeat sidecar written by a fastmon_campaign run\n"
        "with --heartbeat or FASTMON_HEARTBEAT set.  The sidecar is\n"
        "atomically replaced, so a concurrent read never sees a torn\n"
        "file; with --follow a transiently missing file is retried (the\n"
        "file is reopened by path on every poll, so checkpoint/rename\n"
        "cycles and log rotation never wedge the follower).  A writer\n"
        "that dies without a terminal state surfaces as `stale` instead\n"
        "of an infinite wait or a read-error exit.\n";
}

std::optional<Json> read_heartbeat(const std::string& path,
                                   std::string& error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    fastmon::JsonParseError perr;
    std::optional<Json> j = Json::parse(buf.str(), perr);
    if (!j || !j->is_object()) {
        error = path + ": not a JSON object (" + perr.message + ")";
        return std::nullopt;
    }
    return j;
}

double num(const Json& j, const char* key, double fallback = 0.0) {
    const Json* v = j.find(key);
    return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string str(const Json& j, const char* key) {
    const Json* v = j.find(key);
    return (v != nullptr && v->is_string()) ? v->as_string() : "?";
}

std::string format_eta(double seconds) {
    if (seconds < 0.0) return "unknown";
    char buf[64];
    if (seconds >= 3600.0) {
        std::snprintf(buf, sizeof buf, "%.1f h", seconds / 3600.0);
    } else if (seconds >= 60.0) {
        std::snprintf(buf, sizeof buf, "%.1f min", seconds / 60.0);
    } else {
        std::snprintf(buf, sizeof buf, "%.1f s", seconds);
    }
    return buf;
}

void print_heartbeat(const Json& hb) {
    const std::string label = str(hb, "label");
    const std::string state = str(hb, "state");
    const double done = num(hb, "devices_done");
    const double total = num(hb, "devices_total");
    const double resumed = num(hb, "devices_resumed");
    const double pct = total > 0.0 ? 100.0 * done / total : 0.0;

    std::printf("campaign %s: %s  (heartbeat #%.0f, %.1f s elapsed)\n",
                label.c_str(), state.c_str(), num(hb, "sequence"),
                num(hb, "elapsed_seconds"));
    std::printf("devices:  %.0f/%.0f (%.1f%%)", done, total, pct);
    if (resumed > 0.0) std::printf(", %.0f resumed", resumed);
    std::printf("\n");
    std::printf("rate:     %.0f devices/s, eta %s\n",
                num(hb, "throughput_devices_per_sec"),
                format_eta(num(hb, "eta_seconds", -1.0)).c_str());
    const double budget = num(hb, "lane_years_budget");
    const double lane_years = num(hb, "lane_years_done");
    const double settled = num(hb, "lanes_settled_early");
    if (budget > 0.0) {
        std::printf(
            "grid:     %.0f/%.0f lane-years (%.1f%%), "
            "%.0f lanes settled early, %.0f batches\n",
            lane_years, budget, 100.0 * lane_years / budget, settled,
            num(hb, "batches"));
    }

    const Json* workers = hb.find("workers");
    if (workers != nullptr && workers->is_array() &&
        !workers->as_array().empty()) {
        TextTable table({"worker", "devices", "batches", "busy (s)",
                         "util %"});
        std::size_t index = 0;
        for (const Json& w : workers->as_array()) {
            table.begin_row();
            table.cell(index++);
            table.cell(static_cast<long long>(num(w, "devices")));
            table.cell(static_cast<long long>(num(w, "batches")));
            table.cell(num(w, "busy_seconds"), 2);
            table.cell(100.0 * num(w, "utilization"), 1);
        }
        table.print(std::cout);
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::string path;
    bool follow = false;
    double interval = 1.0;
    double stale_after = 10.0;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            print_usage();
            return 0;
        } else if (std::strcmp(arg, "--follow") == 0) {
            follow = true;
        } else if (std::strcmp(arg, "--interval") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --interval needs a value\n";
                return 2;
            }
            interval = std::atof(argv[++i]);
            if (interval <= 0.0) interval = 1.0;
        } else if (std::strcmp(arg, "--stale-after") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --stale-after needs a value\n";
                return 2;
            }
            stale_after = std::atof(argv[++i]);
            if (stale_after < 0.0) stale_after = 0.0;
        } else if (arg[0] == '-') {
            std::cerr << "error: unknown option " << arg
                      << " (--help for usage)\n";
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "error: more than one heartbeat path\n";
            return 2;
        }
    }
    if (path.empty()) {
        print_usage();
        return 2;
    }

    bool printed = false;
    // Staleness: the sidecar's own sequence counter is the liveness
    // signal.  A writer that died leaves a frozen (or missing) file;
    // after stale_after seconds without a new sequence the follower
    // reports `stale` and exits 3 instead of waiting forever.
    double last_sequence = -1.0;
    auto last_advance = std::chrono::steady_clock::now();
    for (;;) {
        std::string error;
        std::optional<Json> hb = read_heartbeat(path, error);
        const auto now = std::chrono::steady_clock::now();
        if (hb) {
            const double sequence = num(*hb, "sequence", -1.0);
            if (sequence != last_sequence) {
                last_sequence = sequence;
                last_advance = now;
            }
            if (printed) std::printf("\n");
            print_heartbeat(*hb);
            printed = true;
            if (!follow || str(*hb, "state") != "running") return 0;
        } else if (!follow) {
            std::cerr << "error: " << error << "\n";
            return 1;
        }
        // else: transient — the writer may not have produced the first
        // snapshot yet, or is mid-rename.  Keep polling (by path: a
        // fresh open every round, never a cached descriptor).
        const double silent =
            std::chrono::duration<double>(now - last_advance).count();
        if (stale_after > 0.0 && silent > stale_after) {
            std::printf("campaign ?: stale — %s for %.0f s%s\n",
                        printed ? "heartbeat frozen"
                                : "no readable heartbeat",
                        silent, printed ? " (writer died?)" : "");
            return 3;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
    }
}
