// fastmon_flow — single-circuit HDF flow CLI.
//
// Reads any read_netlist format (.bench/.v/.aag/.aig), runs the full
// hidden-delay-fault flow (STA -> monitor placement -> ATPG -> fault
// simulation -> detection ranges -> schedule optimization) and prints
// the paper's tables for that circuit.  The ATPG engine is selectable
// on the command line (--atpg podem|sat|auto), making this the
// smallest end-to-end harness for the SAT test generator and for
// AIGER imports:
//
//   fastmon_flow --circuit design.aag --atpg sat --manifest run.json
//
// Exit status: 0 on a complete run, 2 on a degraded run under
// --strict (some non-essential phase failed or was cancelled),
// 1 on hard errors (unreadable netlist, invalid options).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "flow/hdf_flow.hpp"
#include "flow/report.hpp"
#include "netlist/netlist_io.hpp"
#include "util/diagnostic.hpp"
#include "util/log.hpp"

namespace {

void print_usage() {
    std::cout <<
        "usage: fastmon_flow --circuit <file> [options]\n"
        "\n"
        "circuit:\n"
        "  --circuit <file>         netlist to analyze (.bench/.v/.aag/.aig)\n"
        "\n"
        "ATPG engine:\n"
        "  --atpg <podem|sat|auto>  deterministic-phase engine (default podem)\n"
        "  --podem-backtracks <n>   PODEM backtrack limit (default 250)\n"
        "  --sat-budget <n>         SAT conflicts per fault, 0=unlimited\n"
        "                           (default 20000)\n"
        "  --sat-restart <n>        rebuild SAT solver every n fault sites,\n"
        "                           0=never (default 512)\n"
        "\n"
        "flow:\n"
        "  --seed <n>               instance seed (default 1)\n"
        "  --fmax <f>               f_max factor (default 3.0)\n"
        "  --monitor-fraction <f>   monitored PPO share (default 0.25)\n"
        "  --variation <s>          per-gate delay sigma (default 0.0)\n"
        "  --max-faults <n>         stratified fault-simulation cap, 0=all\n"
        "\n"
        "output:\n"
        "  --manifest <path>        write the run manifest JSON\n"
        "  --strict                 exit 2 when any phase degraded\n"
        "  --quiet                  suppress info logging\n"
        "  --help                   this text\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fastmon;

    std::string circuit_path;
    std::string manifest_path;
    bool strict = false;
    HdfFlowConfig config;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "error: " << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            print_usage();
            return 0;
        } else if (std::strcmp(arg, "--circuit") == 0) {
            circuit_path = value();
        } else if (std::strcmp(arg, "--atpg") == 0) {
            const char* v = value();
            const auto kind = atpg_engine_kind_from_name(v);
            if (!kind) {
                std::cerr << "error: unknown ATPG engine '" << v
                          << "' (podem|sat|auto)\n";
                return 1;
            }
            config.atpg.engine = *kind;
        } else if (std::strcmp(arg, "--podem-backtracks") == 0) {
            config.atpg.podem_backtrack_limit =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (std::strcmp(arg, "--sat-budget") == 0) {
            config.atpg.sat_conflict_budget =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (std::strcmp(arg, "--sat-restart") == 0) {
            config.atpg.sat_restart_period =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (std::strcmp(arg, "--seed") == 0) {
            config.seed = static_cast<std::uint64_t>(std::atoll(value()));
        } else if (std::strcmp(arg, "--fmax") == 0) {
            config.fmax_factor = std::atof(value());
        } else if (std::strcmp(arg, "--monitor-fraction") == 0) {
            config.monitor_fraction = std::atof(value());
        } else if (std::strcmp(arg, "--variation") == 0) {
            config.variation_sigma = std::atof(value());
        } else if (std::strcmp(arg, "--max-faults") == 0) {
            config.max_simulated_faults =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (std::strcmp(arg, "--manifest") == 0) {
            manifest_path = value();
        } else if (std::strcmp(arg, "--strict") == 0) {
            strict = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            set_log_level(LogLevel::Warn);
        } else {
            std::cerr << "error: unknown option " << arg
                      << " (--help for usage)\n";
            return 1;
        }
    }

    if (circuit_path.empty()) {
        std::cerr << "error: --circuit is required (--help for usage)\n";
        return 1;
    }

    try {
        const Netlist netlist = read_netlist(circuit_path);
        std::cout << "circuit " << netlist.name() << ": "
                  << netlist.num_comb_gates() << " gates, "
                  << netlist.flip_flops().size() << " FFs, "
                  << netlist.primary_inputs().size() << " PIs, "
                  << netlist.primary_outputs().size() << " POs\n";

        HdfFlow flow(netlist, config);
        const HdfFlowResult result = flow.run();

        const HdfFlowResult rows[] = {result};
        print_table1(std::cout, rows);
        print_table2(std::cout, rows);
        print_table3(std::cout, rows);
        print_phase_table(std::cout, result);
        std::cout << "atpg engine: "
                  << atpg_engine_kind_name(config.atpg.engine)
                  << ", coverage " << result.atpg_coverage << "\n";
        std::cout << "flow status: "
                  << (result.status.complete() ? "complete" : "degraded")
                  << "\n";

        if (!manifest_path.empty()) {
            std::ofstream os(manifest_path);
            if (!os) {
                std::cerr << "error: cannot write manifest " << manifest_path
                          << "\n";
                return 1;
            }
            os << flow.manifest(result).to_json().dump(2) << "\n";
        }
        if (strict && !result.status.complete()) return 2;
        return 0;
    } catch (const Diagnostic& d) {
        std::cerr << "error: " << d.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
