// fastmon_campaign — Monte Carlo device-population campaign CLI.
//
// The repo's first real command-line tool: samples a population of
// virtual devices (process variation, wear-out spread, early-life
// defect incidence) for a circuit, rolls each through the monitor
// guard-band lifetime simulation on the persistent thread pool, and
// reports fleet-scale prediction quality (early-life-failure ROC /
// precision-recall, alert lead-time percentiles, wear-out curves).
//
// The aggregate JSON is bit-deterministic for a fixed (circuit, seed,
// config) — across thread counts, and across kill/resume cycles via
// --checkpoint/--resume.  SIGINT/SIGTERM and FASTMON_DEADLINE stop the
// campaign at the next device boundary, snapshot the checkpoint, and
// still emit an honest partial report (exit status stays 0, as with
// the benches).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/shard.hpp"
#include "netlist/generator.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/iscas_data.hpp"
#include "util/atomic_file.hpp"
#include "util/cancel.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

void print_usage() {
    std::cout <<
        "usage: fastmon_campaign [options]\n"
        "\n"
        "circuit selection (default: built-in mini-alu):\n"
        "  --circuit <file>         read a netlist (.bench/.v/.aag/.aig)\n"
        "  --profile <name>         generate a paper benchmark profile\n"
        "  --scale <s>              scale factor for --profile (default 1)\n"
        "\n"
        "population:\n"
        "  --population <n>         devices to simulate (default 100)\n"
        "  --seed <n>               campaign seed (default 1)\n"
        "  --defect-rate <p>        marginal-device incidence (default 0.15)\n"
        "  --variation <s>          lognormal process sigma (default 0.05)\n"
        "\n"
        "lifetime model:\n"
        "  --horizon <years>        simulation horizon (default 15)\n"
        "  --step <years>           grid step (default 0.25)\n"
        "  --screen <years>         burn-in screen window (default 0.5)\n"
        "  --early-fail <years>     early-life-failure cutoff (default 3)\n"
        "  --clock-margin <m>       deployed clk = m * cpl (default 1.6)\n"
        "\n"
        "wear-out (default: legacy single-knob aging, bit-identical to\n"
        "previous releases):\n"
        "  --mission-profile <p>    enable multi-mechanism wear-out\n"
        "                           (NBTI/HCI/EM/TDDB + legacy knob) under\n"
        "                           a mission profile: a built-in name or\n"
        "                           a profile JSON file\n"
        "  --activity-patterns <n>  pattern pairs for waveform activity\n"
        "                           characterization (default 32;\n"
        "                           0 = constant unit activity)\n"
        "  --list-profiles          print the built-in mission profiles\n"
        "                           and their phase schedules, then exit\n"
        "\n"
        "execution:\n"
        "  --threads <n>            0 = shared pool, 1 = serial (default 0)\n"
        "  --checkpoint <path>      resumable snapshot file\n"
        "  --checkpoint-every <n>   devices between snapshots (default 64)\n"
        "  --resume                 resume from --checkpoint if present\n"
        "  --full-sta               legacy from-scratch STA per grid point\n"
        "                           (reference for the incremental engine;\n"
        "                           identical report blocks, slower)\n"
        "  --batch-width <n>        devices per batched STA pass (0 = auto\n"
        "                           from the compiled width, 1 = scalar\n"
        "                           reference engine; identical report\n"
        "                           blocks at every width)\n"
        "\n"
        "fleet sharding (see also fastmon_fleet / fastmon_merge):\n"
        "  --shard <i>/<n>          roll only shard i of n (0-based); the\n"
        "                           merged shard artifacts are bit-identical\n"
        "                           to the unsharded campaign\n"
        "  --shard-out <path>       mergeable shard artifact (default\n"
        "                           <out-stem>.shard.json when sharded;\n"
        "                           also usable without --shard to emit a\n"
        "                           1-shard artifact)\n"
        "\n"
        "output:\n"
        "  --out <path>             campaign report JSON (default\n"
        "                           campaign_report.json)\n"
        "  --csv <path>             per-device outcomes CSV (optional)\n"
        "  --quiet                  suppress the summary tables\n"
        "\n"
        "live telemetry (see also fastmon_status):\n"
        "  --progress               throttled one-line progress on stderr\n"
        "  --heartbeat <path>       live heartbeat sidecar, atomically\n"
        "                           rewritten every FASTMON_HEARTBEAT\n"
        "                           seconds (default 1); setting the\n"
        "                           FASTMON_HEARTBEAT env var alone\n"
        "                           derives <out>.heartbeat.json\n";
}

struct CliOptions {
    std::string circuit_path;
    std::string profile;
    double scale = 1.0;
    std::string out_path = "campaign_report.json";
    std::string csv_path;
    std::string shard_out_path;
    bool quiet = false;
    fastmon::CampaignConfig config;
};

/// Parses "--shard i/n" ("2/4"); false on anything else.
bool parse_shard_spec(const char* text, fastmon::CampaignConfig& config) {
    const char* slash = std::strchr(text, '/');
    if (!slash || slash == text || *(slash + 1) == '\0') return false;
    char* end = nullptr;
    const long long index = std::strtoll(text, &end, 10);
    if (end != slash || index < 0) return false;
    const long long count = std::strtoll(slash + 1, &end, 10);
    if (*end != '\0' || count <= 0 || index >= count) return false;
    config.shard_index = static_cast<std::size_t>(index);
    config.shard_count = static_cast<std::size_t>(count);
    return true;
}

bool parse_args(int argc, char** argv, CliOptions& opt) {
    using std::strcmp;
    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "error: " << argv[i] << " needs a value\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const char* v = nullptr;
        if (strcmp(arg, "--help") == 0 || strcmp(arg, "-h") == 0) {
            print_usage();
            std::exit(0);
        } else if (strcmp(arg, "--list-profiles") == 0) {
            std::cout << fastmon::describe_mission_profiles();
            std::exit(0);
        } else if (strcmp(arg, "--mission-profile") == 0) {
            if (!(v = need_value(i))) return false;
            // Resolve now (built-in name or JSON file): run_campaign
            // and the canonical fingerprint only ever see the resolved
            // profile, never a path.
            try {
                opt.config.wearout.mission =
                    fastmon::load_mission_profile(v);
            } catch (const std::exception& e) {
                std::cerr << "error: " << e.what() << "\n";
                return false;
            }
            opt.config.wearout.enabled = true;
        } else if (strcmp(arg, "--activity-patterns") == 0) {
            if (!(v = need_value(i))) return false;
            const long long n = std::atoll(v);
            if (n <= 0) {
                opt.config.wearout.activity.mode =
                    fastmon::ActivityConfig::Mode::Constant;
            } else {
                opt.config.wearout.activity.num_pattern_pairs =
                    static_cast<std::size_t>(n);
            }
        } else if (strcmp(arg, "--resume") == 0) {
            opt.config.resume = true;
        } else if (strcmp(arg, "--full-sta") == 0) {
            opt.config.full_sta = true;
        } else if (strcmp(arg, "--quiet") == 0) {
            opt.quiet = true;
        } else if (strcmp(arg, "--progress") == 0) {
            opt.config.progress_stderr = true;
        } else if (strcmp(arg, "--heartbeat") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.heartbeat_path = v;
        } else if (strcmp(arg, "--circuit") == 0) {
            if (!(v = need_value(i))) return false;
            opt.circuit_path = v;
        } else if (strcmp(arg, "--profile") == 0) {
            if (!(v = need_value(i))) return false;
            opt.profile = v;
        } else if (strcmp(arg, "--scale") == 0) {
            if (!(v = need_value(i))) return false;
            opt.scale = std::atof(v);
        } else if (strcmp(arg, "--population") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.population = static_cast<std::size_t>(std::atoll(v));
        } else if (strcmp(arg, "--seed") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (strcmp(arg, "--defect-rate") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.model.defect.incidence = std::atof(v);
        } else if (strcmp(arg, "--variation") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.model.variation.sigma_log = std::atof(v);
        } else if (strcmp(arg, "--horizon") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.horizon_years = std::atof(v);
        } else if (strcmp(arg, "--step") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.step_years = std::atof(v);
        } else if (strcmp(arg, "--screen") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.screen_years = std::atof(v);
        } else if (strcmp(arg, "--early-fail") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.aggregate.early_fail_years = std::atof(v);
        } else if (strcmp(arg, "--clock-margin") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.clock_margin = std::atof(v);
        } else if (strcmp(arg, "--batch-width") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.batch_width = static_cast<std::size_t>(std::atoll(v));
        } else if (strcmp(arg, "--threads") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.num_threads = static_cast<std::size_t>(std::atoll(v));
        } else if (strcmp(arg, "--checkpoint") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.checkpoint_path = v;
        } else if (strcmp(arg, "--checkpoint-every") == 0) {
            if (!(v = need_value(i))) return false;
            opt.config.checkpoint_every =
                static_cast<std::size_t>(std::atoll(v));
        } else if (strcmp(arg, "--shard") == 0) {
            if (!(v = need_value(i))) return false;
            if (!parse_shard_spec(v, opt.config)) {
                std::cerr << "error: --shard expects i/n with 0 <= i < n\n";
                return false;
            }
        } else if (strcmp(arg, "--shard-out") == 0) {
            if (!(v = need_value(i))) return false;
            opt.shard_out_path = v;
        } else if (strcmp(arg, "--out") == 0) {
            if (!(v = need_value(i))) return false;
            opt.out_path = v;
        } else if (strcmp(arg, "--csv") == 0) {
            if (!(v = need_value(i))) return false;
            opt.csv_path = v;
        } else {
            std::cerr << "error: unknown option " << arg
                      << " (--help for usage)\n";
            return false;
        }
    }
    if (!opt.circuit_path.empty() && !opt.profile.empty()) {
        std::cerr << "error: --circuit and --profile are exclusive\n";
        return false;
    }
    if (opt.config.population == 0) {
        std::cerr << "error: --population must be positive\n";
        return false;
    }
    return true;
}

void print_summary(const fastmon::CampaignResult& result) {
    using namespace fastmon;
    const CampaignAggregate& agg = result.aggregate;
    std::printf("campaign: %s, %zu gates, %zu monitor(s), clk %.1f ps\n",
                result.circuit.c_str(), result.num_gates,
                result.num_monitors, result.clock_period);
    std::printf(
        "devices:  %zu completed (%zu resumed), %zu marginal, %zu failed "
        "(%zu early), %zu survived\n",
        result.devices_completed, result.devices_resumed, agg.marginal,
        agg.failed, agg.early_failures, agg.survived);

    const ClassificationQuality& cls = agg.classification;
    std::printf(
        "early-life prediction: ROC AUC %.3f, AP %.3f  (screen alert: "
        "precision %.3f, recall %.3f)\n",
        cls.roc_auc, cls.average_precision, cls.precision, cls.recall);

    TextTable leads({"lead time (years)", "n", "mean", "p10", "p50", "p90"});
    const auto lead_row = [&](const char* label,
                              const DistributionSummary& d) {
        leads.begin_row();
        leads.cell(std::string(label));
        leads.cell(static_cast<long long>(d.count));
        leads.cell(d.mean, 2);
        leads.cell(d.p10, 2);
        leads.cell(d.p50, 2);
        leads.cell(d.p90, 2);
    };
    lead_row("wide band -> failure", agg.lead_time_wide);
    lead_row("imminent band -> failure", agg.lead_time_imminent);
    lead_row("wear-out failure year", agg.wearout_failure_years);
    leads.print(std::cout);

    if (!agg.failed_by_mechanism.empty()) {
        std::printf("dominant mechanism of failures:");
        for (const auto& [name, count] : agg.failed_by_mechanism) {
            std::printf(" %s=%zu", name.c_str(), count);
        }
        std::printf("\n");
    }

    if (result.status.cancelled) {
        std::printf("NOTE: campaign cancelled (%s) — partial aggregate\n",
                    cancel_cause_name(result.status.cancel_cause));
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fastmon;
    CliOptions opt;
    if (!parse_args(argc, argv, opt)) return 2;

    // FASTMON_HEARTBEAT alone turns the sidecar on, next to the report
    // (run_campaign reads the env var again for the interval).
    if (opt.config.heartbeat_path.empty()) {
        if (const char* env = std::getenv("FASTMON_HEARTBEAT");
            env != nullptr && std::atof(env) > 0.0) {
            std::string path = opt.out_path;
            const std::string suffix = ".json";
            if (path.size() >= suffix.size() &&
                path.compare(path.size() - suffix.size(), suffix.size(),
                             suffix) == 0) {
                path.resize(path.size() - suffix.size());
            }
            opt.config.heartbeat_path = path + ".heartbeat.json";
        }
    }

    CancelToken::global().install_signal_handlers();

    Netlist netlist = [&] {
        if (!opt.circuit_path.empty()) {
            return read_netlist(opt.circuit_path);
        }
        if (!opt.profile.empty()) {
            return generate_circuit(
                profile_config(find_profile(opt.profile), opt.scale));
        }
        return make_mini_alu();
    }();

    const CampaignResult result = run_campaign(netlist, opt.config);

    const std::string report = result.to_json(opt.config).dump(2);
    if (!atomic_write_file(opt.out_path, report)) {
        std::cerr << "error: cannot write " << opt.out_path << "\n";
        return 1;
    }
    if (!opt.csv_path.empty() &&
        !atomic_write_file(opt.csv_path, outcomes_csv(result.outcomes))) {
        std::cerr << "error: cannot write " << opt.csv_path << "\n";
        return 1;
    }

    // Mergeable shard artifact: always when sharded, on request for an
    // unsharded run (a 1-shard artifact merges to the same report).
    if (opt.config.shard_count > 1 || !opt.shard_out_path.empty()) {
        std::string shard_path = opt.shard_out_path;
        if (shard_path.empty()) {
            shard_path = opt.out_path;
            const std::string suffix = ".json";
            if (shard_path.size() >= suffix.size() &&
                shard_path.compare(shard_path.size() - suffix.size(),
                                   suffix.size(), suffix) == 0) {
                shard_path.resize(shard_path.size() - suffix.size());
            }
            shard_path += ".shard.json";
        }
        const ShardResult shard =
            make_shard_result(netlist, opt.config, result);
        if (!save_shard_result(shard_path, shard)) {
            std::cerr << "error: cannot write " << shard_path << "\n";
            return 1;
        }
    }

    if (!opt.quiet) {
        print_summary(result);
        std::printf("report: %s (%.2f s", opt.out_path.c_str(),
                    result.total_wall_seconds);
        if (!opt.csv_path.empty()) {
            std::printf(", csv: %s", opt.csv_path.c_str());
        }
        std::printf(")\n");
    }
    return 0;
}
