// fastmon_fleet — fault-tolerant sharded campaign supervisor.
//
// Splits one campaign into N shard jobs in a directory queue, runs each
// as a `fastmon_campaign --shard i/N` subprocess (at-least-once: claims
// are atomic renames, so a crashed supervisor can be restarted with
// --recover and nothing is lost), retries crashed / hung / corrupt
// shards with bounded exponential backoff — retried shards resume from
// their own checkpoints — and quarantines poison jobs after
// --max-attempts.  When the queue drains it validates and merges the
// shard artifacts into a campaign report that is bit-identical to a
// single-process run whenever every shard completed.
//
// Exit 0 with an honest status block covers every recovered-or-
// quarantined outcome; exit 1 means not a single shard produced a
// mergeable artifact.
//
//   fastmon_fleet --root /tmp/fleet --shards 4 --
//       --circuit s9234.bench --population 400 --seed 7 --quiet
//
// `--circuit` accepts any read_netlist format (.bench/.v/.aag/.aig);
// the shard subprocesses load it through the same front end.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/fleet.hpp"
#include "campaign/shard.hpp"
#include "util/atomic_file.hpp"

namespace {

void print_usage() {
    std::cout <<
        "usage: fastmon_fleet [options] -- <fastmon_campaign args...>\n"
        "\n"
        "fleet:\n"
        "  --root <dir>             fleet state directory (required):\n"
        "                           queue/ running/ done/ quarantine/\n"
        "                           shards/ logs/\n"
        "  --shards <n>             shard count (default 2)\n"
        "  --campaign-bin <path>    fastmon_campaign binary (default\n"
        "                           resolved through $PATH)\n"
        "  --out <path>             merged campaign report (default\n"
        "                           <root>/merged_report.json)\n"
        "  --recover                requeue stale claims left by a dead\n"
        "                           supervisor before running\n"
        "\n"
        "failure handling:\n"
        "  --max-attempts <n>       launches per job before quarantine\n"
        "                           (default 3)\n"
        "  --max-parallel <n>       concurrent shard workers (default 2)\n"
        "  --stall-timeout <sec>    kill a worker whose heartbeat stops\n"
        "                           advancing for this long (default 30)\n"
        "  --backoff <sec>          initial retry backoff, doubling per\n"
        "                           attempt (default 0.5, capped at 8)\n"
        "\n"
        "fault injection (CI / tests):\n"
        "  --inject <spec>          FASTMON_FAULT_INJECT spec for the\n"
        "                           injected shard's workers\n"
        "  --inject-shard <i>       shard to inject (default 0)\n"
        "  --inject-every-attempt   keep the fault armed on retries (a\n"
        "                           poison job; default: first attempt\n"
        "                           only, so the retry recovers)\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fastmon;
    FleetConfig config;
    std::string campaign_bin = "fastmon_campaign";
    std::string out_path;
    std::string inject_spec;
    std::uint32_t inject_shard = 0;
    bool inject_every_attempt = false;
    bool recover = false;
    std::vector<std::string> campaign_args;
    config.shard_count = 2;

    int i = 1;
    for (; i < argc; ++i) {
        const char* arg = argv[i];
        auto need_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "error: " << arg << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        const char* v = nullptr;
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            print_usage();
            return 0;
        } else if (std::strcmp(arg, "--") == 0) {
            ++i;
            break;
        } else if (std::strcmp(arg, "--recover") == 0) {
            recover = true;
        } else if (std::strcmp(arg, "--inject-every-attempt") == 0) {
            inject_every_attempt = true;
        } else if (std::strcmp(arg, "--root") == 0) {
            if (!(v = need_value())) return 2;
            config.root = v;
        } else if (std::strcmp(arg, "--shards") == 0) {
            if (!(v = need_value())) return 2;
            config.shard_count =
                static_cast<std::uint32_t>(std::atoll(v));
        } else if (std::strcmp(arg, "--campaign-bin") == 0) {
            if (!(v = need_value())) return 2;
            campaign_bin = v;
        } else if (std::strcmp(arg, "--out") == 0) {
            if (!(v = need_value())) return 2;
            out_path = v;
        } else if (std::strcmp(arg, "--max-attempts") == 0) {
            if (!(v = need_value())) return 2;
            config.max_attempts =
                static_cast<std::uint32_t>(std::atoll(v));
        } else if (std::strcmp(arg, "--max-parallel") == 0) {
            if (!(v = need_value())) return 2;
            config.max_parallel = static_cast<std::size_t>(std::atoll(v));
        } else if (std::strcmp(arg, "--stall-timeout") == 0) {
            if (!(v = need_value())) return 2;
            config.stall_timeout_seconds = std::atof(v);
        } else if (std::strcmp(arg, "--backoff") == 0) {
            if (!(v = need_value())) return 2;
            config.backoff_initial_seconds = std::atof(v);
        } else if (std::strcmp(arg, "--inject") == 0) {
            if (!(v = need_value())) return 2;
            inject_spec = v;
        } else if (std::strcmp(arg, "--inject-shard") == 0) {
            if (!(v = need_value())) return 2;
            inject_shard = static_cast<std::uint32_t>(std::atoll(v));
        } else {
            std::cerr << "error: unknown option " << arg
                      << " (--help for usage)\n";
            return 2;
        }
    }
    for (; i < argc; ++i) campaign_args.emplace_back(argv[i]);

    if (config.root.empty()) {
        std::cerr << "error: --root is required (--help for usage)\n";
        return 2;
    }
    if (config.shard_count == 0 || config.max_attempts == 0 ||
        config.max_parallel == 0) {
        std::cerr << "error: --shards/--max-attempts/--max-parallel must "
                     "be positive\n";
        return 2;
    }

    FleetQueue queue(config.root);
    std::string error;
    if (!queue.init(&error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
    }
    if (recover) {
        const std::size_t recovered = queue.recover_stale();
        if (recovered > 0) {
            std::printf("fleet: requeued %zu stale claim(s)\n", recovered);
        }
    }

    // Enqueue every shard that is not already done or quarantined (so
    // re-running the supervisor over an existing root only finishes
    // the remaining work).
    const auto finished = [&](const std::string& id,
                              const std::vector<std::string>& ids) {
        for (const std::string& d : ids) {
            if (d == id) return true;
        }
        return false;
    };
    const auto done_ids = queue.done();
    const auto quarantined_ids = queue.quarantined();
    const auto pending_ids = queue.pending();
    for (std::uint32_t s = 0; s < config.shard_count; ++s) {
        FleetJob job;
        job.id = "shard-" + std::to_string(s);
        job.shard_index = s;
        job.shard_count = config.shard_count;
        if (finished(job.id, done_ids) ||
            finished(job.id, quarantined_ids) ||
            finished(job.id, pending_ids)) {
            continue;
        }
        if (!inject_spec.empty() && s == inject_shard) {
            job.fault_inject = inject_spec;
            job.fault_first_attempt_only = !inject_every_attempt;
        }
        if (!queue.enqueue(job)) {
            std::cerr << "error: cannot enqueue " << job.id << "\n";
            return 1;
        }
    }

    SubprocessShardLauncher launcher(campaign_bin, campaign_args);
    const FleetReport fleet = run_fleet(config, queue, launcher);

    for (const FleetJobRecord& job : fleet.jobs) {
        std::printf("shard %u: %-12s %u attempt(s)%s%s\n", job.shard_index,
                    job.state.c_str(), job.attempts,
                    job.detail.empty() ? "" : " — ", job.detail.c_str());
    }

    // Merge whatever the fleet produced (quarantined shards show up as
    // missing/corrupt artifacts and degrade the merge honestly).
    std::vector<std::string> shard_paths;
    shard_paths.reserve(config.shard_count);
    for (std::uint32_t s = 0; s < config.shard_count; ++s) {
        shard_paths.push_back(shard_artifact_path(config.root, s));
    }
    ShardMerge merged = merge_shard_results(shard_paths);
    // One combined status block: supervision first, then the merge.
    FlowStatus status = fleet.status;
    for (const PhaseStatus& phase : merged.status.phases) {
        status.phases.push_back(phase);
    }
    merged.report.set("run", [&] {
        Json run = *merged.report.find("run");
        run.set("fleet", fleet.to_json());
        run.set("status", status.to_json());
        return run;
    }());

    std::printf("fleet: %zu done, %zu quarantined, %zu retr%s, merged %zu "
                "of %zu devices (%s)\n",
                fleet.jobs_done, fleet.jobs_quarantined, fleet.retries,
                fleet.retries == 1 ? "y" : "ies", merged.devices_merged,
                merged.devices_expected, status.overall());

    if (!merged.mergeable) {
        std::cerr << "error: no shard produced a mergeable artifact\n";
        return 1;
    }
    if (out_path.empty()) out_path = config.root + "/merged_report.json";
    if (!atomic_write_file(out_path, merged.report.dump(2))) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
    }
    std::printf("report: %s\n", out_path.c_str());
    return 0;
}
