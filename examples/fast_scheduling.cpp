// FAST test-schedule optimization on a generated industrial-like
// design: compares the greedy heuristic [17] with the exact (ILP-style)
// two-step optimization of the paper, and prints the resulting
// schedule with its test-time model cost.
#include <cstdio>
#include <iostream>

#include "flow/hdf_flow.hpp"
#include "netlist/generator.hpp"
#include "schedule/clock_gen.hpp"
#include "schedule/robustness.hpp"
#include "schedule/schedule.hpp"

int main() {
    using namespace fastmon;

    GeneratorConfig gc;
    gc.name = "industrial_demo";
    gc.n_gates = 1500;
    gc.n_ffs = 150;
    gc.n_inputs = 30;
    gc.n_outputs = 30;
    gc.depth = 22;
    gc.spread = 0.75;  // wide path histogram: the monitor-friendly regime
    gc.seed = 4242;
    const Netlist netlist = generate_circuit(gc);

    HdfFlowConfig config;
    config.seed = 4242;
    config.max_simulated_faults = 2500;
    HdfFlow flow(netlist, config);
    flow.prepare();

    std::cout << "circuit " << netlist.name() << ": "
              << netlist.num_comb_gates() << " gates, clk = "
              << flow.sta().clock_period << " ps, "
              << flow.placement().num_monitors() << " monitors, "
              << flow.patterns().size() << " test patterns\n";
    std::cout << "target faults: " << flow.target_positions().size()
              << "\n\n";

    // Build the target fault ranges once.
    std::vector<IntervalSet> ranges;
    for (std::uint32_t pos : flow.target_positions()) {
        ranges.push_back(flow.full_range_in_window(pos));
    }

    // Step 1 two ways: greedy heuristic vs exact covering.
    FrequencySelectOptions greedy;
    greedy.method = SelectMethod::Greedy;
    FrequencySelectOptions exact;
    exact.method = SelectMethod::BranchAndBound;
    const FrequencySelection sel_greedy = select_frequencies(ranges, greedy);
    const FrequencySelection sel_exact = select_frequencies(ranges, exact);

    std::cout << "frequency selection: greedy " << sel_greedy.periods.size()
              << " frequencies, exact " << sel_exact.periods.size()
              << (sel_exact.proven_optimal ? " (proven optimal)" : "")
              << "\n";
    std::cout << "selected test periods (ps / relative to clk):\n";
    for (Time t : sel_exact.periods) {
        std::printf("  %8.2f   %.3f clk\n", t,
                    t / flow.sta().clock_period);
    }

    // The full flow also runs step 2 and Table III coverage sweeps.
    const HdfFlowResult result = flow.run();
    std::cout << "\nschedule: " << result.opti_pc
              << " (frequency, pattern, config) applications vs "
              << result.orig_pc << " naive (reduction "
              << result.pc_reduction_percent << " %)\n";

    const TestTimeModel model;
    const double naive_cycles = model.naive_cycles(
        result.freq_prop, result.num_patterns,
        flow.placement().config_delays.size());
    TestSchedule opt_sched;
    opt_sched.periods.assign(result.freq_prop, 0.0);
    opt_sched.entries.resize(result.opti_pc);
    std::cout << "test-time model: naive " << naive_cycles
              << " cycles, optimized " << model.cycles(opt_sched)
              << " cycles (PLL relock " << model.relock_cycles
              << " cycles/frequency)\n";

    // Deployment checks: are the ideal periods realizable on a PLL
    // grid, and how robust is the selection against timing shifts?
    const ClockGenerator clock_gen;
    const QuantizedSelection quant =
        quantize_selection(clock_gen, sel_exact.periods, ranges);
    std::cout << "\nPLL quantization: " << quant.unrealizable
              << " unrealizable periods, " << quant.coverage_lost.size()
              << " faults lost on the realizable grid\n";
    const RobustnessReport margins = selection_margins(ranges, sel_exact.periods);
    const std::vector<double> scales{0.98, 1.0, 1.02};
    const std::vector<double> retained =
        robustness_sweep(ranges, sel_exact.periods, scales);
    std::printf(
        "robustness: min margin %.2f ps (median %.2f); coverage retained"
        " %.1f%% at -2%% / %.1f%% at +2%% delay shift\n",
        margins.min_margin, margins.median_margin, 100.0 * retained[0],
        100.0 * retained[2]);
    return 0;
}
