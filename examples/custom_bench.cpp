// Bring-your-own-netlist workflow: write/parse an ISCAS-style .bench
// file, annotate delays, export/import SDF (the interchange format the
// paper's flow reads), and run the coverage analysis on it.
#include <fstream>
#include <iostream>

#include "flow/hdf_flow.hpp"
#include "netlist/netlist_io.hpp"
#include "timing/sdf.hpp"
#include "timing/sta_engine.hpp"

namespace {

constexpr const char* kDemoBench = R"(# demo: registered 3-stage pipeline fragment
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
r0 = DFF(n4)
r1 = DFF(n6)
n1 = NAND(a, b)
n2 = NOR(c, d)
n3 = XOR(n1, n2)
n4 = AND(n3, r1)
n5 = NOT(n3)
n6 = OR(n5, r0)
y  = NAND(n4, n6)
z  = XOR(r0, r1)
)";

}  // namespace

int main() {
    using namespace fastmon;

    // 1. Write the .bench file and parse it back.  read_netlist
    //    dispatches on the extension, so the same call also accepts
    //    .v structural Verilog and .aag/.aig AIGER files.
    const std::string bench_path = "demo_pipeline.bench";
    {
        std::ofstream out(bench_path);
        out << kDemoBench;
    }
    const Netlist netlist = read_netlist(bench_path);
    std::cout << "parsed " << netlist.name() << ": "
              << netlist.num_comb_gates() << " gates, "
              << netlist.flip_flops().size() << " FFs\n";

    // 2. Annotate with per-instance variation (sigma = 20 % as in the
    //    paper's fault-size model) and export SDF.
    const DelayAnnotation delays =
        DelayAnnotation::with_variation(netlist, 0.20, 99);
    const std::string sdf_path = "demo_pipeline.sdf";
    {
        std::ofstream out(sdf_path);
        write_sdf(out, netlist, delays);
    }
    std::cout << "wrote " << sdf_path << "\n";

    // 3. Re-import the SDF (round trip) and verify STA agreement.
    std::ifstream sdf_in(sdf_path);
    const DelayAnnotation reloaded = read_sdf(sdf_in, netlist);
    const StaResult sta_a = StaEngine(netlist, delays).analyze();
    const StaResult sta_b = StaEngine(netlist, reloaded).analyze();
    std::cout << "critical path: annotated " << sta_a.critical_path_length
              << " ps, from SDF " << sta_b.critical_path_length << " ps\n";

    // 4. Coverage analysis with monitors on all pseudo outputs (the
    //    circuit is tiny; the paper's 25 % applies to large designs).
    HdfFlowConfig config;
    config.seed = 5;
    config.monitor_fraction = 1.0;
    HdfFlow flow(netlist, config);
    const HdfFlowResult r = flow.run();
    std::cout << "HDFs detected: conventional " << r.detected_conv
              << ", with monitors " << r.detected_prop << " of "
              << r.fault_universe << " faults; " << r.freq_prop
              << " FAST frequencies suffice\n";
    return 0;
}
