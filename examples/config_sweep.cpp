// Ablation: how much does monitor *programmability* buy?
//
// The paper argues (Sec. III-B) that the set of selectable delay
// elements both raises HDF coverage and creates scheduling freedom.
// This example sweeps the configuration set on one circuit — from a
// single fixed delay element (the prior art of [14]) to the paper's
// four-element programmable monitor — and reports, per configuration
// set, the detectable-fault count, the required FAST frequencies and
// the hardware cost of the monitors.  The detection ranges are computed
// once; each configuration set is evaluated by pure range shifting.
#include <cstdio>
#include <iostream>

#include "flow/hdf_flow.hpp"
#include "monitor/overhead.hpp"
#include "netlist/generator.hpp"

int main() {
    using namespace fastmon;

    GeneratorConfig gc;
    gc.name = "config_sweep";
    gc.n_gates = 1200;
    gc.n_ffs = 140;
    gc.n_inputs = 24;
    gc.n_outputs = 24;
    gc.depth = 20;
    gc.spread = 0.8;
    gc.seed = 99;
    const Netlist netlist = generate_circuit(gc);

    HdfFlowConfig config;
    config.seed = 99;
    config.max_simulated_faults = 2000;
    HdfFlow flow(netlist, config);
    flow.prepare();
    const Time clk = flow.sta().clock_period;
    const Interval window = fast_window(clk, config.fmax_factor);
    std::cout << "circuit " << netlist.name() << ", clk = " << clk
              << " ps, simulated faults " << flow.ranges().size() << "\n\n";

    struct ConfigSet {
        const char* name;
        std::vector<double> fractions;
    };
    const std::vector<ConfigSet> sweeps{
        {"no monitors", {}},
        {"fixed d=1/3 clk   [14]", {1.0 / 3.0}},
        {"two elements {0.15, 1/3}", {0.15, 1.0 / 3.0}},
        {"paper: {.05,.10,.15,1/3}", {0.05, 0.10, 0.15, 1.0 / 3.0}},
        {"eight uniform elements",
         {1.0 / 24, 2.0 / 24, 3.0 / 24, 4.0 / 24, 5.0 / 24, 6.0 / 24,
          7.0 / 24, 8.0 / 24}},
    };

    std::printf("%-28s %10s %10s %8s %10s\n", "configuration set", "detected",
                "targets", "|F|", "area ovh");
    for (const ConfigSet& cs : sweeps) {
        std::vector<Time> delays{0.0};
        for (double f : cs.fractions) delays.push_back(f * clk);

        // Detected faults and FAST targets under this configuration set.
        std::size_t detected = 0;
        std::vector<IntervalSet> target_ranges;
        for (const FaultRanges& r : flow.ranges()) {
            IntervalSet full = full_detection_range(r, delays);
            const bool at_speed = detects_at_speed(full, clk);
            full.clip(window.lo, window.hi);
            if (full.empty()) continue;
            ++detected;
            if (!at_speed) target_ranges.push_back(std::move(full));
        }
        FrequencySelectOptions fopts;
        const FrequencySelection sel =
            select_frequencies(target_ranges, fopts);

        MonitorPlacement placement = flow.placement();
        placement.config_delays = delays;
        if (cs.fractions.empty()) {
            placement.monitor_observes.clear();
            placement.monitored.assign(placement.monitored.size(), false);
        }
        const OverheadReport ovh = estimate_overhead(netlist, placement);

        std::printf("%-28s %10zu %10zu %8zu %9.2f%%\n", cs.name, detected,
                    target_ranges.size(), sel.periods.size(),
                    100.0 * ovh.area_overhead);
    }
    std::cout
        << "\nThe first delay element buys the coverage jump (it shifts\n"
           "short-path fault effects into the FAST window); additional\n"
           "elements trade a modest area increment for scheduling freedom\n"
           "and at-speed monitor detection (smaller target sets) — the\n"
           "paper's case for reusing *programmable* monitors in FAST.\n";
    return 0;
}
