// Quickstart: the complete monitor-reuse FAST flow on the ISCAS'89 s27
// benchmark in ~40 lines of user code.
//
//   1. load a circuit,
//   2. run the flow (STA -> monitor placement -> ATPG -> timing-accurate
//      fault simulation -> detection ranges -> schedule optimization),
//   3. inspect coverage and the optimized test schedule.
#include <iostream>

#include "flow/hdf_flow.hpp"
#include "flow/report.hpp"
#include "netlist/iscas_data.hpp"

int main() {
    using namespace fastmon;

    // 1. The embedded s27 netlist (any .bench/.v/.aag/.aig file works
    //    the same way through read_netlist()).
    const Netlist netlist = make_s27();
    std::cout << "circuit " << netlist.name() << ": "
              << netlist.num_comb_gates() << " gates, "
              << netlist.flip_flops().size() << " flip-flops, "
              << netlist.primary_inputs().size() << " PIs, "
              << netlist.primary_outputs().size() << " POs\n";

    // 2. Configure and run.  Defaults follow the paper: f_max = 3 f_nom,
    //    monitors on 25 % of the pseudo primary outputs with delay
    //    elements {0.05, 0.1, 0.15, 1/3} x clk, fault size 6 sigma.
    HdfFlowConfig config;
    config.seed = 27;
    // s27 has only 3 flip-flops; monitor half of the pseudo outputs so
    // the tiny example has more than zero monitors.
    config.monitor_fraction = 0.5;
    HdfFlow flow(netlist, config);
    const HdfFlowResult result = flow.run();

    std::cout << "\nnominal clock " << result.clock_period
              << " ps (cpl + 5 %), FAST window down to " << result.t_min
              << " ps\n";
    std::cout << "fault universe " << result.fault_universe << " ("
              << result.at_speed_detectable << " at-speed detectable, "
              << result.timing_redundant << " timing redundant)\n";
    std::cout << "detected HDFs: conventional FAST " << result.detected_conv
              << ", with monitors " << result.detected_prop << " (+"
              << result.gain_percent << " %)\n";
    std::cout << "target faults for scheduling: " << result.target_faults
              << "\n\n";

    std::vector<HdfFlowResult> rows{result};
    print_table1(std::cout, rows);
    std::cout << '\n';
    print_table2(std::cout, rows);
    std::cout << '\n';
    print_table3(std::cout, rows);

    // 3. The Fig. 3 style coverage curve for this circuit.
    const std::vector<double> factors{1.0, 1.5, 2.0, 2.5, 3.0};
    std::cout << "\nHDF coverage vs f_max:\n";
    print_fig3(std::cout, flow.coverage_curve(factors));
    return 0;
}
