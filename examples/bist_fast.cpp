// BIST-based FAST — the alternative the paper contrasts with.
//
// Over-clocked responses cannot be streamed to an ATE, so FAST-BIST
// ([16]) compacts them on-chip: an LFSR (PRPG) feeds pseudo-random
// pattern pairs, a MISR folds the per-cycle responses into a signature,
// and a fault is detected when the faulty signature differs at some
// FAST period.  This example runs the full loop on a registered design,
// sweeps the observation period across the FAST window, reports MISR
// aliasing, and closes with a pattern-set quality report — then points
// at the monitor-reuse flow that achieves observation without any of
// this infrastructure (the paper's argument).
#include <cstdio>
#include <iostream>

#include "atpg/bist.hpp"
#include "fault/fault.hpp"
#include "atpg/metrics.hpp"
#include "netlist/structures.hpp"
#include "timing/sta_engine.hpp"

int main() {
    using namespace fastmon;

    // A registered design with regular structure: an 8-bit LFSR datapath
    // circuit under test (its own logic, not the BIST hardware).
    const Netlist netlist = make_lfsr(8, maximal_lfsr_taps(8), "dut_lfsr8");
    const DelayAnnotation delays = DelayAnnotation::nominal(netlist);
    const StaResult sta = StaEngine(netlist, delays).analyze();
    const WaveSim sim(netlist, delays);
    std::cout << "DUT " << netlist.name() << ": "
              << netlist.num_comb_gates() << " gates, clk = "
              << sta.clock_period << " ps\n\n";

    // On-chip pattern source: 32-bit PRPG.
    Prpg prpg(32, 0xBEEF);
    const auto patterns = prpg.generate(netlist.comb_sources().size(), 96);

    // Fault universe for the sweep.
    const FaultUniverse universe = FaultUniverse::generate(netlist, delays);
    const std::vector<DelayFault> faults(universe.faults().begin(),
                                         universe.faults().end());
    std::printf("%zu small delay faults, %zu PRPG pattern pairs, 32-bit "
                "MISR (aliasing bound %.1e)\n\n",
                faults.size(), patterns.size(),
                Misr(32).aliasing_probability());

    std::printf("%12s %10s %14s %8s\n", "period/clk", "detected",
                "response-diff", "aliased");
    for (double f : {1.0, 0.8, 0.65, 0.5, 0.4, 0.35}) {
        const BistCoverage c = misr_fault_coverage(
            sim, patterns, faults, f * sta.clock_period);
        std::printf("%12.2f %10zu %14zu %8zu\n", f, c.detected,
                    c.response_diffs, c.aliased);
    }

    std::cout << "\nPattern-set quality (transition-fault metrics):\n";
    const PatternSetMetrics m = evaluate_pattern_set(netlist, patterns);
    std::printf("  TDF coverage %.1f%% with %zu patterns, mean toggle rate"
                " %.2f\n",
                100.0 * m.coverage, m.num_patterns, m.mean_toggle_rate);
    std::printf("  N-detect: ");
    for (std::size_t n = 0; n < m.n_detect_histogram.size(); ++n) {
        std::printf("%zu>=%zu  ", m.n_detect_histogram[n], n + 1);
    }
    std::printf("\n\nFAST-BIST needs the PRPG, the MISR and X-free responses"
                " on chip;\nthe paper's monitor reuse gets the same"
                " over-clocked observability\nfrom hardware the design"
                " already carries for aging prediction.\n");
    return 0;
}
