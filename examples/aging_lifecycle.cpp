// Wear-out and early-life failure prediction over a device lifetime —
// the monitoring story of Fig. 2.
//
// Two devices are simulated over twelve years of operation:
//   * a healthy device that only wears out (lumped EM/HCI-dominated
//     linear delay degradation);
//   * a marginal device that additionally carries an early-life defect
//     (a hidden delay fault that magnifies after deployment).
// Programmable monitors watch the long path ends.  The deployed clock
// runs at 1.6 x the critical path (deployed systems keep margin well
// beyond STA sign-off), so the guard-band ladder unfolds over the
// lifetime: the wide window (1/3 clk) alerts first — the early-warning
// configuration of Fig. 2 (b) — and after reconfiguration the narrow
// windows track the shrinking margin until imminent failure
// (Fig. 2 (c)).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "monitor/aging.hpp"
#include "monitor/policy.hpp"
#include "netlist/iscas_data.hpp"
#include "timing/sta.hpp"

int main() {
    using namespace fastmon;

    const Netlist netlist = make_mini_alu();
    const DelayAnnotation base = DelayAnnotation::nominal(netlist);
    // Operating point: generous deployed margin (clk = 1.6 x cpl).
    const StaResult sta = run_sta(netlist, base, 1.6);
    const MonitorPlacement placement = place_paper_monitors(netlist, sta);
    std::cout << "circuit " << netlist.name() << ", operating clk = "
              << sta.clock_period << " ps (1.6 x cpl), "
              << placement.num_monitors()
              << " monitor(s), guard bands (ps):";
    for (std::size_t c = 1; c < placement.config_delays.size(); ++c) {
        std::cout << ' ' << placement.config_delays[c];
    }
    std::cout << "\n\n";

    // Lumped linear degradation: +55 % delay over the 10-year reference
    // (a heavily stressed automotive corner).
    AgingModel aging;
    aging.amplitude = 0.55;
    aging.exponent = 1.0;
    aging.t_ref_years = 10.0;

    std::vector<double> grid;
    for (double y = 0.0; y <= 12.0 + 1e-9; y += 0.25) grid.push_back(y);

    auto report = [&](const char* label, LifetimeSimulator& sim) {
        std::cout << "--- " << label << " ---\n";
        std::cout << "year   arrival/clk   guard-band alerts (wide..narrow)\n";
        double failure_year = -1.0;
        std::vector<bool> prev_alerts(placement.config_delays.size(), false);
        for (const LifetimePoint& p : sim.sweep(grid, placement)) {
            const bool alerts_changed = p.alerts != prev_alerts;
            const bool yearly = std::fmod(p.years + 1e-9, 2.0) < 0.02;
            if (p.timing_failure && failure_year < 0.0) failure_year = p.years;
            if (!alerts_changed && !yearly &&
                !(p.timing_failure && failure_year == p.years)) {
                continue;
            }
            prev_alerts = p.alerts;
            std::printf("%5.2f   %6.1f%%       ", p.years,
                        100.0 * p.worst_arrival / sta.clock_period);
            for (std::size_t c = p.alerts.size(); c-- > 1;) {
                std::printf("%s", p.alerts[c] ? "A" : ".");
            }
            if (p.timing_failure) std::printf("   << TIMING FAILURE");
            std::printf("\n");
        }
        const std::vector<double> first =
            sim.first_alert_years(grid, placement);
        std::cout << "first alerts: ";
        for (std::size_t c = first.size(); c-- > 1;) {
            std::printf(" d=%.0fps:%s", placement.config_delays[c],
                        first[c] < 0
                            ? " never"
                            : (" " + std::to_string(first[c]) + "y").c_str());
        }
        std::cout << "\n";
        if (failure_year >= 0.0 && first.back() >= 0.0) {
            std::printf(
                "failure at %.2f y; the wide guard band alerted %.2f y "
                "earlier\n",
                failure_year, failure_year - first.back());
        }
        std::cout << "\n";
    };

    // Healthy device: pure wear-out.
    LifetimeSimulator healthy(netlist, base, sta.clock_period, aging, 1);
    report("healthy device (wear-out only)", healthy);

    // Marginal device: an early-life defect on a gate feeding a
    // monitored endpoint grows quickly during the first years.
    LifetimeSimulator marginal(netlist, base, sta.clock_period, aging, 1);
    GateId site = kNoGate;
    for (std::uint32_t oi : placement.monitor_observes) {
        site = netlist.observe_points()[oi].signal;
        break;
    }
    MarginalDefect defect;
    defect.site = FaultSite{site, FaultSite::kOutputPin};
    defect.delta0 = 0.02 * sta.clock_period;   // hidden at deployment
    defect.growth_per_year = 0.9;              // magnifies quickly
    defect.delta_max = 0.45 * sta.clock_period;
    marginal.add_defect(defect);
    report("marginal device (early-life defect)", marginal);

    std::cout << "The marginal device walks the same alert ladder years\n"
                 "earlier — the early-life signature the paper's FAST reuse\n"
                 "of these monitors exposes already at manufacturing test.\n\n";

    // --- Closed-loop operation: the Fig. 2 procedure as a policy -----
    // Start wide, alert -> countermeasure (frequency/voltage scaling
    // halves the further aging rate) -> reconfigure narrower; the
    // narrowest band's alert flags imminent failure.
    std::cout << "--- adaptive policy (alert -> countermeasure ->"
                 " narrower guard band) ---\n";
    LifetimeSimulator managed(netlist, base, sta.clock_period, aging, 1);
    PolicyConfig policy;
    policy.countermeasure_rate_scale = 0.5;
    policy.horizon_years = 25.0;
    const PolicyRun run = run_adaptive_policy(managed, placement, policy);
    for (const PolicyEvent& e : run.events) {
        std::printf("  %6.2f y  %-16s (guard band %.0f ps)\n", e.years,
                    to_string(e.kind).c_str(),
                    placement.config_delays[e.config]);
    }
    if (run.predicted_failure_years >= 0.0) {
        std::printf("  RUL prediction at first alert: failure near %.1f y\n",
                    run.predicted_failure_years);
    }
    PolicyConfig unmanaged = policy;
    unmanaged.countermeasure_rate_scale = 1.0;
    const PolicyRun baseline =
        run_adaptive_policy(managed, placement, unmanaged);
    if (run.failed() && baseline.failed()) {
        std::printf(
            "  lifetime: %.2f y unmanaged -> %.2f y with countermeasures\n",
            baseline.failure_years, run.failure_years);
    } else if (baseline.failed()) {
        std::printf(
            "  lifetime: %.2f y unmanaged -> survives the %.0f y horizon"
            " with countermeasures\n",
            baseline.failure_years, policy.horizon_years);
    }
    return 0;
}
