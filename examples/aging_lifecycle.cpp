// Wear-out and early-life failure prediction over device lifetimes —
// the monitoring story of Fig. 2, driven through the campaign engine.
//
// A small population (N = 8) of virtual devices is sampled with the
// campaign API: every device gets its own process-variation annotation
// and wear-out rate, and about half additionally carry an early-life
// defect (a hidden delay fault that magnifies after deployment).
// Programmable monitors watch the long path ends.  The deployed clock
// runs at 1.6 x the critical path, so the guard-band ladder unfolds
// over the lifetime: the wide window (1/3 clk) alerts first — the
// early-warning configuration of Fig. 2 (b) — and the narrow windows
// track the shrinking margin until imminent failure (Fig. 2 (c)).
//
// Because a device is a pure function of (campaign seed, index), the
// example then re-derives one marginal device from its index alone and
// replays its alert ladder in detail — the same determinism contract
// that makes fleet-scale campaigns resumable and thread-count
// independent (see DESIGN.md, "Campaign engine").
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "campaign/campaign.hpp"
#include "monitor/aging.hpp"
#include "monitor/policy.hpp"
#include "netlist/iscas_data.hpp"
#include "timing/delay_model.hpp"
#include "timing/sta_engine.hpp"

int main() {
    using namespace fastmon;

    const Netlist netlist = make_mini_alu();

    // --- an N=8 campaign: population sampling + rollout + aggregate --
    CampaignConfig config;
    config.population = 8;
    config.seed = 3;
    config.num_threads = 1;  // tiny population; keep the run serial
    // A heavily stressed automotive corner (+55 % delay over the
    // 10-year reference) and every second device marginal, so the
    // small population shows both lifecycle stories.
    config.model.aging.nominal = AgingModel{0.55, 1.0, 10.0};
    config.model.defect.incidence = 0.5;
    config.horizon_years = 12.0;
    // Under this aggressive wear-out everyone alerts within two years
    // and fails within the horizon; widen the burn-in screen and the
    // "early" cutoff accordingly so the classification story shows.
    config.screen_years = 2.0;
    config.aggregate.early_fail_years = 8.0;

    const CampaignResult result = run_campaign(netlist, config);
    std::cout << "circuit " << result.circuit << ", operating clk = "
              << result.clock_period << " ps (1.6 x cpl), "
              << result.num_monitors << " monitor(s), population "
              << result.outcomes.size() << "\n\n";

    std::cout << "device  marginal  screen  wide alert  failure  lead\n";
    for (const DeviceOutcome& out : result.outcomes) {
        auto years = [](double y) {
            char buf[16];
            if (y < 0.0) {
                std::snprintf(buf, sizeof buf, "%8s", "never");
            } else {
                std::snprintf(buf, sizeof buf, "%6.2f y", y);
            }
            return std::string(buf);
        };
        std::printf("  #%u      %s     %5.2f  %s  %s  %s\n", out.index,
                    out.marginal ? "yes" : " no", out.screen_score,
                    years(out.first_alert_years.back()).c_str(),
                    years(out.failure_years).c_str(),
                    years(out.lead_time_years()).c_str());
    }
    const CampaignAggregate& agg = result.aggregate;
    std::printf(
        "\n%zu of %zu marginal; %zu failed within %.0f y (%zu early); "
        "burn-in screen ROC AUC %.2f\n\n",
        agg.marginal, agg.population, agg.failed, config.horizon_years,
        agg.early_failures, agg.classification.roc_auc);

    // --- replay one device in detail, re-derived from its index ------
    // The campaign never stored this device: (seed, index) is enough to
    // rebuild its silicon, wear-out rate, and defects bit-identically.
    std::uint32_t marginal_index = 0;
    std::uint32_t healthy_index = 0;
    for (const DeviceOutcome& out : result.outcomes) {
        if (out.marginal) {
            marginal_index = out.index;
        } else {
            healthy_index = out.index;
        }
    }

    const DelayAnnotation nominal = DelayAnnotation::nominal(netlist);
    const StaResult sta = StaEngine(netlist, nominal, config.clock_margin).analyze();
    const MonitorPlacement placement =
        place_monitors(netlist, sta, config.monitor_fraction,
                       config.monitor_delay_fractions);
    const std::vector<GateId> sites = combinational_sites(netlist);
    const std::vector<double> grid =
        make_year_grid(config.horizon_years, config.step_years);

    auto replay = [&](const char* label, std::uint32_t index) {
        const DeviceSample sample =
            sample_device(config.model, config.seed, index, sites,
                          sta.clock_period);
        const DelayAnnotation silicon =
            DelayAnnotation::with_lognormal_variation(
                netlist, config.model.variation.sigma_log, sample.seed);
        LifetimeSimulator sim(netlist, silicon, sta.clock_period,
                              sample.aging, sample.seed);
        for (const MarginalDefect& defect : sample.defects) {
            sim.add_defect(defect);
        }
        std::cout << "--- device #" << index << ": " << label << " ---\n";
        std::cout << "year   arrival/clk   guard-band alerts (wide..narrow)\n";
        std::vector<bool> prev_alerts(placement.config_delays.size(), false);
        double failure_year = -1.0;
        for (const LifetimePoint& p : sim.sweep(grid, placement)) {
            const bool alerts_changed = p.alerts != prev_alerts;
            const bool yearly = std::fmod(p.years + 1e-9, 2.0) < 0.02;
            if (p.timing_failure && failure_year < 0.0) failure_year = p.years;
            if (!alerts_changed && !yearly &&
                !(p.timing_failure && failure_year == p.years)) {
                continue;
            }
            prev_alerts = p.alerts;
            std::printf("%5.2f   %6.1f%%       ", p.years,
                        100.0 * p.worst_arrival / sta.clock_period);
            for (std::size_t c = p.alerts.size(); c-- > 1;) {
                std::printf("%s", p.alerts[c] ? "A" : ".");
            }
            if (p.timing_failure) std::printf("   << TIMING FAILURE");
            std::printf("\n");
        }
        const std::vector<double> first =
            sim.first_alert_years(grid, placement);
        if (failure_year >= 0.0 && first.back() >= 0.0) {
            std::printf(
                "failure at %.2f y; the wide guard band alerted %.2f y "
                "earlier\n",
                failure_year, failure_year - first.back());
        }
        std::cout << "\n";
    };

    replay("wear-out only", healthy_index);
    replay("early-life defect", marginal_index);

    std::cout << "The marginal device walks the same alert ladder years\n"
                 "earlier — the early-life signature the paper's FAST reuse\n"
                 "of these monitors exposes already at manufacturing test,\n"
                 "and that the campaign aggregate quantifies fleet-wide.\n\n";

    // --- Closed-loop operation: the Fig. 2 procedure as a policy -----
    // Start wide, alert -> countermeasure (frequency/voltage scaling
    // halves the further aging rate) -> reconfigure narrower; the
    // narrowest band's alert flags imminent failure.
    std::cout << "--- adaptive policy (alert -> countermeasure ->"
                 " narrower guard band) ---\n";
    LifetimeSimulator managed(netlist, nominal, sta.clock_period,
                              config.model.aging.nominal, 1);
    PolicyConfig policy;
    policy.countermeasure_rate_scale = 0.5;
    policy.horizon_years = 25.0;
    const PolicyRun run = run_adaptive_policy(managed, placement, policy);
    for (const PolicyEvent& e : run.events) {
        std::printf("  %6.2f y  %-16s (guard band %.0f ps)\n", e.years,
                    to_string(e.kind).c_str(),
                    placement.config_delays[e.config]);
    }
    if (run.predicted_failure_years >= 0.0) {
        std::printf("  RUL prediction at first alert: failure near %.1f y\n",
                    run.predicted_failure_years);
    }
    PolicyConfig unmanaged = policy;
    unmanaged.countermeasure_rate_scale = 1.0;
    const PolicyRun baseline =
        run_adaptive_policy(managed, placement, unmanaged);
    if (run.failed() && baseline.failed()) {
        std::printf(
            "  lifetime: %.2f y unmanaged -> %.2f y with countermeasures\n",
            baseline.failure_years, run.failure_years);
    } else if (baseline.failed()) {
        std::printf(
            "  lifetime: %.2f y unmanaged -> survives the %.0f y horizon"
            " with countermeasures\n",
            baseline.failure_years, policy.horizon_years);
    }
    return 0;
}
