#include "campaign/fleet.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "campaign/checkpoint.hpp"
#include "campaign/shard.hpp"
#include "util/atomic_file.hpp"
#include "util/log.hpp"
#include "util/subprocess.hpp"

namespace fastmon {

namespace {

bool make_dir(const std::string& path) {
    return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
}

/// Stems of the "<id>.json" entries in `dir`, sorted.
std::vector<std::string> list_job_ids(const std::string& dir) {
    std::vector<std::string> ids;
    DIR* d = ::opendir(dir.c_str());
    if (!d) return ids;
    while (const dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        constexpr std::string_view kSuffix = ".json";
        if (name.size() <= kSuffix.size() ||
            name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                         kSuffix) != 0) {
            continue;
        }
        // Skip in-flight temp files from atomic writes.
        if (name.find(".partial") != std::string::npos) continue;
        ids.push_back(name.substr(0, name.size() - kSuffix.size()));
    }
    ::closedir(d);
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::optional<Json> read_json_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return Json::parse(buffer.str());
}

double steady_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// FleetJob

Json FleetJob::to_json() const {
    Json j = Json::object();
    j.set("schema", "fastmon-fleet-job-v1");
    j.set("id", id);
    j.set("shard_index", shard_index);
    j.set("shard_count", shard_count);
    j.set("attempts", attempts);
    if (!last_error.empty()) j.set("last_error", last_error);
    if (!fault_inject.empty()) {
        j.set("fault_inject", fault_inject);
        j.set("fault_first_attempt_only", fault_first_attempt_only);
    }
    return j;
}

std::optional<FleetJob> FleetJob::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* id = j.find("id");
    const Json* shard_index = j.find("shard_index");
    const Json* shard_count = j.find("shard_count");
    if (!id || !id->is_string() || !shard_index ||
        !shard_index->is_number() || !shard_count ||
        !shard_count->is_number()) {
        return std::nullopt;
    }
    FleetJob job;
    job.id = id->as_string();
    job.shard_index = static_cast<std::uint32_t>(shard_index->as_number());
    job.shard_count = static_cast<std::uint32_t>(shard_count->as_number());
    if (job.shard_count == 0 || job.shard_index >= job.shard_count) {
        return std::nullopt;
    }
    if (const Json* attempts = j.find("attempts");
        attempts && attempts->is_number()) {
        job.attempts = static_cast<std::uint32_t>(attempts->as_number());
    }
    if (const Json* err = j.find("last_error"); err && err->is_string()) {
        job.last_error = err->as_string();
    }
    if (const Json* spec = j.find("fault_inject");
        spec && spec->is_string()) {
        job.fault_inject = spec->as_string();
    }
    if (const Json* once = j.find("fault_first_attempt_only");
        once && once->is_bool()) {
        job.fault_first_attempt_only = once->as_bool();
    }
    return job;
}

// ---------------------------------------------------------------------------
// FleetQueue

FleetQueue::FleetQueue(std::string root) : root_(std::move(root)) {}

std::string FleetQueue::queue_dir() const { return root_ + "/queue"; }
std::string FleetQueue::running_dir() const { return root_ + "/running"; }
std::string FleetQueue::done_dir() const { return root_ + "/done"; }
std::string FleetQueue::quarantine_dir() const {
    return root_ + "/quarantine";
}
std::string FleetQueue::shards_dir() const { return root_ + "/shards"; }
std::string FleetQueue::logs_dir() const { return root_ + "/logs"; }

bool FleetQueue::init(std::string* error) {
    for (const std::string& dir :
         {root_, queue_dir(), running_dir(), done_dir(), quarantine_dir(),
          shards_dir(), logs_dir()}) {
        if (!make_dir(dir)) {
            if (error) *error = "cannot create " + dir;
            return false;
        }
    }
    return true;
}

bool FleetQueue::enqueue(const FleetJob& job) {
    return atomic_write_file(queue_dir() + "/" + job.id + ".json",
                             job.to_json().dump(2));
}

std::optional<FleetJob> FleetQueue::claim(const std::string& id) {
    const std::string from = queue_dir() + "/" + id + ".json";
    const std::string to = running_dir() + "/" + id + ".json";
    // The atomic claim: exactly one renamer wins; the losers see ENOENT.
    if (::rename(from.c_str(), to.c_str()) != 0) return std::nullopt;
    const auto j = read_json_file(to);
    auto job = j ? FleetJob::from_json(*j) : std::nullopt;
    if (!job) {
        log_warn() << "fleet: claimed job " << id
                   << " is unreadable; leaving it in running/ for "
                      "inspection";
        return std::nullopt;
    }
    return job;
}

bool FleetQueue::requeue(const FleetJob& job) {
    if (!atomic_write_file(queue_dir() + "/" + job.id + ".json",
                           job.to_json().dump(2))) {
        return false;
    }
    ::unlink((running_dir() + "/" + job.id + ".json").c_str());
    return true;
}

bool FleetQueue::complete(const FleetJob& job) {
    if (!atomic_write_file(done_dir() + "/" + job.id + ".json",
                           job.to_json().dump(2))) {
        return false;
    }
    ::unlink((running_dir() + "/" + job.id + ".json").c_str());
    return true;
}

bool FleetQueue::quarantine(const FleetJob& job, const std::string& reason) {
    Json j = job.to_json();
    j.set("quarantined", true);
    j.set("reason", reason);
    if (!atomic_write_file(quarantine_dir() + "/" + job.id + ".json",
                           j.dump(2))) {
        return false;
    }
    ::unlink((running_dir() + "/" + job.id + ".json").c_str());
    return true;
}

std::size_t FleetQueue::recover_stale() {
    std::size_t recovered = 0;
    for (const std::string& id : list_job_ids(running_dir())) {
        const std::string from = running_dir() + "/" + id + ".json";
        const std::string to = queue_dir() + "/" + id + ".json";
        if (::rename(from.c_str(), to.c_str()) == 0) ++recovered;
    }
    return recovered;
}

std::vector<std::string> FleetQueue::pending() const {
    return list_job_ids(queue_dir());
}
std::vector<std::string> FleetQueue::done() const {
    return list_job_ids(done_dir());
}
std::vector<std::string> FleetQueue::quarantined() const {
    return list_job_ids(quarantine_dir());
}

// ---------------------------------------------------------------------------
// Shard file layout

std::string shard_artifact_path(const std::string& root,
                                std::uint32_t shard_index) {
    return root + "/shards/shard-" + std::to_string(shard_index) + ".json";
}
std::string shard_checkpoint_path(const std::string& root,
                                  std::uint32_t shard_index) {
    return root + "/shards/shard-" + std::to_string(shard_index) +
           ".ckpt.json";
}
std::string shard_heartbeat_path(const std::string& root,
                                 std::uint32_t shard_index) {
    return root + "/shards/shard-" + std::to_string(shard_index) +
           ".heartbeat.json";
}
std::string shard_log_path(const std::string& root,
                           std::uint32_t shard_index,
                           std::uint32_t attempt) {
    return root + "/logs/shard-" + std::to_string(shard_index) +
           ".attempt-" + std::to_string(attempt) + ".log";
}

// ---------------------------------------------------------------------------
// SubprocessShardLauncher

namespace {

class SubprocessShardHandle : public ShardHandle {
public:
    explicit SubprocessShardHandle(Subprocess child)
        : child_(std::move(child)) {}
    std::optional<int> poll() override { return child_.poll(); }
    void kill() override { child_.kill(); }

private:
    Subprocess child_;
};

}  // namespace

SubprocessShardLauncher::SubprocessShardLauncher(
    std::string campaign_bin, std::vector<std::string> campaign_args)
    : campaign_bin_(std::move(campaign_bin)),
      campaign_args_(std::move(campaign_args)) {}

std::unique_ptr<ShardHandle> SubprocessShardLauncher::launch(
    const ShardLaunch& spec, std::string* error) {
    std::vector<std::string> argv;
    argv.push_back(campaign_bin_);
    argv.insert(argv.end(), campaign_args_.begin(), campaign_args_.end());
    argv.push_back("--shard");
    argv.push_back(std::to_string(spec.shard_index) + "/" +
                   std::to_string(spec.shard_count));
    argv.push_back("--shard-out");
    argv.push_back(spec.artifact_path);
    argv.push_back("--checkpoint");
    argv.push_back(spec.checkpoint_path);
    // Always --resume: on the first attempt there is no checkpoint and
    // the run starts fresh; on a retry the crashed attempt's snapshot
    // turns the redo into an incremental completion.
    argv.push_back("--resume");
    argv.push_back("--heartbeat");
    argv.push_back(spec.heartbeat_path);

    SpawnOptions options;
    options.output_path = spec.log_path;
    // Exported even when empty so a supervisor running under an armed
    // FASTMON_FAULT_INJECT never leaks its own spec into clean workers.
    options.env.emplace_back("FASTMON_FAULT_INJECT", spec.fault_inject);
    auto child = Subprocess::spawn(argv, options, error);
    if (!child) return nullptr;
    return std::make_unique<SubprocessShardHandle>(std::move(*child));
}

// ---------------------------------------------------------------------------
// Supervisor

Json FleetReport::to_json() const {
    Json j = Json::object();
    Json rows = Json::array();
    for (const FleetJobRecord& r : jobs) {
        Json row = Json::object();
        row.set("id", r.id);
        row.set("shard_index", r.shard_index);
        row.set("attempts", r.attempts);
        row.set("state", r.state);
        if (!r.detail.empty()) row.set("detail", r.detail);
        rows.push_back(std::move(row));
    }
    j.set("jobs", std::move(rows));
    j.set("jobs_done", jobs_done);
    j.set("jobs_quarantined", jobs_quarantined);
    j.set("retries", retries);
    j.set("stalls_killed", stalls_killed);
    j.set("status", status.to_json());
    return j;
}

namespace {

/// One in-flight shard attempt.
struct ActiveAttempt {
    FleetJob job;
    std::unique_ptr<ShardHandle> handle;
    std::string artifact_path;
    std::string heartbeat_path;
    double launched_at = 0.0;
    double last_progress_at = 0.0;
    double last_devices_done = -1.0;
    bool killed_for_stall = false;
};

/// Heartbeat progress signal: devices_done when readable, plus any
/// terminal state counts as progress (the worker is wrapping up, not
/// hung).
std::optional<double> heartbeat_progress(const std::string& path) {
    const auto j = read_json_file(path);
    if (!j) return std::nullopt;
    const Json* devices = j->find("devices_done");
    const Json* state = j->find("state");
    if (!devices || !devices->is_number()) return std::nullopt;
    double signal = devices->as_number();
    if (state && state->is_string() && state->as_string() != "running") {
        signal += 0.5;  // distinct from any integer devices_done
    }
    return signal;
}

std::string exit_detail(int code) {
    if (code > 128) {
        return "killed by signal " + std::to_string(code - 128);
    }
    return "exit code " + std::to_string(code);
}

/// Validates the artifact a 0-exit worker left behind.  Returns the
/// failure reason, or "" when the artifact is trustworthy.
std::string validate_artifact(const FleetConfig& config,
                              const ActiveAttempt& active) {
    std::string why;
    const auto shard = load_shard_result(active.artifact_path, &why);
    if (!shard) {
        if (why.empty()) return "artifact missing after exit 0";
        return "artifact invalid: " + why;
    }
    if (shard->shard_index != active.job.shard_index ||
        shard->shard_count != active.job.shard_count) {
        return "artifact has the wrong shard coordinates";
    }
    if (!shard->complete()) {
        return "artifact covers " + std::to_string(shard->outcomes.size()) +
               " of " +
               std::to_string(shard->range_end - shard->range_begin) +
               " devices";
    }
    if (!config.expected_fingerprint.empty()) {
        const auto expected =
            parse_fingerprint_hex(config.expected_fingerprint);
        if (!expected || *expected != shard->fingerprint) {
            return "artifact campaign fingerprint mismatch";
        }
    }
    return "";
}

}  // namespace

FleetReport run_fleet(const FleetConfig& config, FleetQueue& queue,
                      ShardLauncher& launcher) {
    FleetReport report;
    std::vector<ActiveAttempt> active;
    /// Job id -> steady time before which it must not be re-claimed.
    std::map<std::string, double> backoff_until;

    const auto record_failure = [&](FleetJob job, const std::string& why) {
        job.last_error = why;
        log_warn() << "fleet: shard " << job.shard_index << " attempt "
                   << job.attempts << " failed: " << why;
        if (job.attempts >= config.max_attempts) {
            queue.quarantine(job, why);
            FleetJobRecord rec;
            rec.id = job.id;
            rec.shard_index = job.shard_index;
            rec.attempts = job.attempts;
            rec.state = "quarantined";
            rec.detail = why;
            report.jobs.push_back(std::move(rec));
            ++report.jobs_quarantined;
            return;
        }
        const double factor = static_cast<double>(1ULL << std::min<
                                  std::uint32_t>(job.attempts - 1, 20));
        backoff_until[job.id] =
            steady_seconds() +
            std::min(config.backoff_initial_seconds * factor,
                     config.backoff_max_seconds);
        queue.requeue(job);
        ++report.retries;
    };

    for (;;) {
        // Launch phase: claim eligible jobs into free slots.
        if (active.size() < config.max_parallel) {
            const double now = steady_seconds();
            for (const std::string& id : queue.pending()) {
                if (active.size() >= config.max_parallel) break;
                if (const auto it = backoff_until.find(id);
                    it != backoff_until.end() && it->second > now) {
                    continue;
                }
                auto job = queue.claim(id);
                if (!job) continue;  // raced away or unreadable
                job->attempts += 1;

                ShardLaunch spec;
                spec.shard_index = job->shard_index;
                spec.shard_count = job->shard_count;
                spec.attempt = job->attempts;
                spec.artifact_path =
                    shard_artifact_path(queue.root(), job->shard_index);
                spec.checkpoint_path =
                    shard_checkpoint_path(queue.root(), job->shard_index);
                spec.heartbeat_path =
                    shard_heartbeat_path(queue.root(), job->shard_index);
                spec.log_path = shard_log_path(
                    queue.root(), job->shard_index, job->attempts);
                if (!job->fault_inject.empty() &&
                    (!job->fault_first_attempt_only ||
                     job->attempts == 1)) {
                    spec.fault_inject = job->fault_inject;
                }

                std::string error;
                auto handle = launcher.launch(spec, &error);
                if (!handle) {
                    record_failure(*job, "launch failed: " + error);
                    continue;
                }
                ActiveAttempt attempt;
                attempt.job = std::move(*job);
                attempt.handle = std::move(handle);
                attempt.artifact_path = spec.artifact_path;
                attempt.heartbeat_path = spec.heartbeat_path;
                attempt.launched_at = steady_seconds();
                attempt.last_progress_at = attempt.launched_at;
                active.push_back(std::move(attempt));
            }
        }

        if (active.empty()) {
            // Nothing running: done, unless jobs are merely backing off.
            const auto ids = queue.pending();
            if (ids.empty()) break;
            double wake = steady_seconds() + config.poll_seconds;
            for (const std::string& id : ids) {
                if (const auto it = backoff_until.find(id);
                    it != backoff_until.end()) {
                    wake = std::min(wake, it->second);
                }
            }
            const double pause = wake - steady_seconds();
            if (pause > 0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(pause));
            }
            continue;
        }

        std::this_thread::sleep_for(
            std::chrono::duration<double>(config.poll_seconds));

        // Poll phase: reap exits, detect stalls.
        for (std::size_t i = 0; i < active.size();) {
            ActiveAttempt& attempt = active[i];
            const auto exit = attempt.handle->poll();
            if (!exit) {
                // Still running: watch the heartbeat for forward
                // progress.  No heartbeat yet counts the launch time
                // as the last progress.
                const double now = steady_seconds();
                const auto progress =
                    heartbeat_progress(attempt.heartbeat_path);
                if (progress &&
                    *progress != attempt.last_devices_done) {
                    attempt.last_devices_done = *progress;
                    attempt.last_progress_at = now;
                }
                if (now - attempt.last_progress_at >
                        config.stall_timeout_seconds &&
                    !attempt.killed_for_stall) {
                    log_warn() << "fleet: shard "
                               << attempt.job.shard_index
                               << " stalled (no heartbeat progress for "
                               << config.stall_timeout_seconds
                               << " s); killing";
                    attempt.killed_for_stall = true;
                    attempt.handle->kill();
                    ++report.stalls_killed;
                }
                ++i;
                continue;
            }

            // Attempt finished; judge it.
            std::string why;
            if (attempt.killed_for_stall) {
                why = "hung (no heartbeat progress); killed";
            } else if (*exit != 0) {
                why = exit_detail(*exit);
            } else {
                why = validate_artifact(config, attempt);
            }
            FleetJob job = std::move(attempt.job);
            active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));

            if (!why.empty()) {
                record_failure(std::move(job), why);
                continue;
            }
            queue.complete(job);
            FleetJobRecord rec;
            rec.id = job.id;
            rec.shard_index = job.shard_index;
            rec.attempts = job.attempts;
            rec.state = "done";
            rec.detail = job.last_error;
            report.jobs.push_back(std::move(rec));
            ++report.jobs_done;
        }
    }

    std::sort(report.jobs.begin(), report.jobs.end(),
              [](const FleetJobRecord& a, const FleetJobRecord& b) {
                  return a.shard_index < b.shard_index;
              });

    PhaseStatus execute;
    execute.name = "fleet_execute";
    if (report.jobs_done == 0 && report.jobs_quarantined > 0) {
        execute.outcome = PhaseOutcome::Failed;
        execute.detail = "every job was quarantined";
    } else if (report.jobs_quarantined > 0) {
        execute.outcome = PhaseOutcome::Degraded;
        execute.detail = std::to_string(report.jobs_quarantined) +
                         " job(s) quarantined";
    } else if (report.retries > 0) {
        execute.outcome = PhaseOutcome::Degraded;
        execute.detail = std::to_string(report.retries) +
                         " failed attempt(s) retried";
    }
    report.status.phases.push_back(std::move(execute));
    return report;
}

}  // namespace fastmon
