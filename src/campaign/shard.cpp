#include "campaign/shard.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "campaign/checkpoint.hpp"
#include "util/atomic_file.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {

namespace {

Json sketch_block(const QuantileSketch& sketch) {
    Json j = Json::object();
    j.set("summary", sketch.summary());
    j.set("sketch", sketch.to_json());
    return j;
}

/// Flips one digit somewhere in the payload half of the serialized
/// artifact: the result still parses as JSON, so only the content
/// checksum can catch it — exactly the damage class the merge side
/// must detect.  (shard.corrupt_artifact fault-injection helper.)
void corrupt_in_place(std::string& text) {
    const std::size_t start = text.size() / 2;
    for (std::size_t i = start; i < text.size(); ++i) {
        if (text[i] >= '0' && text[i] <= '8') {
            ++text[i];
            return;
        }
        if (text[i] == '9') {
            text[i] = '8';
            return;
        }
    }
    // No digit in the back half (cannot happen for a real artifact —
    // the outcomes array is full of numbers); truncate instead.
    if (!text.empty()) text.resize(text.size() / 2);
}

}  // namespace

Json ShardResult::to_json() const {
    Json payload = Json::object();
    payload.set("fingerprint", fingerprint_hex(fingerprint));
    payload.set("shard_index", shard_index);
    payload.set("shard_count", shard_count);
    payload.set("population", population);
    payload.set("range_begin", range_begin);
    payload.set("range_end", range_end);
    payload.set("early_fail_years", early_fail_years);
    payload.set("campaign", campaign);
    payload.set("aggregate", aggregate);
    Json telemetry = Json::object();
    telemetry.set("roll_latency_us", sketch_block(roll_latency_us));
    telemetry.set("first_alert_years", sketch_block(first_alert_years));
    telemetry.set("failure_years", sketch_block(failure_years));
    payload.set("telemetry", std::move(telemetry));
    Json out = Json::array();
    for (const DeviceOutcome& o : outcomes) out.push_back(o.to_json());
    payload.set("outcomes", std::move(out));

    Json j = Json::object();
    j.set("schema", std::string(kShardSchema));
    j.set("format", 1);
    // Content checksum over the compact payload serialization.  The
    // dump is a deterministic function of the parsed values, so the
    // loader can recompute it from a re-serialization and catch any
    // corruption that survived the JSON parse.
    j.set("checksum",
          fingerprint_hex(checkpoint_fingerprint(payload.dump(0))));
    j.set("payload", std::move(payload));
    return j;
}

std::optional<ShardResult> ShardResult::from_json(const Json& j,
                                                  std::string* error) {
    const auto reject = [&](std::string why) {
        if (error) *error = std::move(why);
        return std::nullopt;
    };
    if (!j.is_object()) return reject("shard artifact is not a JSON object");
    const Json* schema = j.find("schema");
    if (!schema || !schema->is_string() ||
        schema->as_string() != kShardSchema) {
        return reject("shard artifact has the wrong schema (expected " +
                      std::string(kShardSchema) + ")");
    }
    const Json* format = j.find("format");
    if (!format || !format->is_number() || format->as_number() != 1.0) {
        return reject("unsupported shard artifact format (expected 1)");
    }
    const Json* checksum = j.find("checksum");
    const Json* payload = j.find("payload");
    if (!checksum || !checksum->is_string()) {
        return reject("shard artifact has no content checksum");
    }
    if (!payload || !payload->is_object()) {
        return reject("shard artifact has no payload object");
    }
    const auto stored = parse_fingerprint_hex(checksum->as_string());
    if (!stored ||
        *stored != checkpoint_fingerprint(payload->dump(0))) {
        return reject(
            "shard artifact checksum mismatch (torn or corrupt)");
    }

    const Json* fingerprint = payload->find("fingerprint");
    const Json* shard_index = payload->find("shard_index");
    const Json* shard_count = payload->find("shard_count");
    const Json* population = payload->find("population");
    const Json* range_begin = payload->find("range_begin");
    const Json* range_end = payload->find("range_end");
    const Json* early_fail = payload->find("early_fail_years");
    const Json* campaign = payload->find("campaign");
    const Json* aggregate = payload->find("aggregate");
    const Json* telemetry = payload->find("telemetry");
    const Json* outcomes = payload->find("outcomes");
    if (!fingerprint || !fingerprint->is_string() || !shard_index ||
        !shard_index->is_number() || !shard_count ||
        !shard_count->is_number() || !population ||
        !population->is_number() || !range_begin ||
        !range_begin->is_number() || !range_end ||
        !range_end->is_number() || !early_fail ||
        !early_fail->is_number() || !campaign || !campaign->is_object() ||
        !aggregate || !aggregate->is_object() || !telemetry ||
        !telemetry->is_object() || !outcomes || !outcomes->is_array()) {
        return reject("shard artifact payload has an invalid structure");
    }
    ShardResult shard;
    const auto fp = parse_fingerprint_hex(fingerprint->as_string());
    if (!fp) return reject("shard fingerprint is malformed");
    shard.fingerprint = *fp;
    shard.shard_index = static_cast<std::uint32_t>(shard_index->as_number());
    shard.shard_count = static_cast<std::uint32_t>(shard_count->as_number());
    shard.population = static_cast<std::uint64_t>(population->as_number());
    shard.range_begin = static_cast<std::uint64_t>(range_begin->as_number());
    shard.range_end = static_cast<std::uint64_t>(range_end->as_number());
    shard.early_fail_years = early_fail->as_number();
    if (shard.shard_count == 0 || shard.shard_index >= shard.shard_count) {
        return reject("shard coordinates are out of range");
    }
    if (shard.range_begin > shard.range_end ||
        shard.range_end > shard.population) {
        return reject("shard device range is out of range");
    }
    const auto expected_range = shard_device_range(
        shard.population, shard.shard_index, shard.shard_count);
    if (shard.range_begin != expected_range.first ||
        shard.range_end != expected_range.second) {
        return reject("shard device range does not match its coordinates");
    }
    shard.campaign = *campaign;
    shard.aggregate = *aggregate;

    const auto load_sketch = [&](const char* key, QuantileSketch* into) {
        const Json* block = telemetry->find(key);
        const Json* raw = block ? block->find("sketch") : nullptr;
        if (!raw) return false;
        auto sketch = QuantileSketch::from_json(*raw);
        if (!sketch) return false;
        *into = std::move(*sketch);
        return true;
    };
    if (!load_sketch("roll_latency_us", &shard.roll_latency_us) ||
        !load_sketch("first_alert_years", &shard.first_alert_years) ||
        !load_sketch("failure_years", &shard.failure_years)) {
        return reject("shard telemetry sketches are malformed");
    }

    std::uint32_t prev_index = 0;
    for (const Json& o : outcomes->as_array()) {
        auto outcome = DeviceOutcome::from_json(o);
        if (!outcome) return reject("shard has a malformed outcome");
        if (outcome->index < shard.range_begin ||
            outcome->index >= shard.range_end) {
            return reject("shard outcome index outside its device range");
        }
        if (!shard.outcomes.empty() && outcome->index <= prev_index) {
            return reject("shard outcomes are not strictly ascending");
        }
        prev_index = outcome->index;
        shard.outcomes.push_back(std::move(*outcome));
    }

    // Cross-check: the stored partial aggregate must be exactly what
    // the outcomes re-aggregate to.  The checksum already rules out
    // on-disk damage; this rules out writer/reader logic drift.
    AggregateConfig agg_config;
    agg_config.early_fail_years = shard.early_fail_years;
    if (aggregate_outcomes(shard.outcomes, agg_config).to_json() !=
        shard.aggregate) {
        return reject("shard aggregate does not match its outcomes");
    }
    return shard;
}

bool ShardResult::merge(const ShardResult& other, std::string* error) {
    const auto fail = [&](std::string why) {
        if (error) *error = std::move(why);
        return false;
    };
    if (fingerprint != other.fingerprint) {
        return fail("campaign fingerprint mismatch");
    }
    if (population != other.population) {
        return fail("campaign population mismatch");
    }
    if (early_fail_years != other.early_fail_years) {
        return fail("early-fail cutoff mismatch");
    }
    // Union by ascending device index; both inputs are sorted, so a
    // linear merge suffices — and surfaces any overlap.
    std::vector<DeviceOutcome> merged;
    merged.reserve(outcomes.size() + other.outcomes.size());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < outcomes.size() && b < other.outcomes.size()) {
        if (outcomes[a].index == other.outcomes[b].index) {
            return fail("shards overlap at device " +
                        std::to_string(outcomes[a].index));
        }
        if (outcomes[a].index < other.outcomes[b].index) {
            merged.push_back(outcomes[a++]);
        } else {
            merged.push_back(other.outcomes[b++]);
        }
    }
    merged.insert(merged.end(), outcomes.begin() + a, outcomes.end());
    merged.insert(merged.end(), other.outcomes.begin() + b,
                  other.outcomes.end());
    outcomes = std::move(merged);
    // The merged "shard" spans the envelope of both ranges (a fold of
    // non-adjacent shards is temporarily sparse inside it; once every
    // shard has been folded the envelope is [0, population) and dense).
    range_begin = std::min(range_begin, other.range_begin);
    range_end = std::max(range_end, other.range_end);
    shard_index = std::min(shard_index, other.shard_index);
    roll_latency_us.merge(other.roll_latency_us);
    first_alert_years.merge(other.first_alert_years);
    failure_years.merge(other.failure_years);
    AggregateConfig agg_config;
    agg_config.early_fail_years = early_fail_years;
    aggregate = aggregate_outcomes(outcomes, agg_config).to_json();
    return true;
}

ShardResult make_shard_result(const Netlist& netlist,
                              const CampaignConfig& config,
                              const CampaignResult& result) {
    ShardResult shard;
    shard.fingerprint =
        checkpoint_fingerprint(campaign_canonical(netlist, config));
    shard.shard_index = static_cast<std::uint32_t>(config.shard_index);
    shard.shard_count = static_cast<std::uint32_t>(
        std::max<std::size_t>(config.shard_count, 1));
    shard.population = config.population;
    shard.range_begin = result.range_begin;
    shard.range_end = result.range_end;
    shard.early_fail_years = config.aggregate.early_fail_years;
    const Json report = result.to_json(config);
    if (const Json* campaign = report.find("campaign")) {
        shard.campaign = *campaign;
    }
    if (const Json* aggregate = report.find("aggregate")) {
        shard.aggregate = *aggregate;
    }
    shard.outcomes = result.outcomes;
    const auto take_sketch = [&](const char* key, QuantileSketch* into) {
        const Json* block = result.telemetry.find(key);
        const Json* raw = block ? block->find("sketch") : nullptr;
        if (!raw) return;
        if (auto sketch = QuantileSketch::from_json(*raw)) {
            *into = std::move(*sketch);
        }
    };
    take_sketch("roll_latency_us", &shard.roll_latency_us);
    take_sketch("first_alert_years", &shard.first_alert_years);
    take_sketch("failure_years", &shard.failure_years);
    return shard;
}

bool save_shard_result(const std::string& path, const ShardResult& shard) {
    std::string text = shard.to_json().dump(2);
    if (FaultInjector::global().trip("shard.corrupt_artifact")) {
        corrupt_in_place(text);
    }
    return atomic_write_file(path, text);
}

std::optional<ShardResult> load_shard_result(const std::string& path,
                                             std::string* error) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;  // missing file; no error message
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string parse_error;
    const auto j = Json::parse(buffer.str(), &parse_error);
    if (!j) {
        if (error) {
            *error = "shard artifact is not valid JSON: " + parse_error;
        }
        return std::nullopt;
    }
    return ShardResult::from_json(*j, error);
}

const char* shard_state_name(ShardState state) {
    switch (state) {
        case ShardState::Ok: return "ok";
        case ShardState::Incomplete: return "incomplete";
        case ShardState::Missing: return "missing";
        case ShardState::Corrupt: return "corrupt";
        case ShardState::FingerprintMismatch: return "fingerprint-mismatch";
    }
    return "unknown";
}

namespace {

bool file_exists(const std::string& path) {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

ShardMerge merge_shard_results(const std::vector<std::string>& paths) {
    ShardMerge out;
    std::optional<ShardResult> merged;
    std::vector<bool> seen_index;

    for (std::size_t slot = 0; slot < paths.size(); ++slot) {
        ShardStatus status;
        status.slot = slot;
        status.path = paths[slot];
        std::string why;
        auto shard = load_shard_result(paths[slot], &why);
        if (!shard) {
            if (why.empty() && !file_exists(paths[slot])) {
                status.state = ShardState::Missing;
                status.detail = "artifact file not found";
            } else {
                status.state = ShardState::Corrupt;
                status.detail = why.empty() ? "unreadable artifact" : why;
            }
            out.shards.push_back(std::move(status));
            continue;
        }
        status.shard_index = shard->shard_index;
        status.devices = shard->outcomes.size();
        if (merged && shard->fingerprint != merged->fingerprint) {
            status.state = ShardState::FingerprintMismatch;
            status.detail =
                "campaign fingerprint " +
                fingerprint_hex(shard->fingerprint) +
                " does not match " + fingerprint_hex(merged->fingerprint);
            out.shards.push_back(std::move(status));
            continue;
        }
        if (merged && shard->shard_count != merged->shard_count) {
            status.state = ShardState::FingerprintMismatch;
            status.detail = "shard count " +
                            std::to_string(shard->shard_count) +
                            " does not match " +
                            std::to_string(merged->shard_count);
            out.shards.push_back(std::move(status));
            continue;
        }
        if (seen_index.empty()) {
            seen_index.assign(shard->shard_count, false);
        }
        if (shard->shard_index < seen_index.size() &&
            seen_index[shard->shard_index]) {
            status.state = ShardState::Corrupt;
            status.detail = "duplicate artifact for shard " +
                            std::to_string(shard->shard_index);
            out.shards.push_back(std::move(status));
            continue;
        }
        if (shard->shard_index < seen_index.size()) {
            seen_index[shard->shard_index] = true;
        }
        status.state = shard->complete() ? ShardState::Ok
                                         : ShardState::Incomplete;
        if (!shard->complete()) {
            status.detail =
                "covers " + std::to_string(shard->outcomes.size()) +
                " of " +
                std::to_string(shard->range_end - shard->range_begin) +
                " devices (cancelled mid-run?)";
        }
        if (!merged) {
            merged = std::move(*shard);
        } else if (!merged->merge(*shard, &why)) {
            status.state = ShardState::Corrupt;
            status.detail = "merge rejected: " + why;
            out.shards.push_back(std::move(status));
            continue;
        }
        out.shards.push_back(std::move(status));
    }

    out.mergeable = merged.has_value();
    out.devices_merged = merged ? merged->outcomes.size() : 0;
    out.devices_expected = merged ? merged->population : 0;
    std::size_t shards_ok = 0;
    for (const ShardStatus& s : out.shards) {
        if (s.state == ShardState::Ok) ++shards_ok;
    }
    const bool full_coverage =
        merged && out.devices_merged == out.devices_expected;
    out.complete = full_coverage && shards_ok == out.shards.size() &&
                   (merged->shard_count == out.shards.size());

    // Honest status: merge_validate says how many artifacts survived,
    // merge_aggregate says how much of the population the aggregate
    // actually covers.
    PhaseStatus validate;
    validate.name = "merge_validate";
    if (!merged) {
        validate.outcome = PhaseOutcome::Failed;
        validate.detail = "no valid shard artifacts";
    } else if (shards_ok != out.shards.size() ||
               (merged->shard_count != out.shards.size())) {
        validate.outcome = PhaseOutcome::Degraded;
        validate.detail = std::to_string(shards_ok) + " of " +
                          std::to_string(merged->shard_count) +
                          " shards ok";
    }
    out.status.phases.push_back(validate);

    PhaseStatus aggregate_phase;
    aggregate_phase.name = "merge_aggregate";
    if (!merged) {
        aggregate_phase.outcome = PhaseOutcome::Skipped;
        aggregate_phase.detail = "nothing to aggregate";
    } else if (!full_coverage) {
        aggregate_phase.outcome = PhaseOutcome::Degraded;
        aggregate_phase.detail =
            "aggregate covers " + std::to_string(out.devices_merged) +
            " of " + std::to_string(out.devices_expected) + " devices";
    }
    out.status.phases.push_back(aggregate_phase);

    // Merged report: campaign/aggregate verbatim from the fold (bit-
    // identical to the unsharded run when complete), merge bookkeeping
    // and combined telemetry in the run block.
    Json report = Json::object();
    if (merged) {
        report.set("campaign", merged->campaign);
        report.set("aggregate", merged->aggregate);
    }
    Json run = Json::object();
    Json merge_block = Json::object();
    merge_block.set("shard_count",
                    merged ? merged->shard_count
                           : static_cast<std::uint32_t>(paths.size()));
    Json shards_json = Json::array();
    for (const ShardStatus& s : out.shards) {
        Json row = Json::object();
        row.set("slot", s.slot);
        row.set("path", s.path);
        row.set("state", shard_state_name(s.state));
        if (!s.detail.empty()) row.set("detail", s.detail);
        row.set("devices", s.devices);
        if (s.state == ShardState::Ok ||
            s.state == ShardState::Incomplete) {
            row.set("shard_index", s.shard_index);
        }
        shards_json.push_back(std::move(row));
    }
    merge_block.set("shards", std::move(shards_json));
    merge_block.set("devices_merged", out.devices_merged);
    merge_block.set("devices_expected", out.devices_expected);
    merge_block.set("complete", out.complete);
    run.set("merge", std::move(merge_block));
    if (merged) {
        Json telemetry = Json::object();
        telemetry.set("roll_latency_us",
                      sketch_block(merged->roll_latency_us));
        telemetry.set("first_alert_years",
                      sketch_block(merged->first_alert_years));
        telemetry.set("failure_years",
                      sketch_block(merged->failure_years));
        run.set("telemetry", std::move(telemetry));
    }
    run.set("status", out.status.to_json());
    report.set("run", std::move(run));
    out.report = std::move(report);
    return out;
}

}  // namespace fastmon
