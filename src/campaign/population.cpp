#include "campaign/population.hpp"

#include <cmath>

#include "util/prng.hpp"

namespace fastmon {

std::vector<GateId> combinational_sites(const Netlist& netlist) {
    std::vector<GateId> sites;
    for (GateId id = 0; id < netlist.size(); ++id) {
        if (is_combinational(netlist.gate(id).type)) sites.push_back(id);
    }
    return sites;
}

DeviceSample sample_device(const PopulationModel& model, std::uint64_t seed,
                           std::uint32_t index,
                           std::span<const GateId> defect_sites,
                           Time clock_period) {
    DeviceSample device;
    device.index = index;
    device.seed = Prng::stream(seed, index).next_u64();

    // All draws below come from a fixed-order stream so a device is a
    // pure function of (campaign seed, index).
    Prng rng = Prng::stream(device.seed, 0xDEC'1CEULL);

    device.aging = model.aging.nominal;
    if (model.aging.amplitude_sigma_log > 0.0) {
        const double s = model.aging.amplitude_sigma_log;
        device.aging.amplitude *= std::exp(rng.normal(-0.5 * s * s, s));
    }

    if (!defect_sites.empty() && rng.chance(model.defect.incidence)) {
        const std::uint32_t count =
            model.defect.max_defects <= 1
                ? 1
                : 1 + static_cast<std::uint32_t>(
                          rng.next_below(model.defect.max_defects));
        for (std::uint32_t d = 0; d < count; ++d) {
            MarginalDefect defect;
            defect.site =
                FaultSite{defect_sites[rng.next_below(defect_sites.size())],
                          FaultSite::kOutputPin};
            const double s = model.defect.delta0_sigma_log;
            defect.delta0 = clock_period *
                            model.defect.delta0_fraction_median *
                            std::exp(rng.normal(0.0, s));
            defect.growth_per_year =
                rng.uniform(model.defect.growth_min, model.defect.growth_max);
            defect.delta_max =
                clock_period * model.defect.delta_max_fraction;
            device.defects.push_back(defect);
        }
    }
    return device;
}

}  // namespace fastmon
