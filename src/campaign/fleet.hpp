// Fault-tolerant fleet campaign supervisor.
//
// Splits one campaign into N shard jobs, runs each `fastmon_campaign
// --shard i/N` as a real subprocess, and survives everything a fleet
// can throw at it: a crashed shard is retried with bounded exponential
// backoff (resuming from its own checkpoint), a hung shard is detected
// through its heartbeat sidecar (devices_done frozen past the stall
// timeout), SIGKILLed, and retried, a shard that exits 0 but leaves a
// corrupt or incomplete artifact counts as a failed attempt, and a job
// that keeps failing is quarantined after max_attempts with an honest
// record instead of wedging the fleet forever.
//
// Jobs live in a directory queue under the fleet root:
//
//   <root>/queue/<id>.json       eligible jobs
//   <root>/running/<id>.json     claimed jobs (claim = atomic rename)
//   <root>/done/<id>.json        completed jobs
//   <root>/quarantine/<id>.json  poison jobs + failure record
//   <root>/shards/               shard artifacts / checkpoints / heartbeats
//   <root>/logs/                 per-attempt worker stdout+stderr
//
// Claiming is rename(queue/x, running/x): atomic on POSIX, so several
// supervisors can share one queue without double-claiming.  Delivery is
// at-least-once — a supervisor that dies mid-job leaves the file in
// running/, and the next `--recover` pass requeues it; the shard
// checkpoint makes the redundant re-run cheap and the merged result is
// bit-identical either way.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flow/flow_status.hpp"
#include "util/json.hpp"

namespace fastmon {

/// One shard job, as serialized into the queue directory.
struct FleetJob {
    std::string id;                 ///< queue file stem, e.g. "shard-2"
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 1;
    std::uint32_t attempts = 0;     ///< launches so far (completed or not)
    std::string last_error;         ///< most recent failure detail
    /// Test/CI hook: FASTMON_FAULT_INJECT spec exported into this
    /// shard's worker environment (empty = none).
    std::string fault_inject;
    /// When true (default), the injection spec is only exported on the
    /// first attempt — the retry runs clean, modelling a transient
    /// fault.  False makes the fault persistent (a poison job).
    bool fault_first_attempt_only = true;

    [[nodiscard]] Json to_json() const;
    static std::optional<FleetJob> from_json(const Json& j);
};

/// Directory-backed job queue; every transition is an atomic write or
/// rename, so a crash between any two steps loses no job.
class FleetQueue {
public:
    explicit FleetQueue(std::string root);

    /// Creates the queue/running/done/quarantine/shards/logs layout.
    bool init(std::string* error = nullptr);

    [[nodiscard]] const std::string& root() const { return root_; }
    [[nodiscard]] std::string queue_dir() const;
    [[nodiscard]] std::string running_dir() const;
    [[nodiscard]] std::string done_dir() const;
    [[nodiscard]] std::string quarantine_dir() const;
    [[nodiscard]] std::string shards_dir() const;
    [[nodiscard]] std::string logs_dir() const;

    /// Atomically writes the job into queue/ (no-op overwrite-safe).
    bool enqueue(const FleetJob& job);
    /// Claims `id`: rename queue/<id>.json -> running/<id>.json, then
    /// parse.  std::nullopt when the file vanished (claimed elsewhere)
    /// or does not parse (the damaged claim is left in running/ for a
    /// human; it is never silently retried).
    std::optional<FleetJob> claim(const std::string& id);
    /// Failed attempt: atomically rewrites the updated job into queue/
    /// and releases the claim.
    bool requeue(const FleetJob& job);
    /// Success: records the job in done/ and releases the claim.
    bool complete(const FleetJob& job);
    /// Poison: records the job + reason in quarantine/ and releases
    /// the claim.
    bool quarantine(const FleetJob& job, const std::string& reason);
    /// Requeues every stale claim left in running/ by a dead
    /// supervisor; returns how many were recovered.
    std::size_t recover_stale();

    /// Job ids currently eligible in queue/ (sorted).
    [[nodiscard]] std::vector<std::string> pending() const;
    /// Job ids recorded in done/ (sorted).
    [[nodiscard]] std::vector<std::string> done() const;
    /// Job ids recorded in quarantine/ (sorted).
    [[nodiscard]] std::vector<std::string> quarantined() const;

private:
    std::string root_;
};

/// Canonical per-shard file locations under the fleet root.
[[nodiscard]] std::string shard_artifact_path(const std::string& root,
                                              std::uint32_t shard_index);
[[nodiscard]] std::string shard_checkpoint_path(const std::string& root,
                                                std::uint32_t shard_index);
[[nodiscard]] std::string shard_heartbeat_path(const std::string& root,
                                               std::uint32_t shard_index);
[[nodiscard]] std::string shard_log_path(const std::string& root,
                                         std::uint32_t shard_index,
                                         std::uint32_t attempt);

/// Everything one shard attempt needs to run.
struct ShardLaunch {
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 1;
    std::uint32_t attempt = 1;  ///< 1-based
    std::string artifact_path;
    std::string checkpoint_path;
    std::string heartbeat_path;
    std::string log_path;
    std::string fault_inject;  ///< FASTMON_FAULT_INJECT override; "" = none
};

/// A running shard attempt, as the supervisor sees it.
class ShardHandle {
public:
    virtual ~ShardHandle() = default;
    /// Non-blocking: std::nullopt while running, shell-style status
    /// (exit code, or 128 + signal) once finished.
    virtual std::optional<int> poll() = 0;
    /// Hard-kills a hung attempt; poll() then reports the death.
    virtual void kill() = 0;
};

/// Launches shard attempts.  The production implementation spawns
/// fastmon_campaign subprocesses; tests substitute an in-process fake
/// to script crash/hang/corrupt sequences deterministically.
class ShardLauncher {
public:
    virtual ~ShardLauncher() = default;
    virtual std::unique_ptr<ShardHandle> launch(const ShardLaunch& spec,
                                                std::string* error) = 0;
};

/// Spawns `campaign_bin` with the campaign CLI arguments plus the
/// shard/artifact/checkpoint/heartbeat flags from the ShardLaunch.
class SubprocessShardLauncher : public ShardLauncher {
public:
    SubprocessShardLauncher(std::string campaign_bin,
                            std::vector<std::string> campaign_args);
    std::unique_ptr<ShardHandle> launch(const ShardLaunch& spec,
                                        std::string* error) override;

private:
    std::string campaign_bin_;
    std::vector<std::string> campaign_args_;
};

struct FleetConfig {
    std::string root;
    std::uint32_t shard_count = 1;
    /// Launches per job before it is quarantined as poison.
    std::uint32_t max_attempts = 3;
    /// Shard subprocesses running concurrently.
    std::size_t max_parallel = 2;
    /// Supervisor poll cadence.
    double poll_seconds = 0.05;
    /// A live worker whose heartbeat devices_done has not advanced for
    /// this long is declared hung and SIGKILLed.  Must comfortably
    /// exceed the worst per-device roll latency.
    double stall_timeout_seconds = 30.0;
    /// Failed attempts back off  initial * 2^(attempt-1)  seconds,
    /// capped at backoff_max_seconds.
    double backoff_initial_seconds = 0.5;
    double backoff_max_seconds = 8.0;
    /// When non-empty (16 hex digits), a shard artifact whose campaign
    /// fingerprint differs counts as a failed attempt.
    std::string expected_fingerprint;
};

/// Final record of one job this supervision pass handled.
struct FleetJobRecord {
    std::string id;
    std::uint32_t shard_index = 0;
    std::uint32_t attempts = 0;
    /// "done" or "quarantined".
    std::string state;
    std::string detail;  ///< last failure detail ("" for clean first runs)
};

struct FleetReport {
    std::vector<FleetJobRecord> jobs;
    std::size_t jobs_done = 0;
    std::size_t jobs_quarantined = 0;
    std::size_t retries = 0;       ///< failed attempts that were retried
    std::size_t stalls_killed = 0; ///< hung workers SIGKILLed
    FlowStatus status;

    /// "fleet" report block: {shard_count, jobs, retries, ...}.
    [[nodiscard]] Json to_json() const;
};

/// Drains the queue: claims eligible jobs, launches up to max_parallel
/// shard attempts through `launcher`, watches exits and heartbeats,
/// retries failures with backoff, and quarantines poison jobs.
/// Returns when the queue is empty and every claim is resolved; never
/// throws on worker failure — the report says what happened.
FleetReport run_fleet(const FleetConfig& config, FleetQueue& queue,
                      ShardLauncher& launcher);

}  // namespace fastmon
