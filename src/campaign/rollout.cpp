#include "campaign/rollout.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "timing/delay_model.hpp"
#include "util/diagnostic.hpp"

namespace fastmon {

namespace {

double lead_between(double alert, double failure) {
    if (alert < 0.0 || failure < 0.0) return -1.0;
    return failure - alert;
}

/// Wear-out attribution, evaluated at the failure year (or the horizon
/// for survivors).  Identical inputs on the scalar and batched paths,
/// so the recorded attribution is part of the bit-identity contract.
void record_attribution(const RolloutContext& ctx,
                        const DeviceDegradation& degradation,
                        DeviceOutcome& out) {
    if (!ctx.wearout || ctx.grid.empty()) return;
    const double at_years =
        out.failure_years >= 0.0 ? out.failure_years : ctx.grid.back();
    double share = 0.0;
    if (const char* name =
            degradation.dominant_mechanism(at_years, &share)) {
        out.dominant_mechanism = name;
        out.dominant_share = share;
    }
}

}  // namespace

double DeviceOutcome::lead_time_years() const {
    if (first_alert_years.empty()) return -1.0;
    return lead_between(first_alert_years.back(), failure_years);
}

double DeviceOutcome::imminent_lead_time_years() const {
    if (first_alert_years.size() < 2) return -1.0;
    return lead_between(first_alert_years[1], failure_years);
}

Json DeviceOutcome::to_json() const {
    Json j = Json::object();
    j.set("index", index);
    j.set("marginal", marginal);
    j.set("num_defects", num_defects);
    j.set("aging_amplitude", aging_amplitude);
    Json alerts = Json::array();
    for (double y : first_alert_years) alerts.push_back(y);
    j.set("first_alert_years", std::move(alerts));
    j.set("failure_years", failure_years);
    j.set("margin_used_t0", margin_used_t0);
    j.set("screen_score", screen_score);
    // Wear-out attribution keys only exist on mission-profile
    // campaigns: legacy artifacts (and their checkpoints) stay
    // byte-identical.
    if (!dominant_mechanism.empty()) {
        j.set("dominant_mechanism", dominant_mechanism);
        j.set("dominant_share", dominant_share);
    }
    return j;
}

std::optional<DeviceOutcome> DeviceOutcome::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* index = j.find("index");
    const Json* marginal = j.find("marginal");
    const Json* defects = j.find("num_defects");
    const Json* amplitude = j.find("aging_amplitude");
    const Json* alerts = j.find("first_alert_years");
    const Json* failure = j.find("failure_years");
    const Json* margin = j.find("margin_used_t0");
    const Json* score = j.find("screen_score");
    if (!index || !index->is_number() || !marginal || !marginal->is_bool() ||
        !defects || !defects->is_number() || !amplitude ||
        !amplitude->is_number() || !alerts || !alerts->is_array() ||
        !failure || !failure->is_number() || !margin ||
        !margin->is_number() || !score || !score->is_number()) {
        return std::nullopt;
    }
    DeviceOutcome out;
    out.index = static_cast<std::uint32_t>(index->as_number());
    out.marginal = marginal->as_bool();
    out.num_defects = static_cast<std::uint32_t>(defects->as_number());
    out.aging_amplitude = amplitude->as_number();
    for (const Json& a : alerts->as_array()) {
        if (!a.is_number()) return std::nullopt;
        out.first_alert_years.push_back(a.as_number());
    }
    out.failure_years = failure->as_number();
    out.margin_used_t0 = margin->as_number();
    out.screen_score = score->as_number();
    if (const Json* mech = j.find("dominant_mechanism")) {
        const Json* mech_share = j.find("dominant_share");
        if (!mech->is_string() || !mech_share || !mech_share->is_number()) {
            return std::nullopt;
        }
        out.dominant_mechanism = mech->as_string();
        out.dominant_share = mech_share->as_number();
    }
    return out;
}

std::vector<double> make_year_grid(double horizon_years, double step_years) {
    const auto reject = [](const char* what, double v) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "make_year_grid: %s (got %g)", what, v);
        throw DiagnosticBuilder("campaign").message(buf).build();
    };
    if (!std::isfinite(horizon_years) || horizon_years < 0.0) {
        reject("horizon_years must be finite and >= 0", horizon_years);
    }
    if (!std::isfinite(step_years) || step_years <= 0.0) {
        reject("step_years must be finite and > 0", step_years);
    }
    if (horizon_years > 0.0 && step_years > horizon_years + 1e-9) {
        reject("step_years exceeds horizon_years", step_years);
    }
    std::vector<double> grid;
    // i * step (not repeated addition) keeps grid points exact enough
    // to survive JSON round trips and resume bit-identically.
    for (std::size_t i = 0;; ++i) {
        const double y = static_cast<double>(i) * step_years;
        if (y > horizon_years + 1e-9) break;
        grid.push_back(y);
    }
    return grid;
}

DeviceOutcome roll_device(const RolloutContext& ctx,
                          const DeviceSample& sample,
                          std::unique_ptr<StaEngine>* engine_scratch) {
    DeviceOutcome out;
    out.index = sample.index;
    out.marginal = sample.marginal();
    out.num_defects = static_cast<std::uint32_t>(sample.defects.size());
    out.aging_amplitude = sample.aging.amplitude;

    // Per-device silicon: process variation sampled from the device's
    // own stream, so any shard order reproduces it.
    const DelayAnnotation annotation =
        DelayAnnotation::with_lognormal_variation(
            *ctx.netlist, ctx.variation_sigma_log, sample.seed);
    StaEngine* engine = nullptr;
    if (engine_scratch && !ctx.full_sta) {
        if (!*engine_scratch) {
            // Monitor evaluation needs arrivals only; the simulator
            // rebases the engine to each device's annotation.
            *engine_scratch = std::make_unique<StaEngine>(
                *ctx.netlist, annotation, 1.0, StaEngine::Scope::Arrivals);
        }
        engine = engine_scratch->get();
    }
    LifetimeSimulator sim(*ctx.netlist, annotation, ctx.clock_period,
                          sample.aging, sample.seed, engine, ctx.wearout);
    if (ctx.full_sta) sim.set_sta_mode(LifetimeSimulator::StaMode::FullRebuild);
    for (const MarginalDefect& defect : sample.defects) {
        sim.add_defect(defect);
    }

    const std::size_t num_configs = ctx.placement->config_delays.size();
    out.first_alert_years.assign(num_configs, -1.0);
    LifetimePoint p;  // reused across the grid: one alert buffer
    for (const double year : ctx.grid) {
        sim.evaluate_into(year, *ctx.placement, p);
        for (std::size_t c = 0; c < p.alerts.size() && c < num_configs; ++c) {
            if (p.alerts[c] && out.first_alert_years[c] < 0.0) {
                out.first_alert_years[c] = p.years;
            }
        }
        if (p.timing_failure && out.failure_years < 0.0) {
            out.failure_years = p.years;
        }
        if (p.years == 0.0 && ctx.clock_period > 0.0) {
            out.margin_used_t0 =
                p.worst_monitored_arrival / ctx.clock_period;
        }
    }

    // FAST-style burn-in screen: each guard band alerting inside the
    // screen window contributes 1 plus its normalized earliness, so a
    // device tripping narrower bands (or tripping them sooner) scores
    // strictly higher — the manufacturing-time marginality signature.
    const double window = std::max(ctx.screen_years, 0.0);
    for (std::size_t c = 1; c < out.first_alert_years.size(); ++c) {
        const double first = out.first_alert_years[c];
        if (first >= 0.0 && first <= window + 1e-9) {
            const double earliness =
                window > 0.0 ? (window - first) / window : 0.0;
            out.screen_score += 1.0 + std::clamp(earliness, 0.0, 1.0);
        }
    }
    record_attribution(ctx, sim.degradation(), out);
    return out;
}

BatchRollout::BatchRollout(const RolloutContext& ctx)
    : ctx_(&ctx),
      nominal_(DelayAnnotation::nominal(*ctx.netlist)),
      // The rollout only evaluates max arrivals against the monitor
      // bands, so min-arrival tracking is dropped entirely.
      engine_(*ctx.netlist, nominal_, 1.0, /*track_min=*/false) {
    const auto ops = ctx.netlist->observe_points();
    const MonitorPlacement& placement = *ctx.placement;
    for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        if (oi < placement.monitored.size() && placement.monitored[oi]) {
            monitored_signals_.push_back(ops[oi].signal);
        }
    }
}

void BatchRollout::roll(std::span<const DeviceSample> samples,
                        std::span<DeviceOutcome> outcomes) {
    const std::size_t n = samples.size();
    assert(n >= 1 && n <= kBatchWidth);
    assert(outcomes.size() >= n);
    const MonitorPlacement& placement = *ctx_->placement;
    const std::size_t num_configs = placement.config_delays.size();

    for (std::size_t l = 0; l < n; ++l) {
        const DeviceSample& sample = samples[l];
        // Lane column = nominal arcs scaled by the device's variation
        // factors — the same bits with_lognormal_variation would
        // produce, without the annotation copy.
        DelayAnnotation::lognormal_variation_factors(
            *ctx_->netlist, ctx_->variation_sigma_log, sample.seed, factors_);
        engine_.load_lane(l, factors_);
        degradation_[l].reset(*ctx_->netlist, sample.aging, sample.seed,
                              ctx_->wearout);
        for (const MarginalDefect& defect : sample.defects) {
            degradation_[l].add_defect(defect);
        }
        settled_[l] = 0;
        DeviceOutcome& out = outcomes[l];
        out = DeviceOutcome{};
        out.index = sample.index;
        out.marginal = sample.marginal();
        out.num_defects = static_cast<std::uint32_t>(sample.defects.size());
        out.aging_amplitude = sample.aging.amplitude;
        out.first_alert_years.assign(num_configs, -1.0);
    }
    for (std::size_t l = n; l < kBatchWidth; ++l) {
        engine_.retire_lane(l);  // ragged final batch
    }

    // Campaign lanes share the aging exponent and reference time (only
    // the amplitude is jittered per device), so one pow() per grid year
    // serves the whole batch.  Fall back to per-lane factors if a
    // caller ever mixes models — or under wear-out, whose mechanism
    // curves are per-device (Weibull severities, mission stress), so
    // every lane funnels through the same fill_delta(years, delta) the
    // scalar path uses.
    const AgingModel& model0 = degradation_[0].model();
    bool shared_term = ctx_->wearout == nullptr;
    for (std::size_t l = 1; l < n; ++l) {
        const AgingModel& m = degradation_[l].model();
        if (m.exponent != model0.exponent ||
            m.t_ref_years != model0.t_ref_years) {
            shared_term = false;
            break;
        }
    }

    const Time* const arr = engine_.max_arrival_data();
    for (const double year : ctx_->grid) {
        batch_delta_.clear();
        // Every lane's delta comes from the same DeviceDegradation
        // formula (all combinational gates, ascending), so the engine
        // may skip its per-update shape detection.
        batch_delta_.aligned = true;
        const double pow_term =
            shared_term && year > 0.0 ? model0.pow_term(year) : 0.0;
        bool any_active = false;
        for (std::size_t l = 0; l < n; ++l) {
            if (settled_[l]) continue;
            if (shared_term) {
                degradation_[l].fill_delta(year, lane_delta_[l], pow_term);
            } else {
                degradation_[l].fill_delta(year, lane_delta_[l]);
            }
            batch_delta_.set(l, &lane_delta_[l]);
            any_active = true;
        }
        if (!any_active) break;  // whole batch settled before horizon
        engine_.update(batch_delta_);

        // Batch-wide monitored reduction, lane-innermost over the
        // hoisted signal list: the same max sequence per lane as
        // evaluate_into's monitored branch (op order preserved), so the
        // result is bit-identical; settled lanes compute too, unread.
        Time wm[kBatchWidth];
        for (std::size_t l = 0; l < kBatchWidth; ++l) wm[l] = 0.0;
        for (const GateId sig : monitored_signals_) {
            const Time* const row =
                arr + static_cast<std::size_t>(sig) * kBatchWidth;
            for (std::size_t l = 0; l < kBatchWidth; ++l) {
                wm[l] = std::max(wm[l], row[l]);
            }
        }
        for (std::size_t l = 0; l < n; ++l) {
            if (settled_[l]) continue;
            ++stats_.lane_years;
            // Same formulas and order as LifetimeSimulator's
            // evaluate_into + roll_device's recording.  The engine's
            // critical-path refresh already runs evaluate_into's
            // worst-arrival reduction (same observe points, same order,
            // same 0.0 seed), so worst is read off the engine.
            const Time worst_monitored = wm[l];
            const Time worst = engine_.critical_path_length(l);
            DeviceOutcome& out = outcomes[l];
            bool done = true;
            for (std::size_t c = 1; c < num_configs; ++c) {
                if (out.first_alert_years[c] < 0.0) {
                    const bool alert =
                        worst_monitored >
                        ctx_->clock_period - placement.config_delays[c];
                    if (alert) {
                        out.first_alert_years[c] = year;
                    } else {
                        done = false;
                    }
                }
            }
            if (out.failure_years < 0.0) {
                if (worst > ctx_->clock_period) {
                    out.failure_years = year;
                } else {
                    done = false;
                }
            }
            if (year == 0.0 && ctx_->clock_period > 0.0) {
                out.margin_used_t0 = worst_monitored / ctx_->clock_period;
            }
            // Every outcome field is recorded at its first trigger and
            // never rewritten, so once all are set no later grid point
            // can change this device — the lane retires early without
            // draining the batch (outcome-identical to evaluating the
            // remaining years).
            if (done) {
                settled_[l] = 1;
                engine_.retire_lane(l);
                ++stats_.lanes_settled_early;
            }
        }
    }

    const double window = std::max(ctx_->screen_years, 0.0);
    for (std::size_t l = 0; l < n; ++l) {
        DeviceOutcome& out = outcomes[l];
        for (std::size_t c = 1; c < out.first_alert_years.size(); ++c) {
            const double first = out.first_alert_years[c];
            if (first >= 0.0 && first <= window + 1e-9) {
                const double earliness =
                    window > 0.0 ? (window - first) / window : 0.0;
                out.screen_score += 1.0 + std::clamp(earliness, 0.0, 1.0);
            }
        }
        record_attribution(*ctx_, degradation_[l], out);
    }
    ++stats_.batches;
    stats_.devices += n;
}

}  // namespace fastmon
