#include "campaign/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>

#include <thread>

#include "campaign/checkpoint.hpp"
#include "monitor/placement.hpp"
#include "timing/sta_engine.hpp"
#include "util/cancel.hpp"
#include "util/fault_inject.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/progress.hpp"
#include "util/sketch.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace fastmon {

namespace {

void append_number(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g;", v);
    out += buf;
}

std::uint64_t telemetry_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Heartbeat period: explicit config wins, then $FASTMON_HEARTBEAT,
/// then 1 s.
double resolve_heartbeat_seconds(const CampaignConfig& config) {
    if (config.heartbeat_seconds > 0.0) return config.heartbeat_seconds;
    if (const char* env = std::getenv("FASTMON_HEARTBEAT")) {
        const double v = std::atof(env);
        if (v > 0.0) return v;
    }
    return 1.0;
}

/// Worker-local streaming sketches, merged into the campaign-level
/// accumulator at shard boundaries — the same associative fold a
/// future --shard i/N mode will do across processes.
struct WorkerSketches {
    QuantileSketch roll_latency_us;
    QuantileSketch first_alert_years;
    QuantileSketch failure_years;

    void record_outcome(const DeviceOutcome& out) {
        // Widest guard band's first alert; -1 ("never") stays out of
        // the distribution, so count = devices that alerted/failed.
        if (!out.first_alert_years.empty() &&
            out.first_alert_years.back() >= 0.0) {
            first_alert_years.record(out.first_alert_years.back());
        }
        if (out.failure_years >= 0.0) {
            failure_years.record(out.failure_years);
        }
    }
};

struct CampaignSketches {
    std::mutex mutex;
    WorkerSketches merged;

    void merge(const WorkerSketches& local) {
        const std::lock_guard<std::mutex> lock(mutex);
        merged.roll_latency_us.merge(local.roll_latency_us);
        merged.first_alert_years.merge(local.first_alert_years);
        merged.failure_years.merge(local.failure_years);
    }
};

Json sketch_block(const QuantileSketch& sketch) {
    Json j = Json::object();
    j.set("summary", sketch.summary());
    j.set("sketch", sketch.to_json());
    return j;
}

// Lanes per batched pass.  Not part of the fingerprint or canonical
// string: every width (and full_sta) produces bit-identical outcomes.
std::size_t resolve_batch_width(const CampaignConfig& config) {
    if (config.full_sta) return 1;  // the from-scratch reference path
    std::size_t width = config.batch_width;
    if (width == 0) {
        width = kBatchWidth;
        if (const char* env = std::getenv("FASTMON_BATCH_WIDTH")) {
            const long long v = std::atoll(env);
            if (v >= 1) width = static_cast<std::size_t>(v);
        }
    }
    return std::clamp<std::size_t>(width, 1, kBatchWidth);
}

/// Shard fault-injection poll at device boundaries.  `shard.crash`
/// simulates a hard process death (no unwinding, no atexit — exactly
/// what the fleet supervisor must recover from); `shard.hang`
/// simulates a wedged worker that only SIGKILL gets unstuck.  Both
/// cost one relaxed load per device when the injector is idle.
void poll_shard_faults() {
    FaultInjector& injector = FaultInjector::global();
    if (injector.trip("shard.crash")) {
        std::_Exit(70);
    }
    if (injector.trip("shard.hang")) {
        for (;;) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
}

}  // namespace

std::pair<std::size_t, std::size_t> shard_device_range(
    std::size_t population, std::size_t index, std::size_t count) {
    if (count <= 1) return {0, population};
    if (index >= count) return {population, population};  // empty
    const auto pop = static_cast<std::uint64_t>(population);
    const auto begin = static_cast<std::size_t>(pop * index / count);
    const auto end = static_cast<std::size_t>(pop * (index + 1) / count);
    return {begin, end};
}

std::string campaign_canonical(const Netlist& netlist,
                               const CampaignConfig& config) {
    std::string canonical = "campaign-v1;";
    canonical += netlist.name();
    canonical += ';';
    append_number(canonical, static_cast<double>(netlist.size()));
    append_number(canonical, static_cast<double>(config.population));
    append_number(canonical, static_cast<double>(config.seed));
    append_number(canonical, config.model.variation.sigma_log);
    append_number(canonical, config.model.defect.incidence);
    append_number(canonical,
                  static_cast<double>(config.model.defect.max_defects));
    append_number(canonical, config.model.defect.delta0_fraction_median);
    append_number(canonical, config.model.defect.delta0_sigma_log);
    append_number(canonical, config.model.defect.growth_min);
    append_number(canonical, config.model.defect.growth_max);
    append_number(canonical, config.model.defect.delta_max_fraction);
    append_number(canonical, config.model.aging.nominal.amplitude);
    append_number(canonical, config.model.aging.nominal.exponent);
    append_number(canonical, config.model.aging.nominal.t_ref_years);
    append_number(canonical, config.model.aging.amplitude_sigma_log);
    append_number(canonical, config.clock_margin);
    append_number(canonical, config.monitor_fraction);
    for (double f : config.monitor_delay_fractions) {
        append_number(canonical, f);
    }
    append_number(canonical, config.horizon_years);
    append_number(canonical, config.step_years);
    append_number(canonical, config.screen_years);
    append_number(canonical, config.aggregate.early_fail_years);
    // Wear-out terms join the canonical string only when enabled:
    // legacy fingerprints — and every existing checkpoint — stay
    // valid, while mission-profile checkpoints never cross-resume into
    // a different mission or mechanism registry.
    if (config.wearout.enabled) config.wearout.append_canonical(canonical);
    return canonical;
}

Json CampaignResult::to_json(const CampaignConfig& config) const {
    Json j = Json::object();

    Json campaign = Json::object();
    campaign.set("circuit", circuit);
    campaign.set("num_gates", num_gates);
    campaign.set("num_monitors", num_monitors);
    campaign.set("clock_period", clock_period);
    campaign.set("population", config.population);
    campaign.set("seed", config.seed);
    Json model = Json::object();
    model.set("variation_sigma_log", config.model.variation.sigma_log);
    model.set("defect_incidence", config.model.defect.incidence);
    model.set("defect_max_defects", config.model.defect.max_defects);
    model.set("defect_delta0_fraction_median",
              config.model.defect.delta0_fraction_median);
    model.set("defect_delta0_sigma_log", config.model.defect.delta0_sigma_log);
    model.set("defect_growth_min", config.model.defect.growth_min);
    model.set("defect_growth_max", config.model.defect.growth_max);
    model.set("defect_delta_max_fraction",
              config.model.defect.delta_max_fraction);
    model.set("aging_amplitude", config.model.aging.nominal.amplitude);
    model.set("aging_exponent", config.model.aging.nominal.exponent);
    model.set("aging_t_ref_years", config.model.aging.nominal.t_ref_years);
    model.set("aging_amplitude_sigma_log",
              config.model.aging.amplitude_sigma_log);
    campaign.set("model", std::move(model));
    if (config.wearout.enabled) {
        // Key exists only on mission-profile campaigns, keeping the
        // default report byte-identical to pre-wearout builds.
        Json wearout = Json::object();
        wearout.set("mission", config.wearout.mission.to_json());
        wearout.set("reference", config.wearout.reference.to_json());
        wearout.set("activity", config.wearout.activity.to_json());
        Json mechs = Json::array();
        for (const MechanismConfig& m :
             config.wearout.resolved_mechanisms()) {
            mechs.push_back(m.to_json());
        }
        wearout.set("mechanisms", std::move(mechs));
        campaign.set("wearout", std::move(wearout));
    }
    campaign.set("clock_margin", config.clock_margin);
    campaign.set("monitor_fraction", config.monitor_fraction);
    campaign.set("horizon_years", config.horizon_years);
    campaign.set("step_years", config.step_years);
    campaign.set("screen_years", config.screen_years);
    campaign.set("early_fail_years", config.aggregate.early_fail_years);
    j.set("campaign", std::move(campaign));

    j.set("aggregate", aggregate.to_json());

    Json run = Json::object();
    // sta_mode/batch_width are run bookkeeping, not campaign identity:
    // every mode must produce identical "campaign"/"aggregate" blocks.
    run.set("sta_mode", config.full_sta      ? "full_rebuild"
                        : batch_width > 1 ? "batched"
                                          : "incremental");
    run.set("batch_width", batch_width);
    if (config.shard_count > 1) {
        run.set("shard_index", config.shard_index);
        run.set("shard_count", config.shard_count);
        run.set("range_begin", range_begin);
        run.set("range_end", range_end);
    }
    run.set("devices_expected", devices_expected);
    run.set("devices_completed", devices_completed);
    run.set("devices_resumed", devices_resumed);
    run.set("checkpoints_written", checkpoints_written);
    run.set("total_wall_seconds", total_wall_seconds);
    if (!telemetry.is_null()) run.set("telemetry", telemetry);
    run.set("status", status.to_json());
    j.set("run", std::move(run));
    return j;
}

CampaignResult run_campaign(const Netlist& netlist,
                            const CampaignConfig& config) {
    const PhaseStopwatch total;
    CancelToken& token = CancelToken::global();
    MetricsRegistry& metrics = MetricsRegistry::global();
    CampaignResult result;
    result.circuit = netlist.name();
    result.num_gates = netlist.size();
    // Shard coordinates: this process owns [range_begin, range_end).
    const auto [range_begin, range_end] = shard_device_range(
        config.population, config.shard_index,
        std::max<std::size_t>(config.shard_count, 1));
    result.range_begin = range_begin;
    result.range_end = range_end;
    result.devices_expected = range_end - range_begin;
    const std::size_t expected = result.devices_expected;

    // --- campaign_prepare: design-time artifacts, shared fleet-wide ---
    PhaseStopwatch prepare_sw;
    RolloutContext ctx;
    MonitorPlacement placement;
    std::vector<GateId> sites;
    std::unique_ptr<WearoutModel> wearout;
    try {
        TraceSpan span("campaign_prepare");
        const DelayAnnotation nominal = DelayAnnotation::nominal(netlist);
        StaEngine engine(netlist, nominal, config.clock_margin);
        const StaResult& sta = engine.analyze();
        placement = place_monitors(netlist, sta, config.monitor_fraction,
                                   config.monitor_delay_fractions);
        result.clock_period = sta.clock_period;
        ctx.netlist = &netlist;
        ctx.placement = &placement;
        ctx.clock_period = sta.clock_period;
        ctx.grid = make_year_grid(config.horizon_years, config.step_years);
        ctx.screen_years = config.screen_years;
        ctx.variation_sigma_log = config.model.variation.sigma_log;
        ctx.full_sta = config.full_sta;
        if (config.wearout.enabled) {
            // Design-time characterization (activity extraction over
            // the nominal annotation) plus mission-rate resolution —
            // one shared immutable artifact for every device.
            wearout = std::make_unique<WearoutModel>(netlist, nominal,
                                                     config.wearout);
            ctx.wearout = wearout.get();
        }
        sites = combinational_sites(netlist);
    } catch (const std::exception& e) {
        // Invalid configuration (e.g. a rejected year grid) yields an
        // honest failed result instead of an escaped exception.
        result.phases.push_back(prepare_sw.elapsed("campaign_prepare"));
        result.status.phases.push_back(
            PhaseStatus{"campaign_prepare", PhaseOutcome::Failed, e.what()});
        for (const char* phase :
             {"campaign_resume", "campaign_rollout", "campaign_aggregate"}) {
            result.status.phases.push_back(
                PhaseStatus{phase, PhaseOutcome::Skipped,
                            "campaign_prepare failed"});
        }
        result.total_wall_seconds =
            total.elapsed("campaign_total").wall_seconds;
        return result;
    }
    result.num_monitors = placement.num_monitors();
    result.phases.push_back(prepare_sw.elapsed("campaign_prepare"));
    result.status.phases.push_back(
        PhaseStatus{"campaign_prepare", PhaseOutcome::Ok, ""});

    // Live telemetry: a heartbeat sidecar and/or a throttled stderr
    // line (both pure observers — report blocks stay bit-identical),
    // plus mergeable streaming sketches fed at batch boundaries.
    std::unique_ptr<ProgressReporter> reporter;
    if (!config.heartbeat_path.empty() || config.progress_stderr) {
        ProgressConfig pc;
        pc.path = config.heartbeat_path;
        pc.interval_seconds = resolve_heartbeat_seconds(config);
        pc.stderr_line = config.progress_stderr;
        pc.label = result.circuit;
        pc.devices_total = expected;
        pc.grid_points = ctx.grid.size();
        reporter = std::make_unique<ProgressReporter>(std::move(pc));
    }
    CampaignSketches sketches;

    const std::uint64_t fingerprint =
        checkpoint_fingerprint(campaign_canonical(netlist, config));

    // --- campaign_resume: trust completed devices from the snapshot ---
    std::vector<std::optional<DeviceOutcome>> slots(config.population);
    {
        PhaseStopwatch sw;
        // "Resume not requested" is the normal path, not a degradation
        // (Skipped is reserved for phases that a failure prevented).
        PhaseStatus st{"campaign_resume", PhaseOutcome::Ok,
                       "resume not requested"};
        if (config.resume && !config.checkpoint_path.empty()) {
            const TraceSpan span("campaign_checkpoint", "campaign");
            std::string error;
            const auto ckpt = load_checkpoint(config.checkpoint_path, &error);
            if (!ckpt) {
                st.outcome = PhaseOutcome::Degraded;
                st.detail = error.empty() ? "no checkpoint file; fresh start"
                                          : error + "; fresh start";
            } else if (ckpt->fingerprint != fingerprint ||
                       ckpt->population != config.population) {
                st.outcome = PhaseOutcome::Degraded;
                st.detail =
                    "checkpoint belongs to a different campaign; fresh start";
            } else {
                // Trust only outcomes inside this shard's range: a
                // checkpoint written by a sibling shard shares the
                // campaign fingerprint, and folding its devices in
                // here would double-count them at merge time.
                for (const DeviceOutcome& out : ckpt->outcomes) {
                    if (out.index < range_begin || out.index >= range_end) {
                        continue;
                    }
                    slots[out.index] = out;
                    ++result.devices_resumed;
                }
                st.outcome = PhaseOutcome::Ok;
                st.detail = std::to_string(result.devices_resumed) +
                            " device(s) resumed";
            }
        }
        metrics.counter("campaign.devices_resumed")
            .add(result.devices_resumed);
        if (reporter) reporter->add_resumed(result.devices_resumed);
        result.phases.push_back(sw.elapsed("campaign_resume"));
        result.status.phases.push_back(std::move(st));
    }

    // --- campaign_rollout: sharded Monte Carlo over the population ---
    {
        PhaseStopwatch sw;
        TraceSpan span("campaign_rollout");
        PhaseStatus st{"campaign_rollout", PhaseOutcome::Ok, ""};
        if (reporter) reporter->start();

        std::unique_ptr<ThreadPool> dedicated;
        ThreadPool* pool = nullptr;
        if (config.num_threads >= 2) {
            dedicated = std::make_unique<ThreadPool>(config.num_threads);
            pool = dedicated.get();
        } else if (config.num_threads == 0) {
            pool = &ThreadPool::shared();
        }

        const std::size_t batch_width = resolve_batch_width(config);
        result.batch_width = batch_width;

        const auto roll_range_scalar = [&](std::size_t begin,
                                           std::size_t end) {
            // One incremental engine per shard: the first device builds
            // the arenas, later devices rebase onto them, and every
            // year-grid point is a cone-limited update.
            const TraceSpan shard_span("campaign_shard", "campaign");
            std::unique_ptr<StaEngine> engine;
            ProgressReporter::WorkerSlot* slot =
                reporter ? &reporter->slot_for_this_thread() : nullptr;
            WorkerSketches local;
            // The scalar path evaluates the full grid for every device
            // (no early retirement), so a device is grid.size()
            // lane-years of progress.
            const auto grid_years =
                static_cast<std::uint64_t>(ctx.grid.size());
            for (std::size_t i = begin; i < end; ++i) {
                if (token.cancelled()) break;   // device-boundary poll
                poll_shard_faults();
                if (slots[i]) continue;         // resumed from checkpoint
                const std::uint64_t t0 = telemetry_now_ns();
                const DeviceSample sample = [&] {
                    const TraceSpan pop("campaign_population", "campaign");
                    return sample_device(config.model, config.seed,
                                         static_cast<std::uint32_t>(i),
                                         sites, ctx.clock_period);
                }();
                slots[i] = roll_device(ctx, sample, &engine);
                // Scalar batch = 1 device, so the device boundary IS
                // the batch boundary the telemetry contract samples at.
                const std::uint64_t dt = telemetry_now_ns() - t0;
                local.roll_latency_us.record(
                    static_cast<double>(dt) * 1e-3);
                local.record_outcome(*slots[i]);
                if (slot) {
                    slot->devices.fetch_add(1, std::memory_order_relaxed);
                    slot->batches.fetch_add(1, std::memory_order_relaxed);
                    slot->lane_years.fetch_add(grid_years,
                                               std::memory_order_relaxed);
                    slot->busy_ns.fetch_add(dt, std::memory_order_relaxed);
                }
            }
            sketches.merge(local);
            if (engine) {
                const StaEngine::Stats& es = engine->stats();
                metrics.counter("campaign.sta_full_passes")
                    .add(es.full_passes);
                metrics.counter("campaign.sta_incremental_updates")
                    .add(es.incremental_updates);
                metrics.counter("campaign.sta_dense_updates")
                    .add(es.dense_updates);
                metrics.counter("campaign.sta_rebases").add(es.rebases);
                metrics.counter("campaign.sta_nodes_repropagated")
                    .add(es.nodes_repropagated);
                metrics.counter("campaign.sta_nodes_pruned")
                    .add(es.nodes_pruned);
            }
        };

        const auto roll_range_batched = [&](std::size_t begin,
                                            std::size_t end) {
            // One batch engine per shard; lanes cycle through the
            // shard's pending devices `batch_width` at a time.  Resumed
            // devices are skipped, so a batch may span non-contiguous
            // indices — each device is a pure function of its own seed,
            // so lane placement cannot change its outcome.
            const TraceSpan shard_span("campaign_shard", "campaign");
            std::unique_ptr<BatchRollout> rollout;
            std::vector<DeviceSample> samples;
            std::vector<DeviceOutcome> outcomes;
            std::vector<std::size_t> indices;
            samples.reserve(batch_width);
            indices.reserve(batch_width);
            ProgressReporter::WorkerSlot* slot =
                reporter ? &reporter->slot_for_this_thread() : nullptr;
            WorkerSketches local;
            // Counters are sampled at batch boundaries only — the SoA
            // lane loops below run untouched — by diffing the rollout's
            // cumulative stats across flushes.
            std::uint64_t seen_lane_years = 0;
            std::uint64_t seen_settled = 0;
            const auto flush = [&] {
                if (indices.empty()) return;
                if (!rollout) rollout = std::make_unique<BatchRollout>(ctx);
                const std::uint64_t t0 = telemetry_now_ns();
                outcomes.resize(indices.size());
                rollout->roll(samples, outcomes);
                const std::uint64_t dt = telemetry_now_ns() - t0;
                const auto n =
                    static_cast<std::uint64_t>(indices.size());
                // Per-device roll latency at batch granularity: the
                // batch wall split evenly over its lanes.
                local.roll_latency_us.record(
                    static_cast<double>(dt) * 1e-3 /
                        static_cast<double>(n),
                    n);
                for (std::size_t k = 0; k < indices.size(); ++k) {
                    local.record_outcome(outcomes[k]);
                    slots[indices[k]] = std::move(outcomes[k]);
                }
                if (slot) {
                    const BatchRollout::Stats& bs = rollout->stats();
                    slot->devices.fetch_add(n, std::memory_order_relaxed);
                    slot->batches.fetch_add(1, std::memory_order_relaxed);
                    slot->lane_years.fetch_add(
                        bs.lane_years - seen_lane_years,
                        std::memory_order_relaxed);
                    slot->settled_early.fetch_add(
                        bs.lanes_settled_early - seen_settled,
                        std::memory_order_relaxed);
                    slot->busy_ns.fetch_add(dt, std::memory_order_relaxed);
                    seen_lane_years = bs.lane_years;
                    seen_settled = bs.lanes_settled_early;
                }
                samples.clear();
                indices.clear();
            };
            // Gather up to one batch of pending samples from [i, end);
            // one trace span per batch keeps sampling visible without
            // per-device span noise.
            const auto gather = [&](std::size_t& i) {
                const TraceSpan pop("campaign_population", "campaign");
                for (; i < end && indices.size() < batch_width; ++i) {
                    if (token.cancelled()) return;  // device-boundary poll
                    poll_shard_faults();
                    if (slots[i]) continue;  // resumed from checkpoint
                    samples.push_back(sample_device(
                        config.model, config.seed,
                        static_cast<std::uint32_t>(i), sites,
                        ctx.clock_period));
                    indices.push_back(i);
                }
            };
            std::size_t i = begin;
            while (i < end && !token.cancelled()) {
                gather(i);
                if (indices.size() == batch_width) flush();
            }
            if (!token.cancelled()) flush();    // ragged shard tail
            sketches.merge(local);
            if (rollout) {
                const BatchRollout::Stats& bs = rollout->stats();
                metrics.counter("campaign.batch_batches").add(bs.batches);
                metrics.counter("campaign.batch_devices").add(bs.devices);
                metrics.counter("campaign.batch_lane_years")
                    .add(bs.lane_years);
                metrics.counter("campaign.batch_lanes_settled_early")
                    .add(bs.lanes_settled_early);
                const BatchStaEngine::Stats& es = rollout->engine_stats();
                metrics.counter("campaign.batch_sta_passes")
                    .add(es.batch_passes);
                metrics.counter("campaign.batch_sta_lane_loads")
                    .add(es.lane_loads);
                metrics.counter("campaign.batch_sta_lanes_retired")
                    .add(es.lanes_retired);
            }
        };

        const auto roll_range = [&](std::size_t begin, std::size_t end) {
            if (batch_width > 1) {
                roll_range_batched(begin, end);
            } else {
                roll_range_scalar(begin, end);
            }
        };

        const auto save_snapshot = [&] {
            if (config.checkpoint_path.empty()) return;
            const TraceSpan ckpt_span("campaign_checkpoint", "campaign");
            CampaignCheckpoint ckpt;
            ckpt.fingerprint = fingerprint;
            ckpt.population = config.population;
            for (const auto& slot : slots) {
                if (slot) ckpt.outcomes.push_back(*slot);
            }
            if (save_checkpoint(config.checkpoint_path, ckpt)) {
                ++result.checkpoints_written;
                metrics.counter("campaign.checkpoints_written").add();
            } else {
                log_warn() << "campaign: failed to write checkpoint "
                           << config.checkpoint_path;
            }
        };

        const std::size_t block =
            config.checkpoint_path.empty()
                ? std::max<std::size_t>(expected, 1)
                : std::max<std::size_t>(config.checkpoint_every, 1);
        try {
            for (std::size_t begin = range_begin;
                 begin < range_end && !token.cancelled(); begin += block) {
                const std::size_t end = std::min(range_end, begin + block);
                if (pool) {
                    pool->parallel_chunks(
                        end - begin, 0, [&](std::size_t b, std::size_t e) {
                            roll_range(begin + b, begin + e);
                        });
                } else {
                    roll_range(begin, end);
                }
                if (end < range_end || token.cancelled()) {
                    save_snapshot();
                }
            }
        } catch (const CancelledError&) {
            // An engine below the device loop (STA mid-pass) observed
            // the request first; the device stays incomplete.
        }
        save_snapshot();

        std::size_t completed = 0;
        for (const auto& slot : slots) {
            if (slot) ++completed;
        }
        result.devices_completed = completed;
        metrics.counter("campaign.devices_completed")
            .add(completed - result.devices_resumed);
        if (token.cancelled()) {
            result.status.cancelled = true;
            result.status.cancel_cause = token.cause();
            st.outcome = PhaseOutcome::Degraded;
            st.detail = "cancelled after " + std::to_string(completed) +
                        " of " + std::to_string(expected) + " devices";
        }
        if (reporter) {
            // The final heartbeat carries the honest terminal state and
            // the same device count the exported report will show.
            reporter->stop(token.cancelled()          ? "cancelled"
                           : completed < expected ? "degraded"
                                                  : "finished");
        }
        result.phases.push_back(sw.elapsed("campaign_rollout"));
        result.status.phases.push_back(std::move(st));
    }

    // Fold the merged worker sketches into the global registry (so run
    // manifests embed the summaries) and the report's run block.
    {
        const WorkerSketches& merged = sketches.merged;
        metrics.histogram("campaign.roll_latency_us")
            .merge(merged.roll_latency_us);
        metrics.histogram("campaign.first_alert_years")
            .merge(merged.first_alert_years);
        metrics.histogram("campaign.failure_years")
            .merge(merged.failure_years);
        Json telemetry = Json::object();
        telemetry.set("roll_latency_us",
                      sketch_block(merged.roll_latency_us));
        telemetry.set("first_alert_years",
                      sketch_block(merged.first_alert_years));
        telemetry.set("failure_years", sketch_block(merged.failure_years));
        result.telemetry = std::move(telemetry);
    }

    // --- campaign_aggregate: deterministic fold in device order ------
    {
        PhaseStopwatch sw;
        TraceSpan span("campaign_aggregate");
        PhaseStatus st{"campaign_aggregate", PhaseOutcome::Ok, ""};
        result.outcomes.reserve(result.devices_completed);
        for (const auto& slot : slots) {
            if (slot) result.outcomes.push_back(*slot);
        }
        result.aggregate = aggregate_outcomes(result.outcomes,
                                              config.aggregate);
        // Per-mechanism breakdown counters (mission-profile campaigns
        // only): campaign.wearout_failed_<mechanism> and the survivor
        // counterpart, mirroring the aggregate's attribution fold.
        for (const auto& [name, count] :
             result.aggregate.failed_by_mechanism) {
            metrics.counter("campaign.wearout_failed_" + name).add(count);
        }
        for (const auto& [name, count] :
             result.aggregate.survived_by_mechanism) {
            metrics.counter("campaign.wearout_survived_" + name).add(count);
        }
        if (result.devices_completed < expected) {
            st.outcome = PhaseOutcome::Degraded;
            st.detail = "aggregate over " +
                        std::to_string(result.devices_completed) + " of " +
                        std::to_string(expected) + " devices";
        }
        result.phases.push_back(sw.elapsed("campaign_aggregate"));
        result.status.phases.push_back(std::move(st));
    }

    if (config.wearout.enabled && !result.telemetry.is_null()) {
        // Mirror the dominant-mechanism breakdown into the live
        // telemetry block so dashboards see it without parsing the
        // aggregate; key exists only on mission-profile campaigns.
        Json breakdown = Json::object();
        Json failed_counts = Json::object();
        for (const auto& [name, count] :
             result.aggregate.failed_by_mechanism) {
            failed_counts.set(name, count);
        }
        breakdown.set("failed", std::move(failed_counts));
        Json survived_counts = Json::object();
        for (const auto& [name, count] :
             result.aggregate.survived_by_mechanism) {
            survived_counts.set(name, count);
        }
        breakdown.set("survived", std::move(survived_counts));
        result.telemetry.set("dominant_mechanisms", std::move(breakdown));
    }

    result.total_wall_seconds =
        total.elapsed("campaign_total").wall_seconds;
    return result;
}

}  // namespace fastmon
