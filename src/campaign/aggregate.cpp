#include "campaign/aggregate.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace fastmon {

namespace {

DistributionSummary summarize(std::vector<double> values) {
    DistributionSummary s;
    s.count = values.size();
    if (values.empty()) return s;
    RunningStats stats;
    for (double v : values) stats.add(v);
    s.mean = stats.mean();
    s.p10 = percentile(values, 10.0);
    s.p50 = percentile(values, 50.0);
    s.p90 = percentile(values, 90.0);
    return s;
}

}  // namespace

Json DistributionSummary::to_json() const {
    Json j = Json::object();
    j.set("count", count);
    j.set("mean", mean);
    j.set("p10", p10);
    j.set("p50", p50);
    j.set("p90", p90);
    return j;
}

std::optional<DistributionSummary> DistributionSummary::from_json(
    const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* count = j.find("count");
    const Json* mean = j.find("mean");
    const Json* p10 = j.find("p10");
    const Json* p50 = j.find("p50");
    const Json* p90 = j.find("p90");
    if (!count || !count->is_number() || !mean || !mean->is_number() ||
        !p10 || !p10->is_number() || !p50 || !p50->is_number() || !p90 ||
        !p90->is_number()) {
        return std::nullopt;
    }
    DistributionSummary s;
    s.count = static_cast<std::size_t>(count->as_number());
    s.mean = mean->as_number();
    s.p10 = p10->as_number();
    s.p50 = p50->as_number();
    s.p90 = p90->as_number();
    return s;
}

Json ClassificationQuality::to_json() const {
    Json j = Json::object();
    j.set("positives", positives);
    j.set("negatives", negatives);
    j.set("roc_auc", roc_auc);
    j.set("average_precision", average_precision);
    Json curve = Json::array();
    for (const PrPoint& p : pr_curve) {
        Json point = Json::object();
        point.set("threshold", p.threshold);
        point.set("precision", p.precision);
        point.set("recall", p.recall);
        curve.push_back(std::move(point));
    }
    j.set("pr_curve", std::move(curve));
    Json screen = Json::object();
    screen.set("true_positives", true_positives);
    screen.set("false_positives", false_positives);
    screen.set("false_negatives", false_negatives);
    screen.set("true_negatives", true_negatives);
    screen.set("precision", precision);
    screen.set("recall", recall);
    j.set("screen_alert_operating_point", std::move(screen));
    return j;
}

Json CampaignAggregate::to_json() const {
    Json j = Json::object();
    Json devices = Json::object();
    devices.set("population", population);
    devices.set("marginal", marginal);
    devices.set("failed", failed);
    devices.set("early_failures", early_failures);
    devices.set("survived", survived);
    j.set("devices", std::move(devices));
    j.set("classification", classification.to_json());
    Json lead = Json::object();
    lead.set("wide_band", lead_time_wide.to_json());
    lead.set("imminent_band", lead_time_imminent.to_json());
    j.set("lead_time_years", std::move(lead));
    Json wearout = Json::object();
    Json curve = Json::array();
    for (const auto& [p, year] : wearout_failure_percentiles) {
        Json point = Json::object();
        point.set("percentile", p);
        point.set("years", year);
        curve.push_back(std::move(point));
    }
    wearout.set("failure_year_percentiles", std::move(curve));
    wearout.set("failure_years", wearout_failure_years.to_json());
    if (!failed_by_mechanism.empty() || !survived_by_mechanism.empty()) {
        // Dominant-mechanism breakdown exists only on mission-profile
        // campaigns, so legacy aggregates stay byte-identical.
        Json failed_counts = Json::object();
        for (const auto& [name, count] : failed_by_mechanism) {
            failed_counts.set(name, count);
        }
        wearout.set("failed_by_mechanism", std::move(failed_counts));
        Json survived_counts = Json::object();
        for (const auto& [name, count] : survived_by_mechanism) {
            survived_counts.set(name, count);
        }
        wearout.set("survived_by_mechanism", std::move(survived_counts));
    }
    j.set("wearout", std::move(wearout));
    return j;
}

CampaignAggregate aggregate_outcomes(std::span<const DeviceOutcome> outcomes,
                                     const AggregateConfig& config) {
    CampaignAggregate agg;
    agg.population = outcomes.size();

    std::vector<ClassifierSample> samples;
    samples.reserve(outcomes.size());
    std::vector<double> wide_leads;
    std::vector<double> imminent_leads;
    std::vector<double> wearout_years;

    for (const DeviceOutcome& out : outcomes) {
        if (out.marginal) ++agg.marginal;
        const bool failed = out.failure_years >= 0.0;
        const bool early =
            failed && out.failure_years <= config.early_fail_years + 1e-9;
        if (failed) {
            ++agg.failed;
        } else {
            ++agg.survived;
        }
        if (early) ++agg.early_failures;
        samples.push_back(ClassifierSample{out.screen_score, early});

        const double wide = out.lead_time_years();
        if (wide >= 0.0) wide_leads.push_back(wide);
        const double imminent = out.imminent_lead_time_years();
        if (imminent >= 0.0) imminent_leads.push_back(imminent);
        if (failed && !out.marginal) wearout_years.push_back(out.failure_years);
    }

    ClassificationQuality& cls = agg.classification;
    for (const ClassifierSample& s : samples) {
        if (s.positive) {
            ++cls.positives;
        } else {
            ++cls.negatives;
        }
        const bool predicted = s.score > 0.0;
        if (predicted && s.positive) ++cls.true_positives;
        if (predicted && !s.positive) ++cls.false_positives;
        if (!predicted && s.positive) ++cls.false_negatives;
        if (!predicted && !s.positive) ++cls.true_negatives;
    }
    cls.roc_auc = roc_auc(samples);
    cls.average_precision = average_precision(samples);
    cls.pr_curve = precision_recall_curve(samples);
    const std::size_t predicted_pos = cls.true_positives + cls.false_positives;
    if (predicted_pos > 0) {
        cls.precision = static_cast<double>(cls.true_positives) /
                        static_cast<double>(predicted_pos);
    }
    if (cls.positives > 0) {
        cls.recall = static_cast<double>(cls.true_positives) /
                     static_cast<double>(cls.positives);
    }

    // Dominant-mechanism counts in name-sorted order: a pure fold over
    // the outcomes, so every shard/resume/width reproduces it.
    std::map<std::string, std::size_t> failed_mechs;
    std::map<std::string, std::size_t> survived_mechs;
    for (const DeviceOutcome& out : outcomes) {
        if (out.dominant_mechanism.empty()) continue;
        if (out.failure_years >= 0.0) {
            ++failed_mechs[out.dominant_mechanism];
        } else {
            ++survived_mechs[out.dominant_mechanism];
        }
    }
    agg.failed_by_mechanism.assign(failed_mechs.begin(), failed_mechs.end());
    agg.survived_by_mechanism.assign(survived_mechs.begin(),
                                     survived_mechs.end());

    agg.lead_time_wide = summarize(wide_leads);
    agg.lead_time_imminent = summarize(imminent_leads);
    agg.wearout_failure_years = summarize(wearout_years);
    if (!wearout_years.empty()) {
        for (double p : {1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
            agg.wearout_failure_percentiles.emplace_back(
                p, percentile(wearout_years, p));
        }
    }
    return agg;
}

std::string outcomes_csv(std::span<const DeviceOutcome> outcomes) {
    std::string csv =
        "index,marginal,num_defects,aging_amplitude,failure_years,"
        "screen_score,margin_used_t0,first_alert_wide,first_alert_imminent,"
        "lead_time_wide,lead_time_imminent\n";
    char row[320];
    for (const DeviceOutcome& out : outcomes) {
        const double wide = out.first_alert_years.empty()
                                ? -1.0
                                : out.first_alert_years.back();
        const double imminent = out.first_alert_years.size() < 2
                                    ? -1.0
                                    : out.first_alert_years[1];
        std::snprintf(row, sizeof row,
                      "%u,%d,%u,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
                      "%.17g\n",
                      out.index, out.marginal ? 1 : 0, out.num_defects,
                      out.aging_amplitude, out.failure_years,
                      out.screen_score, out.margin_used_t0, wide, imminent,
                      out.lead_time_years(),
                      out.imminent_lead_time_years());
        csv += row;
    }
    return csv;
}

}  // namespace fastmon
