// Device-population sampling model for Monte Carlo campaigns.
//
// The paper's prediction claim — programmable delay monitors separate
// early-life marginal devices from normally wearing-out ones — can only
// be judged statistically over a population.  This sampler draws one
// virtual device per (campaign seed, device index): a per-gate
// lognormal process-variation annotation, a per-device aging-rate
// jitter, and, with configurable incidence, a set of early-life
// MarginalDefects (site, initial delta, growth rate, saturation).
//
// Every quantity derives from Prng::stream(seed, index) alone, so a
// campaign sharded across any number of threads — or killed and
// resumed — reproduces each device bit-identically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "monitor/aging.hpp"
#include "netlist/netlist.hpp"
#include "util/interval.hpp"

namespace fastmon {

/// Manufacturing process variation across the population.
struct VariationModel {
    /// Sigma of the per-gate mean-one lognormal delay-scaling factor
    /// (DelayAnnotation::with_lognormal_variation).
    double sigma_log = 0.05;
};

/// Early-life (latent) defect incidence and severity.
struct DefectModel {
    /// Probability that a device carries at least one marginal defect.
    double incidence = 0.15;
    /// Maximum defects on a marginal device (uniform in [1, max]).
    std::uint32_t max_defects = 2;
    /// Median initial defect delay as a fraction of the clock period
    /// (lognormal around this median).
    double delta0_fraction_median = 0.02;
    /// Lognormal sigma of the initial delta spread.
    double delta0_sigma_log = 0.5;
    /// Exponential growth rate per year, uniform in [min, max].
    double growth_min = 0.4;
    double growth_max = 1.2;
    /// Defect saturation as a fraction of the clock period.
    double delta_max_fraction = 0.5;
};

/// Device-to-device wear-out spread.
struct AgingSpread {
    /// Nominal (median) aging curve shared by the population.
    AgingModel nominal{0.45, 1.0, 10.0};
    /// Lognormal sigma of the per-device amplitude jitter (0 = every
    /// device ages at exactly the nominal rate).
    double amplitude_sigma_log = 0.25;
};

/// One sampled virtual device.  The process-variation annotation is
/// not materialized here (it would dominate memory for large
/// populations); the rollout rebuilds it from `seed`.
struct DeviceSample {
    std::uint32_t index = 0;
    std::uint64_t seed = 0;  ///< Prng::stream(campaign seed, index) root
    AgingModel aging;        ///< nominal with per-device amplitude jitter
    std::vector<MarginalDefect> defects;

    /// Ground truth: the device carries at least one latent defect.
    [[nodiscard]] bool marginal() const { return !defects.empty(); }
};

struct PopulationModel {
    VariationModel variation;
    DefectModel defect;
    AgingSpread aging;
};

/// Samples device `index` of the population.  `defect_sites` are the
/// candidate fault locations (normally every combinational gate of the
/// circuit) and `clock_period` scales the defect deltas.
DeviceSample sample_device(const PopulationModel& model, std::uint64_t seed,
                           std::uint32_t index,
                           std::span<const GateId> defect_sites,
                           Time clock_period);

/// Candidate defect sites of a circuit: every combinational gate, in
/// id order (deterministic).
std::vector<GateId> combinational_sites(const Netlist& netlist);

}  // namespace fastmon
