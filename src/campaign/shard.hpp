// Shard partial-aggregate artifacts: the unit of fleet-scale merging.
//
// A sharded fleet campaign runs `fastmon_campaign --shard i/N` once per
// shard; each emits a ShardResult artifact holding its device range,
// per-device outcomes, partial aggregate (confusion counts + PR curve),
// and mergeable telemetry sketches, stamped with the campaign
// fingerprint AND a content checksum over the canonical payload.  The
// merge side (fastmon_merge, fastmon_fleet) validates every artifact —
// a truncated, bit-flipped, or foreign-campaign shard is *detected and
// reported*, never silently folded in — and re-aggregates the union of
// outcomes in device-index order.  Because every device is a pure
// function of (campaign seed, device index) and aggregation is a fold
// in index order, the merged report's campaign/aggregate blocks are
// bit-identical to a single-process run of the same campaign, at any
// shard count.
//
// merge() itself is associative: it unions disjoint outcome sets,
// merges the integer-bucketed sketches, and re-derives the partial
// aggregate from the union, so ((a+b)+c) == (a+(b+c)) bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"
#include "util/sketch.hpp"

namespace fastmon {

inline constexpr std::string_view kShardSchema = "fastmon-shard-v1";

struct ShardResult {
    std::uint64_t fingerprint = 0;  ///< campaign fingerprint (config identity)
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 1;
    std::uint64_t population = 0;   ///< full campaign population
    std::uint64_t range_begin = 0;  ///< device range this shard owns
    std::uint64_t range_end = 0;
    double early_fail_years = 3.0;  ///< aggregate ground-truth cutoff
    /// Deterministic "campaign" report block, verbatim — identical for
    /// every shard of one campaign; the merged report reuses it.
    Json campaign;
    /// Partial "aggregate" block over `outcomes` (confusion counts,
    /// PR curve, ...).  Redundant with `outcomes` by construction; the
    /// loader recomputes and cross-checks it, so writer/reader drift
    /// is caught even when the checksum matches.
    Json aggregate;
    /// Completed outcomes, ascending device index, all inside
    /// [range_begin, range_end).  Fewer than the range size means the
    /// shard was cancelled mid-run (honest partial).
    std::vector<DeviceOutcome> outcomes;
    /// Mergeable telemetry sketches (util/sketch): integer bucket
    /// counts make their merge associative and commutative.
    QuantileSketch roll_latency_us;
    QuantileSketch first_alert_years;
    QuantileSketch failure_years;

    /// True when the shard covers its whole device range.
    [[nodiscard]] bool complete() const {
        return outcomes.size() == range_end - range_begin;
    }

    /// Full artifact document: {schema, format, checksum, payload}.
    /// The checksum is the FNV-1a of the compact payload serialization.
    [[nodiscard]] Json to_json() const;
    /// Validates schema, checksum, structure, outcome ordering/range,
    /// and the aggregate cross-check.  std::nullopt with the reason in
    /// `error` on any damage.
    static std::optional<ShardResult> from_json(const Json& j,
                                                std::string* error = nullptr);

    /// Associative in-memory fold: unions `other`'s outcomes into this
    /// shard (device sets must be disjoint), merges the sketches, and
    /// re-derives the partial aggregate.  False (with `error`) on a
    /// fingerprint/population mismatch or overlapping devices; *this
    /// is unchanged on failure.
    bool merge(const ShardResult& other, std::string* error = nullptr);
};

/// Builds the artifact for a finished (possibly partial) shard run.
ShardResult make_shard_result(const Netlist& netlist,
                              const CampaignConfig& config,
                              const CampaignResult& result);

/// Atomically writes the artifact.  Honors the `shard.corrupt_artifact`
/// fault-injection point (flips one digit in the serialized payload —
/// still valid JSON, so the checksum check is what must catch it).
bool save_shard_result(const std::string& path, const ShardResult& shard);

/// Loads and validates a shard artifact; std::nullopt when missing,
/// unparsable, or damaged (`error` says which, except a missing file).
std::optional<ShardResult> load_shard_result(const std::string& path,
                                             std::string* error = nullptr);

/// Per-shard verdict of a merge pass.
enum class ShardState : std::uint8_t {
    Ok = 0,               ///< valid and covers its whole range
    Incomplete,           ///< valid but cancelled mid-range (folded in)
    Missing,              ///< artifact file absent
    Corrupt,              ///< unparsable, checksum/structure damage, dup
    FingerprintMismatch,  ///< belongs to a different campaign
};
[[nodiscard]] const char* shard_state_name(ShardState state);

struct ShardStatus {
    std::size_t slot = 0;  ///< position in the merge input list
    std::string path;
    ShardState state = ShardState::Missing;
    std::string detail;
    std::size_t devices = 0;      ///< outcomes folded in
    std::uint32_t shard_index = 0;
};

/// Outcome of merging a list of shard artifact paths.
struct ShardMerge {
    /// Full merged report: {campaign, aggregate, run:{merge, telemetry,
    /// status}} — campaign/aggregate bit-identical to the unsharded
    /// run when every shard is Ok.
    Json report;
    FlowStatus status;
    std::vector<ShardStatus> shards;
    std::size_t devices_merged = 0;
    std::size_t devices_expected = 0;  ///< full campaign population
    /// True when every listed shard is Ok and coverage is complete.
    bool complete = false;
    /// True when at least one valid shard was folded in (a report
    /// exists; it may be degraded).
    bool mergeable = false;
};

/// Validates and merges the artifacts at `paths` (one per shard; order
/// is the reporting order, not significant for the result).  Never
/// throws on bad inputs — damage is reported per shard and the
/// survivors are aggregated with honest degraded status.
ShardMerge merge_shard_results(const std::vector<std::string>& paths);

}  // namespace fastmon
