// Campaign aggregation: population-level prediction quality.
//
// Turns the per-device outcomes of a campaign into the statistics the
// paper's claim is judged on: how well the burn-in screen score
// separates devices that actually fail early (ROC AUC, average
// precision, the precision-recall curve, and the confusion counts of
// the natural "any alert in the screen window" operating point),
// alert-to-failure lead-time percentiles for the wide (early warning)
// and narrow (imminent failure) guard bands, and wear-out failure-year
// percentile curves.  Aggregation walks outcomes in device-index order
// over plain doubles, so a fixed population produces a bit-identical
// aggregate regardless of thread count or resume history.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "campaign/rollout.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace fastmon {

struct AggregateConfig {
    /// A device failing at or before this year is an actual early-life
    /// failure (the classification ground truth).
    double early_fail_years = 3.0;
};

/// Percentile summary of one empirical distribution.
struct DistributionSummary {
    std::size_t count = 0;
    double mean = 0.0;
    double p10 = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;

    [[nodiscard]] Json to_json() const;
    static std::optional<DistributionSummary> from_json(const Json& j);

    friend bool operator==(const DistributionSummary&,
                           const DistributionSummary&) = default;
};

/// Classifier quality of the burn-in screen score against actual
/// early-life failure.
struct ClassificationQuality {
    std::size_t positives = 0;   ///< actual early-life failures
    std::size_t negatives = 0;
    double roc_auc = 0.5;
    double average_precision = 0.0;
    std::vector<PrPoint> pr_curve;
    // Confusion at the hardware-natural threshold: "some guard band
    // alerted during the screen" (score > 0).
    std::size_t true_positives = 0;
    std::size_t false_positives = 0;
    std::size_t false_negatives = 0;
    std::size_t true_negatives = 0;
    double precision = 0.0;
    double recall = 0.0;

    [[nodiscard]] Json to_json() const;
};

struct CampaignAggregate {
    std::size_t population = 0;   ///< devices aggregated
    std::size_t marginal = 0;     ///< ground-truth defect carriers
    std::size_t failed = 0;       ///< failed within the horizon
    std::size_t early_failures = 0;
    std::size_t survived = 0;
    ClassificationQuality classification;
    DistributionSummary lead_time_wide;      ///< widest band -> failure
    DistributionSummary lead_time_imminent;  ///< narrowest band -> failure
    /// Failure-year percentile curve over failed wear-out-only
    /// (non-marginal) devices: {p, year} pairs for the standard grid.
    std::vector<std::pair<double, double>> wearout_failure_percentiles;
    DistributionSummary wearout_failure_years;
    /// Mission-profile campaigns only: devices per dominant failure
    /// mechanism (name-sorted for determinism), split into devices
    /// that failed within the horizon and survivors.  Empty — and
    /// absent from the JSON — on legacy campaigns.
    std::vector<std::pair<std::string, std::size_t>> failed_by_mechanism;
    std::vector<std::pair<std::string, std::size_t>> survived_by_mechanism;

    [[nodiscard]] Json to_json() const;
};

/// Aggregates completed outcomes (callers pass them in device-index
/// order; the aggregate is a pure fold over that order).
CampaignAggregate aggregate_outcomes(std::span<const DeviceOutcome> outcomes,
                                     const AggregateConfig& config);

/// Per-device CSV export ("index,marginal,...", one row per outcome).
std::string outcomes_csv(std::span<const DeviceOutcome> outcomes);

}  // namespace fastmon
