#include "campaign/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/diagnostic.hpp"

namespace fastmon {

std::string fingerprint_hex(std::uint64_t fp) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

std::optional<std::uint64_t> parse_fingerprint_hex(std::string_view hex) {
    if (hex.size() != 16) return std::nullopt;
    std::uint64_t value = 0;
    for (char c : hex) {
        value <<= 4;
        if (c >= '0' && c <= '9') {
            value |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return std::nullopt;
        }
    }
    return value;
}

std::uint64_t checkpoint_fingerprint(std::string_view canonical) {
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (const char c : canonical) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

Json CampaignCheckpoint::to_json() const {
    Json j = Json::object();
    j.set("format", 2);
    j.set("fingerprint", fingerprint_hex(fingerprint));
    j.set("population", population);
    Json out = Json::array();
    for (const DeviceOutcome& o : outcomes) out.push_back(o.to_json());
    // The checksum binds the device payload itself; the fingerprint
    // above only binds the campaign *configuration*.  A torn write or
    // a flipped bit inside an outcome changes the compact dump of the
    // array and is caught on load.
    j.set("checksum",
          fingerprint_hex(checkpoint_fingerprint(out.dump(0))));
    j.set("outcomes", std::move(out));
    return j;
}

std::optional<CampaignCheckpoint> CampaignCheckpoint::from_json(
    const Json& j, std::string* error) {
    const auto reject = [&](const char* why) {
        if (error) *error = why;
        return std::nullopt;
    };
    if (!j.is_object()) return reject("checkpoint is not a JSON object");
    const Json* format = j.find("format");
    const Json* fingerprint = j.find("fingerprint");
    const Json* population = j.find("population");
    const Json* checksum = j.find("checksum");
    const Json* outcomes = j.find("outcomes");
    if (!format || !format->is_number()) {
        return reject("checkpoint has no format field");
    }
    if (format->as_number() != 2.0) {
        return reject("unsupported checkpoint format (expected 2)");
    }
    if (!fingerprint || !fingerprint->is_string() || !population ||
        !population->is_number() || !outcomes || !outcomes->is_array()) {
        return reject("checkpoint has an invalid structure");
    }
    if (!checksum || !checksum->is_string()) {
        return reject("checkpoint has no payload checksum");
    }
    // Recompute over the re-serialized payload: the JSON dump is a
    // deterministic function of the parsed values (numbers print the
    // same %.17g both times), so any corruption that survived the
    // parse still changes the digest.
    const auto stored = parse_fingerprint_hex(checksum->as_string());
    if (!stored ||
        *stored != checkpoint_fingerprint(outcomes->dump(0))) {
        return reject(
            "checkpoint payload checksum mismatch (torn or corrupt)");
    }
    const auto fp = parse_fingerprint_hex(fingerprint->as_string());
    if (!fp) return reject("checkpoint fingerprint is malformed");
    CampaignCheckpoint ckpt;
    ckpt.fingerprint = *fp;
    ckpt.population = static_cast<std::uint64_t>(population->as_number());
    std::uint32_t prev_index = 0;
    for (const Json& o : outcomes->as_array()) {
        auto outcome = DeviceOutcome::from_json(o);
        if (!outcome) return reject("checkpoint has a malformed outcome");
        if (outcome->index >= ckpt.population) {
            return reject("checkpoint outcome index out of range");
        }
        if (!ckpt.outcomes.empty() && outcome->index <= prev_index) {
            // Must be strictly ascending.
            return reject("checkpoint outcomes are not strictly ascending");
        }
        prev_index = outcome->index;
        ckpt.outcomes.push_back(std::move(*outcome));
    }
    return ckpt;
}

bool save_checkpoint(const std::string& path,
                     const CampaignCheckpoint& checkpoint) {
    return atomic_write_file(path, checkpoint.to_json().dump(2));
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path,
                                                  std::string* error) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;  // missing file: a fresh campaign
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string parse_error;
    const auto j = Json::parse(buffer.str(), &parse_error);
    if (!j) {
        if (error) {
            *error = Diagnostic("checkpoint", path, 0, 0,
                                "checkpoint is not valid JSON: " +
                                    parse_error,
                                "")
                         .what();
        }
        return std::nullopt;
    }
    std::string why;
    auto ckpt = CampaignCheckpoint::from_json(*j, &why);
    if (!ckpt && error) {
        *error = Diagnostic("checkpoint", path, 0, 0, why, "").what();
    }
    return ckpt;
}

}  // namespace fastmon
