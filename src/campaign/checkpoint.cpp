#include "campaign/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"

namespace fastmon {

namespace {

/// Fingerprints are 64-bit; JSON numbers are doubles, so the value is
/// stored as a hex string to survive the round trip losslessly.
std::string fingerprint_hex(std::uint64_t fp) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

std::optional<std::uint64_t> parse_fingerprint(const std::string& hex) {
    if (hex.size() != 16) return std::nullopt;
    std::uint64_t value = 0;
    for (char c : hex) {
        value <<= 4;
        if (c >= '0' && c <= '9') {
            value |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return std::nullopt;
        }
    }
    return value;
}

}  // namespace

std::uint64_t checkpoint_fingerprint(std::string_view canonical) {
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (const char c : canonical) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

Json CampaignCheckpoint::to_json() const {
    Json j = Json::object();
    j.set("format", 1);
    j.set("fingerprint", fingerprint_hex(fingerprint));
    j.set("population", population);
    Json out = Json::array();
    for (const DeviceOutcome& o : outcomes) out.push_back(o.to_json());
    j.set("outcomes", std::move(out));
    return j;
}

std::optional<CampaignCheckpoint> CampaignCheckpoint::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* format = j.find("format");
    const Json* fingerprint = j.find("fingerprint");
    const Json* population = j.find("population");
    const Json* outcomes = j.find("outcomes");
    if (!format || !format->is_number() || format->as_number() != 1.0 ||
        !fingerprint || !fingerprint->is_string() || !population ||
        !population->is_number() || !outcomes || !outcomes->is_array()) {
        return std::nullopt;
    }
    const auto fp = parse_fingerprint(fingerprint->as_string());
    if (!fp) return std::nullopt;
    CampaignCheckpoint ckpt;
    ckpt.fingerprint = *fp;
    ckpt.population = static_cast<std::uint64_t>(population->as_number());
    std::uint32_t prev_index = 0;
    for (const Json& o : outcomes->as_array()) {
        auto outcome = DeviceOutcome::from_json(o);
        if (!outcome) return std::nullopt;
        if (outcome->index >= ckpt.population) return std::nullopt;
        if (!ckpt.outcomes.empty() && outcome->index <= prev_index) {
            return std::nullopt;  // must be strictly ascending
        }
        prev_index = outcome->index;
        ckpt.outcomes.push_back(std::move(*outcome));
    }
    return ckpt;
}

bool save_checkpoint(const std::string& path,
                     const CampaignCheckpoint& checkpoint) {
    return atomic_write_file(path, checkpoint.to_json().dump(2));
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path,
                                                  std::string* error) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;  // missing file: a fresh campaign
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string parse_error;
    const auto j = Json::parse(buffer.str(), &parse_error);
    if (!j) {
        if (error) *error = "checkpoint is not valid JSON: " + parse_error;
        return std::nullopt;
    }
    auto ckpt = CampaignCheckpoint::from_json(*j);
    if (!ckpt && error) *error = "checkpoint has an invalid structure";
    return ckpt;
}

}  // namespace fastmon
