// Campaign checkpoint: crash-safe snapshots of completed devices.
//
// Every N devices the engine atomically rewrites a JSON snapshot of
// the outcomes computed so far, stamped with a fingerprint of the
// campaign inputs (circuit, population, seed, sampling model, grid)
// AND a content checksum over the canonical device payload.  A
// campaign killed by SIGINT or a deadline resumes from the snapshot:
// completed devices are trusted verbatim, the rest are recomputed from
// their per-device streams — so the resumed aggregate is bit-identical
// to an uninterrupted run.  A fingerprint mismatch (different circuit,
// seed, or model) rejects the snapshot instead of silently mixing two
// campaigns; a checksum mismatch (torn write, bit rot, hand edit)
// rejects it instead of silently trusting damaged outcomes — both
// degrade to an honest fresh start, never a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/rollout.hpp"

namespace fastmon {

struct CampaignCheckpoint {
    std::uint64_t fingerprint = 0;
    std::uint64_t population = 0;
    /// Completed outcomes, ascending device index (any subset).
    std::vector<DeviceOutcome> outcomes;

    /// Format 2: {format, fingerprint, population, checksum, outcomes}
    /// where `checksum` is the FNV-1a of the compact serialization of
    /// the outcomes array — the canonical device payload.
    [[nodiscard]] Json to_json() const;
    /// std::nullopt on structural damage, a missing/mismatched
    /// checksum, or an unknown format; `error` (when given) receives
    /// the specific reason.
    static std::optional<CampaignCheckpoint> from_json(
        const Json& j, std::string* error = nullptr);
};

/// FNV-1a over a canonical description string; the campaign fingerprint.
[[nodiscard]] std::uint64_t checkpoint_fingerprint(std::string_view canonical);

/// 16-hex-digit rendering of a fingerprint/checksum (JSON numbers are
/// doubles; 64-bit values ride as strings to survive the round trip).
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fp);
/// Inverse of fingerprint_hex; std::nullopt unless exactly 16
/// lower-case hex digits.
[[nodiscard]] std::optional<std::uint64_t> parse_fingerprint_hex(
    std::string_view hex);

/// Atomically writes the checkpoint (temp file + rename); false on I/O
/// failure.
bool save_checkpoint(const std::string& path,
                     const CampaignCheckpoint& checkpoint);

/// Loads and validates a checkpoint file.  std::nullopt when the file
/// is missing, unparsable, or structurally invalid; `error` (when
/// given) receives the reason for everything except a missing file.
std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path,
                                                  std::string* error = nullptr);

}  // namespace fastmon
