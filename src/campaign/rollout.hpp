// Per-device campaign rollout.
//
// One device = one process-variation annotation + one aging trajectory
// + (for marginal devices) a set of growing early-life defects, rolled
// through the monitor guard-band lifetime simulation on the campaign's
// shared year grid.  The outcome records the FAST-style screen
// signature (which guard bands alert inside the burn-in window, and
// when), the full first-alert ladder, and the failure year — everything
// the aggregator needs, in a JSON-round-trippable form so outcomes can
// be checkpointed and resumed.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "campaign/population.hpp"
#include "monitor/aging.hpp"
#include "monitor/placement.hpp"
#include "timing/batch_sta_engine.hpp"
#include "timing/sta_engine.hpp"
#include "util/json.hpp"

namespace fastmon {

/// Shared, immutable inputs of every device rollout: design-time
/// artifacts (circuit, monitor placement, deployed clock) plus the
/// campaign's evaluation grid.
struct RolloutContext {
    const Netlist* netlist = nullptr;
    const MonitorPlacement* placement = nullptr;
    Time clock_period = 0.0;
    /// Lifetime evaluation grid in years (ascending, starts at 0).
    std::vector<double> grid;
    /// Burn-in screen window [0, screen_years]: alerts inside it form
    /// the manufacturing-time prediction signature.
    double screen_years = 0.5;
    /// Per-gate lognormal process-variation sigma (VariationModel).
    double variation_sigma_log = 0.05;
    /// Force the legacy full-STA path (LifetimeSimulator FullRebuild)
    /// instead of the incremental engine; the differential reference
    /// for the bit-identity check.  Not part of the campaign
    /// fingerprint: both modes produce identical outcomes.
    bool full_sta = false;
    /// Multi-mechanism wear-out model (mission profile campaigns);
    /// null = the legacy single-knob aging path.
    const WearoutModel* wearout = nullptr;
};

/// Everything measured on one rolled-out device.
struct DeviceOutcome {
    std::uint32_t index = 0;
    bool marginal = false;          ///< ground truth: carries a defect
    std::uint32_t num_defects = 0;
    double aging_amplitude = 0.0;   ///< sampled wear-out severity
    /// First alert year per monitor configuration (-1 = never); index 0
    /// (off) never alerts.
    std::vector<double> first_alert_years;
    double failure_years = -1.0;    ///< first grid year with a timing failure
    /// Monitored-arrival fraction of the clock at deployment (year 0).
    double margin_used_t0 = 0.0;
    /// Prediction score from the burn-in screen: sum over guard bands
    /// alerting inside the screen window of (1 + earliness); 0 = clean
    /// screen.  Higher = stronger early-life signature.
    double screen_score = 0.0;
    /// Wear-out attribution (mission-profile campaigns only): the
    /// mechanism contributing the most delay degradation at the
    /// failure year (or the horizon for survivors) and its share of
    /// the total.  Empty when wear-out is off — the JSON keys are
    /// omitted then, keeping legacy artifacts byte-identical.
    std::string dominant_mechanism;
    double dominant_share = 0.0;

    /// Early warning between the widest band's first alert and the
    /// failure (-1 when either never happened).
    [[nodiscard]] double lead_time_years() const;
    /// Same for the narrowest (imminent-failure) band.
    [[nodiscard]] double imminent_lead_time_years() const;

    [[nodiscard]] Json to_json() const;
    static std::optional<DeviceOutcome> from_json(const Json& j);

    friend bool operator==(const DeviceOutcome&,
                           const DeviceOutcome&) = default;
};

/// Builds the uniform year grid [0, horizon] with `step` spacing.
/// Throws a Diagnostic ("campaign" source) on a non-finite or negative
/// horizon, a non-finite or non-positive step, or a step larger than a
/// positive horizon.
std::vector<double> make_year_grid(double horizon_years, double step_years);

/// Rolls one sampled device through its lifetime.  `engine_scratch`
/// (optional) is a worker-local incremental STA engine slot: the first
/// device constructs it, later devices rebase it — so arenas persist
/// across a whole shard.  With ctx.full_sta the scratch is ignored and
/// every grid point pays a from-scratch pass.
DeviceOutcome roll_device(const RolloutContext& ctx,
                          const DeviceSample& sample,
                          std::unique_ptr<StaEngine>* engine_scratch = nullptr);

/// Rolls devices through the lifetime grid in lockstep batches of up
/// to BatchStaEngine::width() lanes: one shared topological pass per
/// grid year serves the whole batch, lanes are loaded directly from
/// each device's variation factors (no per-device DelayAnnotation),
/// and a lane whose outcome is fully recorded (failure year and every
/// guard band's first alert) retires early without draining the rest.
/// Outcomes are bit-identical to roll_device on the same samples —
/// the batched campaign differential asserts exactly that.
///
/// One BatchRollout per worker shard; not thread-safe per instance.
class BatchRollout {
public:
    struct Stats {
        std::uint64_t batches = 0;
        std::uint64_t devices = 0;
        /// Lane-years actually evaluated (vs. grid.size() * devices
        /// for the scalar path; the gap is early-retirement savings).
        std::uint64_t lane_years = 0;
        std::uint64_t lanes_settled_early = 0;
    };

    explicit BatchRollout(const RolloutContext& ctx);

    /// Rolls samples[i] into outcomes[i].  samples.size() must be in
    /// [1, width()]; a ragged final batch simply leaves the trailing
    /// lanes retired.
    void roll(std::span<const DeviceSample> samples,
              std::span<DeviceOutcome> outcomes);

    [[nodiscard]] static constexpr std::size_t width() {
        return BatchStaEngine::width();
    }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] const BatchStaEngine::Stats& engine_stats() const {
        return engine_.stats();
    }

private:
    const RolloutContext* ctx_;
    /// Campaign-nominal base shared by every lane; lanes scale it by
    /// their device's variation factors at load time.
    DelayAnnotation nominal_;
    BatchStaEngine engine_;
    std::array<DeviceDegradation, kBatchWidth> degradation_;
    std::array<DelayDelta, kBatchWidth> lane_delta_;
    std::array<std::uint8_t, kBatchWidth> settled_{};
    BatchDelayDelta batch_delta_;
    std::vector<double> factors_;  ///< per-gate scratch, reused per lane
    /// Monitored observe-point signals in op order — evaluate_into's
    /// monitored reduction, with the branch hoisted out of the loop.
    std::vector<GateId> monitored_signals_;
    Stats stats_;
};

}  // namespace fastmon
