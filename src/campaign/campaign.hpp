// Monte Carlo device-population campaign engine.
//
// Rolls a population of sampled virtual devices (process variation +
// wear-out spread + early-life defect incidence) through the monitor
// guard-band lifetime simulation, sharded across the persistent thread
// pool, and aggregates fleet-scale prediction quality: early-life-
// failure classification (ROC / precision-recall of the burn-in screen
// score), alert lead-time distributions, and wear-out percentile
// curves.
//
// Determinism contract: every device is a pure function of
// (campaign seed, device index) via Prng::stream, outcomes are
// aggregated in index order, and artifact JSON carries no timestamps —
// so a campaign is bit-identical across thread counts, and a campaign
// killed by SIGINT / FASTMON_DEADLINE and resumed from its checkpoint
// converges to the exact aggregate of an uninterrupted run.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/population.hpp"
#include "campaign/rollout.hpp"
#include "flow/flow_status.hpp"
#include "util/manifest.hpp"
#include "wearout/wearout.hpp"

namespace fastmon {

struct CampaignConfig {
    std::size_t population = 100;
    std::uint64_t seed = 1;
    PopulationModel model;
    /// Deployed clock = margin * nominal critical path (deployed
    /// systems keep margin well beyond STA sign-off).
    double clock_margin = 1.6;
    /// Monitor insertion knobs (same defaults as the HDF flow /
    /// Sec. V of the paper).
    double monitor_fraction = 0.25;
    std::vector<double> monitor_delay_fractions = {0.05, 0.10, 0.15,
                                                   1.0 / 3.0};
    /// Lifetime evaluation grid.
    double horizon_years = 15.0;
    double step_years = 0.25;
    /// Burn-in screen window for the prediction signature.
    double screen_years = 0.5;
    AggregateConfig aggregate;
    /// Simulation lanes: 0 = shared pool (one per hardware thread),
    /// 1 = serial, n >= 2 = dedicated pool of n workers.
    std::size_t num_threads = 0;
    /// When non-empty, a resumable snapshot is atomically rewritten
    /// here every `checkpoint_every` devices (and at exit).
    std::string checkpoint_path;
    std::size_t checkpoint_every = 64;
    /// Resume from an existing checkpoint at checkpoint_path (a
    /// fingerprint mismatch degrades to a fresh start, recorded in the
    /// status block).
    bool resume = false;
    /// Roll every device with the legacy full-STA path instead of the
    /// incremental engine.  Deliberately NOT part of the campaign
    /// fingerprint: both modes produce bit-identical outcomes (this is
    /// what the differential CI check asserts), so checkpoints are
    /// interchangeable.
    bool full_sta = false;
    /// Devices rolled per batched STA pass.  0 = auto: the compiled
    /// column width (FASTMON_BATCH_WIDTH, default 8), overridable at
    /// runtime by a FASTMON_BATCH_WIDTH environment variable.  1 =
    /// the legacy scalar incremental engine (the reference path for
    /// the batched differential); larger values clamp to the compiled
    /// width; full_sta forces 1.  Like full_sta, deliberately NOT
    /// part of the campaign fingerprint: every width produces
    /// bit-identical outcomes, so checkpoints are interchangeable
    /// across widths.
    std::size_t batch_width = 0;
    /// Live-telemetry heartbeat sidecar (see util/progress.hpp): when
    /// non-empty, a sampler thread atomically rewrites this JSON file
    /// every heartbeat_seconds with devices-done / throughput / ETA /
    /// per-worker utilization, ending with an honest terminal state.
    /// Pure observation: the campaign/aggregate blocks are
    /// bit-identical with telemetry on or off.
    std::string heartbeat_path;
    /// Heartbeat period in seconds; <= 0 reads $FASTMON_HEARTBEAT and
    /// falls back to 1 s.
    double heartbeat_seconds = 0.0;
    /// Mirror each heartbeat as a throttled one-line stderr report.
    bool progress_stderr = false;
    /// Physics-grounded multi-mechanism wear-out (mission profiles,
    /// NBTI/HCI/EM/TDDB + the legacy knob, activity-driven stress).
    /// Disabled by default: the legacy single-knob path runs untouched
    /// and every artifact — report, checkpoint, shard — is
    /// byte-identical to a pre-wearout build.  When enabled the
    /// wear-out fields join the canonical string, so checkpoints from
    /// different missions never cross-resume.
    WearoutConfig wearout;
    /// Shard coordinates for multi-process fleet execution: this run
    /// rolls only the devices in shard_device_range(population,
    /// shard_index, shard_count).  shard_count <= 1 means unsharded.
    /// Deliberately NOT part of the campaign fingerprint or canonical
    /// string: every shard of one campaign (and the unsharded run)
    /// shares the fingerprint, which is exactly what lets the merge
    /// tool verify that shard artifacts belong together.
    std::size_t shard_index = 0;
    std::size_t shard_count = 1;
};

/// Contiguous device range [begin, end) owned by shard `index` of
/// `count` over `population` devices.  Ranges partition [0, population)
/// exactly (sizes differ by at most one device).
[[nodiscard]] std::pair<std::size_t, std::size_t> shard_device_range(
    std::size_t population, std::size_t index, std::size_t count);

struct CampaignResult {
    std::string circuit;
    std::size_t num_gates = 0;
    std::size_t num_monitors = 0;
    Time clock_period = 0.0;
    /// Completed outcomes in ascending device index (== population on
    /// an uncancelled run).
    std::vector<DeviceOutcome> outcomes;
    CampaignAggregate aggregate;
    std::size_t devices_completed = 0;
    std::size_t devices_resumed = 0;   ///< trusted from the checkpoint
    /// Device range this run was responsible for ([0, population) when
    /// unsharded) and its size; devices_completed == devices_expected
    /// on an uncancelled run.
    std::size_t range_begin = 0;
    std::size_t range_end = 0;
    std::size_t devices_expected = 0;
    std::size_t checkpoints_written = 0;
    /// Resolved lanes per batched pass this run (1 = scalar engine).
    std::size_t batch_width = 1;
    /// Streaming-sketch telemetry (per-device roll latency, first-alert
    /// and failure-year distributions): {summary, sketch} per metric,
    /// merged from the worker-local sketches.  Lives in the "run"
    /// block of the report — latency is wall-clock, so this block is
    /// NOT part of the deterministic campaign/aggregate contract.
    Json telemetry;
    std::vector<PhaseTime> phases;
    double total_wall_seconds = 0.0;
    FlowStatus status;

    /// Full campaign report.  The "campaign" and "aggregate" blocks are
    /// bit-deterministic for a fixed (circuit, config); wall times and
    /// resume bookkeeping live in the separate "run" block.
    [[nodiscard]] Json to_json(const CampaignConfig& config) const;
};

/// Runs the campaign.  Cooperatively cancellable (CancelToken::global()
/// polled at device boundaries): a cancelled run returns the completed
/// prefix with an honest status block instead of throwing.
CampaignResult run_campaign(const Netlist& netlist,
                            const CampaignConfig& config);

/// Canonical fingerprint input of a campaign (circuit + config); the
/// checkpoint layer hashes this to detect mismatched resumes.
std::string campaign_canonical(const Netlist& netlist,
                               const CampaignConfig& config);

}  // namespace fastmon
