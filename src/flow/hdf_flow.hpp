// End-to-end hidden-delay-fault test flow (Fig. 4 of the paper).
//
//   (1) topological/timing analysis -> at-speed detectable and timing
//       redundant faults removed;
//   (2) timing-accurate fault simulation of the remaining candidates;
//   (3) detection ranges per fault (standard FFs and monitor SRs);
//   (4) monitor configuration analysis (range shifting);
//   (5) target fault set (monitor-at-speed detectable faults removed);
//   (6) test schedule optimization (frequencies, then pattern x config).
//
// HdfFlow owns the heavy artifacts (STA, monitor placement, ATPG test
// set, detection ranges) after prepare(); run() produces every quantity
// of the paper's Fig. 3 and Tables I-III for this circuit.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "atpg/tdf_atpg.hpp"
#include "fault/classify.hpp"
#include "fault/detection_range.hpp"
#include "flow/flow_status.hpp"
#include "monitor/placement.hpp"
#include "monitor/shifting.hpp"
#include "schedule/pattern_config_select.hpp"
#include "timing/sta_engine.hpp"
#include "util/manifest.hpp"

namespace fastmon {

struct HdfFlowConfig {
    double fmax_factor = 3.0;        ///< f_max = 3 * f_nom [9-11]
    double clock_margin = 1.05;      ///< clk = 1.05 * cpl (Sec. V)
    double monitor_fraction = 0.25;  ///< monitors at 25 % of PPOs
    std::vector<double> monitor_delay_fractions = {0.05, 0.10, 0.15,
                                                   1.0 / 3.0};
    double delta_factor = 1.2;       ///< delta = 6 sigma = 6*0.2*nominal
    double variation_sigma = 0.0;    ///< per-gate delay variation of the instance
    std::uint64_t seed = 1;
    AtpgConfig atpg;
    /// Optional externally supplied test set (skips ATPG when set).
    std::optional<TestSet> test_set;
    /// Stratified cap on simulated candidate faults (0 = all); used by
    /// benches on the largest profiles, always reported.
    std::size_t max_simulated_faults = 0;
    WaveSimConfig wave;
    /// Detection-interval pulse-filtering threshold (Sec. II-A);
    /// negative = use the annotation default (smallest library delay),
    /// 0 disables filtering.
    Time glitch_threshold = -1.0;
    DiscretizeOptions discretize;
    SetCoverOptions solver;
    /// Coverage targets of Table III.
    std::vector<double> coverage_targets = {0.99, 0.98, 0.95, 0.90};
    /// Simulation lanes of the detection engine: 0 = one per hardware
    /// thread (shared pool), 1 = serial, n >= 2 = dedicated pool.
    std::size_t num_threads = 0;
    /// When non-empty, the flow atomically rewrites a manifest snapshot
    /// at this path after every phase, so a run killed by a deadline or
    /// signal always leaves the last complete snapshot behind.
    std::string manifest_path;
};

/// One point of the Fig. 3 coverage-versus-f_max curve.
struct CoverageBySpeed {
    double fmax_factor = 1.0;
    double conv = 0.0;  ///< HDF coverage, conventional FAST
    double prop = 0.0;  ///< HDF coverage with programmable monitors

    [[nodiscard]] Json to_json() const;
    static std::optional<CoverageBySpeed> from_json(const Json& j);

    friend bool operator==(const CoverageBySpeed&,
                           const CoverageBySpeed&) = default;
};

/// One row of Table III.
struct CoverageRow {
    double coverage = 1.0;
    std::size_t num_frequencies = 0;  ///< |F_cov|
    std::size_t naive_pc = 0;         ///< |PC_cov| = |P| x |C| x |F_cov|
    std::size_t schedule_size = 0;    ///< |S_cov|
    double reduction_percent = 0.0;

    [[nodiscard]] Json to_json() const;
    static std::optional<CoverageRow> from_json(const Json& j);

    friend bool operator==(const CoverageRow&, const CoverageRow&) = default;
};

struct HdfFlowResult {
    std::string circuit;
    // --- circuit statistics (Table I, cols 1-5) ---
    std::size_t num_gates = 0;
    std::size_t num_ffs = 0;
    std::size_t num_patterns = 0;
    std::size_t num_monitors = 0;
    // --- fault accounting ---
    std::size_t fault_universe = 0;
    std::size_t at_speed_detectable = 0;
    std::size_t timing_redundant = 0;
    std::size_t candidate_faults = 0;
    std::size_t simulated_faults = 0;  ///< after sampling
    // --- Table I, cols 6-9 (scaled to the full universe if sampled) ---
    std::size_t detected_conv = 0;
    std::size_t detected_prop = 0;
    double gain_percent = 0.0;
    std::size_t monitor_at_speed = 0;
    std::size_t target_faults = 0;
    // --- Table II ---
    std::size_t freq_conv = 0;
    std::size_t freq_heur = 0;
    std::size_t freq_prop = 0;
    double freq_reduction_percent = 0.0;
    std::size_t orig_pc = 0;
    std::size_t opti_pc = 0;
    double pc_reduction_percent = 0.0;
    bool schedule_proven_optimal = false;
    std::size_t schedule_uncovered = 0;
    // --- Table III ---
    std::vector<CoverageRow> coverage_rows;
    // --- timing metadata ---
    Time clock_period = 0.0;
    Time t_min = 0.0;
    double atpg_coverage = 0.0;
    // --- engine counters (pass A + pass B accumulated) ---
    DetectionCounters detection;
    // --- observability ---
    /// Wall/CPU time per flow phase, in execution order (prepare()
    /// phases first, then run() phases).
    std::vector<PhaseTime> phases;
    /// Wall clock of prepare() + run() together.
    double total_wall_seconds = 0.0;
    /// Per-phase outcomes and cancellation record.  status.complete()
    /// distinguishes a full run from a degraded (partial) one.
    FlowStatus status;
};

class HdfFlow {
public:
    HdfFlow(const Netlist& netlist, HdfFlowConfig config);
    /// The flow keeps a pointer to `netlist`; a temporary would dangle.
    HdfFlow(Netlist&& netlist, HdfFlowConfig config) = delete;

    /// Heavy phase: STA, monitor placement, ATPG (unless a test set was
    /// supplied), fault universe + structural classification, pass-A
    /// detection analysis.  Idempotent.
    void prepare();

    /// Fig. 3: HDF coverage over maximum-test-frequency factors.
    [[nodiscard]] std::vector<CoverageBySpeed> coverage_curve(
        std::span<const double> fmax_factors) const;

    /// Full pipeline; calls prepare() if needed.
    [[nodiscard]] HdfFlowResult run();

    // --- artifact access (after prepare()) ---
    [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
    [[nodiscard]] const HdfFlowConfig& config() const { return config_; }
    [[nodiscard]] const StaResult& sta() const { return sta_; }
    /// The incremental engine behind the sta phase (null before
    /// prepare()); downstream passes can run cone-limited updates
    /// against the flow's annotation without re-running full STA.
    [[nodiscard]] const StaEngine* sta_engine() const {
        return sta_engine_ ? &*sta_engine_ : nullptr;
    }
    [[nodiscard]] const MonitorPlacement& placement() const { return placement_; }
    [[nodiscard]] const TestSet& patterns() const { return test_set_; }
    [[nodiscard]] const FaultUniverse& universe() const { return universe_; }
    [[nodiscard]] const DelayAnnotation& delays() const { return *delays_; }
    /// Simulated fault ids (after structural filtering and sampling).
    [[nodiscard]] std::span<const FaultId> simulated_faults() const {
        return simulated_;
    }
    /// Pass-A ranges, parallel to simulated_faults().
    [[nodiscard]] std::span<const FaultRanges> ranges() const { return ranges_; }
    /// Full (FF U shifted SR) range of the i-th simulated fault,
    /// clipped to the FAST window.
    [[nodiscard]] IntervalSet full_range_in_window(std::size_t i) const;
    /// FF-only range clipped to the FAST window.
    [[nodiscard]] IntervalSet ff_range_in_window(std::size_t i) const;
    /// Target fault positions (indices into simulated_faults()).
    [[nodiscard]] std::span<const std::uint32_t> target_positions() const {
        return targets_;
    }
    /// Detection-engine work counters accumulated over prepare()/run().
    [[nodiscard]] const DetectionCounters& detection_counters() const {
        return detect_counters_;
    }
    /// Per-phase outcomes recorded so far (prepare() + run()).
    [[nodiscard]] const FlowStatus& status() const { return status_; }

    /// Assembles the run manifest for a finished run(): tool/git info,
    /// flow config, circuit statistics, per-phase times, and a snapshot
    /// of the global metrics registry (detection counters and pool
    /// stats included).
    [[nodiscard]] RunManifest manifest(const HdfFlowResult& result) const;

private:
    [[nodiscard]] Interval window_for(double fmax_factor) const;

    /// Runs one flow phase under the degradation policy: the phase body
    /// may mark its own status Degraded; thrown CancelledError degrades,
    /// any other exception fails the phase — fatally (FlowError) when
    /// `essential`, recorded-and-continued otherwise.  Returns false when
    /// the phase did not complete Ok/Degraded (callers skip dependents).
    bool guarded_phase(std::vector<PhaseTime>& times, const char* name,
                       bool essential,
                       const std::function<void(PhaseStatus&)>& body);
    /// Records a phase that never ran because a dependency failed.
    void skip_phase(const char* name, std::string reason);
    /// Appends to status_ and flushes the manifest snapshot.
    void record_status(PhaseStatus st);
    /// Latches the global cancellation cause into status_.
    void note_cancelled();
    /// Atomically rewrites config_.manifest_path (no-op when empty).
    /// `outcome` overrides the status outcome ("running" mid-flow).
    void flush_manifest(const char* outcome) const;
    /// Config block shared by manifest() and the mid-flow snapshots.
    void fill_config(RunManifest& m) const;

    const Netlist* netlist_;
    HdfFlowConfig config_;
    bool prepared_ = false;

    std::optional<DelayAnnotation> delays_;
    /// Engine declared after delays_ (it holds a pointer to *delays_,
    /// which std::optional keeps address-stable once emplaced).
    std::optional<StaEngine> sta_engine_;
    StaResult sta_;
    MonitorPlacement placement_;
    TestSet test_set_;
    double atpg_coverage_ = 0.0;
    FaultUniverse universe_;
    StructuralClassification structural_;
    std::vector<FaultId> simulated_;
    std::vector<FaultRanges> ranges_;
    std::vector<std::uint32_t> targets_;
    double sample_scale_ = 1.0;
    DetectionCounters detect_counters_;
    std::vector<PhaseTime> phases_;       ///< recorded during prepare()
    double prepare_wall_seconds_ = 0.0;
    FlowStatus status_;
    /// run()'s phase-time list while run() is active, for snapshots.
    std::vector<PhaseTime>* active_run_phases_ = nullptr;
};

}  // namespace fastmon
