// Rendering of flow results in the paper's table formats.
#pragma once

#include <iosfwd>
#include <span>

#include "flow/hdf_flow.hpp"

namespace fastmon {

/// Table I: circuit statistics and targeted hidden delay faults.
void print_table1(std::ostream& os, std::span<const HdfFlowResult> rows);

/// Table II: selected test frequencies and test time.
void print_table2(std::ostream& os, std::span<const HdfFlowResult> rows);

/// Table III: test time reduction per coverage target.
void print_table3(std::ostream& os, std::span<const HdfFlowResult> rows);

/// Fig. 3: HDF coverage over f_max as an ASCII series.
void print_fig3(std::ostream& os, std::span<const CoverageBySpeed> curve);

/// Detection-engine work counters (screen/simulate/detect funnel and
/// per-phase times) per circuit — the perf-debugging companion of the
/// paper tables.  Columns mirror DetectionCounters::to_json().
void print_engine_counters(std::ostream& os,
                           std::span<const HdfFlowResult> rows);

/// Per-phase wall/CPU breakdown of one flow run, with each phase's
/// share of the total wall clock.
void print_phase_table(std::ostream& os, const HdfFlowResult& result);

}  // namespace fastmon
