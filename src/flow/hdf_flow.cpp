#include "flow/hdf_flow.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/cancel.hpp"
#include "util/fault_inject.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace fastmon {

namespace {

/// One flow phase: a trace span plus a wall/CPU stopwatch whose reading
/// is appended to the phase list when the recorder finishes (or goes
/// out of scope).
class PhaseRecorder {
public:
    PhaseRecorder(std::vector<PhaseTime>& out, const char* name)
        : out_(&out), name_(name), span_(name, "flow") {}
    ~PhaseRecorder() { finish(); }

    PhaseRecorder(const PhaseRecorder&) = delete;
    PhaseRecorder& operator=(const PhaseRecorder&) = delete;

    void finish() {
        if (out_ == nullptr) return;
        out_->push_back(watch_.elapsed(name_));
        span_.end();
        out_ = nullptr;
    }

private:
    std::vector<PhaseTime>* out_;
    const char* name_;
    TraceSpan span_;
    PhaseStopwatch watch_;
};

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

}  // namespace

HdfFlow::HdfFlow(const Netlist& netlist, HdfFlowConfig config)
    : netlist_(&netlist), config_(std::move(config)) {}

Interval HdfFlow::window_for(double fmax_factor) const {
    return fast_window(sta_.clock_period, fmax_factor);
}

void HdfFlow::note_cancelled() {
    status_.cancelled = true;
    status_.cancel_cause = CancelToken::global().cause();
}

void HdfFlow::record_status(PhaseStatus st) {
    if (st.outcome != PhaseOutcome::Ok) {
        log_warn() << "flow " << netlist_->name() << ": phase " << st.name
                   << " " << phase_outcome_name(st.outcome)
                   << (st.detail.empty() ? "" : ": ") << st.detail;
    }
    status_.phases.push_back(std::move(st));
    flush_manifest("running");
}

bool HdfFlow::guarded_phase(std::vector<PhaseTime>& times, const char* name,
                            bool essential,
                            const std::function<void(PhaseStatus&)>& body) {
    PhaseStatus st;
    st.name = name;
    // Test hook: FASTMON_FAULT_INJECT=cancel.<phase> requests
    // cancellation right as this phase starts.
    if (FaultInjector::global().trip(std::string("cancel.") + name)) {
        CancelToken::global().cancel(CancelCause::Test);
    }
    const bool entered_cancelled = CancelToken::global().cancelled();
    try {
        const PhaseRecorder phase(times, name);
        body(st);
    } catch (const CancelledError& e) {
        // The engine had no partial result to give; the phase output
        // keeps its (safe) defaults and the flow continues degraded.
        if (essential) {
            st.outcome = PhaseOutcome::Failed;
            st.detail = e.what();
            note_cancelled();
            record_status(std::move(st));
            throw FlowError(name, e.what());
        }
        st.outcome = PhaseOutcome::Degraded;
        st.detail = e.what();
    } catch (const std::exception& e) {
        st.outcome = PhaseOutcome::Failed;
        st.detail = e.what();
        if (essential) {
            record_status(std::move(st));
            throw FlowError(name, e.what());
        }
    }
    if (CancelToken::global().cancelled()) {
        note_cancelled();
        if (st.outcome == PhaseOutcome::Ok) {
            st.outcome = PhaseOutcome::Degraded;
            st.detail = entered_cancelled
                            ? "ran after cancellation: fallback/partial inputs"
                            : "cancelled mid-phase: partial results";
        }
    }
    const bool ok = st.outcome != PhaseOutcome::Failed;
    record_status(std::move(st));
    return ok;
}

void HdfFlow::skip_phase(const char* name, std::string reason) {
    PhaseStatus st;
    st.name = name;
    st.outcome = PhaseOutcome::Skipped;
    st.detail = std::move(reason);
    record_status(std::move(st));
}

void HdfFlow::fill_config(RunManifest& m) const {
    m.set_config("fmax_factor", config_.fmax_factor);
    m.set_config("clock_margin", config_.clock_margin);
    m.set_config("monitor_fraction", config_.monitor_fraction);
    m.set_config("delta_factor", config_.delta_factor);
    m.set_config("variation_sigma", config_.variation_sigma);
    m.set_config("seed", config_.seed);
    m.set_config("max_simulated_faults", config_.max_simulated_faults);
    m.set_config("num_threads", config_.num_threads);
    m.set_config("glitch_threshold", config_.glitch_threshold);
    m.set_config("atpg_engine",
                 std::string(atpg_engine_kind_name(config_.atpg.engine)));
    m.set_config("atpg_podem_backtrack_limit",
                 config_.atpg.podem_backtrack_limit);
    m.set_config("atpg_sat_conflict_budget", config_.atpg.sat_conflict_budget);
    m.set_config("atpg_sat_restart_period", config_.atpg.sat_restart_period);
}

void HdfFlow::flush_manifest(const char* outcome) const {
    if (config_.manifest_path.empty()) return;
    RunManifest m;
    fill_config(m);
    m.set_circuit("name", netlist_->name());
    for (const PhaseTime& p : phases_) m.add_phase(p);
    if (active_run_phases_ != nullptr) {
        for (const PhaseTime& p : *active_run_phases_) m.add_phase(p);
    }
    m.set_status(status_.to_json(outcome));
    if (!m.write(config_.manifest_path)) {
        log_warn() << "flow: failed to write manifest snapshot to "
                   << config_.manifest_path;
    }
}

void HdfFlow::prepare() {
    if (prepared_) return;
    const TraceSpan prepare_span("prepare", "flow");
    const auto t_prepare = std::chrono::steady_clock::now();
    const Netlist& nl = *netlist_;

    // (0) Timing annotation and STA (essential: nothing downstream has
    // meaning without a clock period).
    guarded_phase(phases_, "sta", /*essential=*/true, [&](PhaseStatus&) {
        delays_ = config_.variation_sigma > 0.0
                      ? DelayAnnotation::with_variation(
                            nl, config_.variation_sigma, config_.seed)
                      : DelayAnnotation::nominal(nl);
        // The optional keeps *delays_ address-stable, so the engine can
        // hold it as its base and serve incremental updates later.
        sta_engine_.emplace(nl, *delays_, config_.clock_margin);
        sta_ = sta_engine_->analyze();
    });

    // Monitor insertion at long path ends (essential: the monitored set
    // feeds classification and every detection pass).
    guarded_phase(phases_, "monitor_placement", /*essential=*/true,
                  [&](PhaseStatus&) {
                      placement_ =
                          place_monitors(nl, sta_, config_.monitor_fraction,
                                         config_.monitor_delay_fractions);
                  });

    // Test set: supplied or ATPG-generated.  Non-essential — an
    // interrupted ATPG still yields the patterns produced so far.
    guarded_phase(phases_, "atpg", /*essential=*/false, [&](PhaseStatus& st) {
        if (config_.test_set.has_value()) {
            test_set_ = *config_.test_set;
            atpg_coverage_ = 0.0;
        } else {
            AtpgConfig atpg = config_.atpg;
            atpg.seed ^= config_.seed;
            const AtpgResult ar = generate_tdf_tests(nl, atpg);
            test_set_ = ar.test_set;
            atpg_coverage_ = ar.coverage();
            if (ar.interrupted) {
                st.outcome = PhaseOutcome::Degraded;
                st.detail = "ATPG cancelled: partial test set (" +
                            std::to_string(test_set_.size()) + " patterns)";
            }
        }
    });

    // (1) Fault universe and structural classification (essential: the
    // simulated-fault list is the backbone of every later phase).
    guarded_phase(phases_, "classify", /*essential=*/true, [&](PhaseStatus&) {
        universe_ =
            FaultUniverse::generate(nl, *delays_, config_.delta_factor);
        StructuralClassifyConfig scc;
        scc.fmax_factor = config_.fmax_factor;
        scc.max_monitor_delay = placement_.max_delay();
        scc.monitored_observe = placement_.monitored;
        structural_ = classify_structural(nl, *delays_, sta_, universe_, scc);

        // Sampling cap for the heavy simulation phase.
        std::vector<FaultId> candidates = structural_.candidates();
        if (config_.max_simulated_faults != 0 &&
            candidates.size() > config_.max_simulated_faults) {
            // Stratified subsample of the candidate list (deterministic).
            std::vector<FaultId> sampled;
            const std::size_t n = candidates.size();
            const std::size_t k = config_.max_simulated_faults;
            for (std::size_t i = 0; i < k; ++i) {
                sampled.push_back(candidates[i * n / k]);
            }
            sampled.erase(std::unique(sampled.begin(), sampled.end()),
                          sampled.end());
            simulated_ = std::move(sampled);
            sample_scale_ = static_cast<double>(candidates.size()) /
                            static_cast<double>(simulated_.size());
            log_info() << "flow " << nl.name() << ": sampling "
                       << simulated_.size() << " of " << candidates.size()
                       << " candidate faults";
        } else {
            simulated_ = std::move(candidates);
            sample_scale_ = 1.0;
        }
    });

    // (2)-(3) Pass-A detection analysis.  Non-essential: when cancelled
    // mid-simulation the analyzer returns the ranges finished so far and
    // coverage is reported from exactly those faults.
    guarded_phase(
        phases_, "fault_sim_pass_a", /*essential=*/false,
        [&](PhaseStatus& st) {
            const WaveSim wave_sim(nl, *delays_, config_.wave);
            DetectionAnalysisConfig dac;
            dac.glitch_threshold = config_.glitch_threshold >= 0.0
                                       ? config_.glitch_threshold
                                       : delays_->glitch_threshold();
            dac.horizon = sta_.clock_period * 1.02;
            dac.num_threads = config_.num_threads;
            const DetectionAnalyzer analyzer(wave_sim, test_set_.patterns,
                                             placement_.monitored, dac);
            std::vector<DelayFault> faults;
            faults.reserve(simulated_.size());
            for (FaultId id : simulated_) {
                faults.push_back(universe_.fault(id));
            }
            ranges_ = analyzer.analyze(faults);
            detect_counters_ += analyzer.counters();
            if (analyzer.interrupted()) {
                st.outcome = PhaseOutcome::Degraded;
                st.detail = "fault simulation cancelled: ranges cover the "
                            "faults simulated before the stop";
            }
        });

    // (4)-(5) Target fault set via configuration range shifting.
    guarded_phase(phases_, "shifting", /*essential=*/false,
                  [&](PhaseStatus&) {
                      const Interval window = window_for(config_.fmax_factor);
                      targets_.clear();
                      for (std::uint32_t i = 0; i < ranges_.size(); ++i) {
                          const IntervalSet full = full_detection_range(
                              ranges_[i], placement_.config_delays);
                          IntervalSet in_window = full;
                          in_window.clip(window.lo, window.hi);
                          // not prop-detectable
                          if (in_window.empty()) continue;
                          if (detects_at_speed(full, sta_.clock_period)) {
                              continue;
                          }
                          targets_.push_back(i);
                      }
                  });
    prepare_wall_seconds_ = wall_seconds_since(t_prepare);
    prepared_ = true;
    flush_manifest(nullptr);
}

IntervalSet HdfFlow::full_range_in_window(std::size_t i) const {
    IntervalSet full =
        full_detection_range(ranges_[i], placement_.config_delays);
    const Interval w = window_for(config_.fmax_factor);
    full.clip(w.lo, w.hi);
    return full;
}

Json CoverageBySpeed::to_json() const {
    Json j = Json::object();
    j.set("fmax_factor", fmax_factor);
    j.set("conv", conv);
    j.set("prop", prop);
    return j;
}

std::optional<CoverageBySpeed> CoverageBySpeed::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* fmax = j.find("fmax_factor");
    const Json* conv = j.find("conv");
    const Json* prop = j.find("prop");
    if (!fmax || !fmax->is_number() || !conv || !conv->is_number() || !prop ||
        !prop->is_number()) {
        return std::nullopt;
    }
    CoverageBySpeed point;
    point.fmax_factor = fmax->as_number();
    point.conv = conv->as_number();
    point.prop = prop->as_number();
    return point;
}

Json CoverageRow::to_json() const {
    Json j = Json::object();
    j.set("coverage", coverage);
    j.set("num_frequencies", num_frequencies);
    j.set("naive_pc", naive_pc);
    j.set("schedule_size", schedule_size);
    j.set("reduction_percent", reduction_percent);
    return j;
}

std::optional<CoverageRow> CoverageRow::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* coverage = j.find("coverage");
    const Json* freqs = j.find("num_frequencies");
    const Json* naive = j.find("naive_pc");
    const Json* schedule = j.find("schedule_size");
    const Json* reduction = j.find("reduction_percent");
    if (!coverage || !coverage->is_number() || !freqs || !freqs->is_number() ||
        !naive || !naive->is_number() || !schedule ||
        !schedule->is_number() || !reduction || !reduction->is_number()) {
        return std::nullopt;
    }
    CoverageRow row;
    row.coverage = coverage->as_number();
    row.num_frequencies = static_cast<std::size_t>(freqs->as_number());
    row.naive_pc = static_cast<std::size_t>(naive->as_number());
    row.schedule_size = static_cast<std::size_t>(schedule->as_number());
    row.reduction_percent = reduction->as_number();
    return row;
}

IntervalSet HdfFlow::ff_range_in_window(std::size_t i) const {
    IntervalSet ff = ranges_[i].ff;
    const Interval w = window_for(config_.fmax_factor);
    ff.clip(w.lo, w.hi);
    return ff;
}

std::vector<CoverageBySpeed> HdfFlow::coverage_curve(
    std::span<const double> fmax_factors) const {
    // Denominator: all hidden delay faults (everything that survives
    // at-speed removal; timing-redundant faults count as undetected).
    const double hdf_universe = static_cast<double>(
        universe_.size() - structural_.num_at_speed);
    std::vector<CoverageBySpeed> curve;
    for (double fmax : fmax_factors) {
        const Interval w = window_for(fmax);
        std::size_t conv = 0;
        std::size_t prop = 0;
        for (const FaultRanges& r : ranges_) {
            IntervalSet ff = r.ff;
            ff.clip(w.lo, w.hi);
            if (!ff.empty()) ++conv;
            IntervalSet full =
                full_detection_range(r, placement_.config_delays);
            full.clip(w.lo, w.hi);
            if (!full.empty()) ++prop;
        }
        CoverageBySpeed point;
        point.fmax_factor = fmax;
        if (hdf_universe > 0) {
            point.conv = sample_scale_ * static_cast<double>(conv) / hdf_universe;
            point.prop = sample_scale_ * static_cast<double>(prop) / hdf_universe;
        }
        curve.push_back(point);
    }
    return curve;
}

HdfFlowResult HdfFlow::run() {
    prepare();
    const TraceSpan run_span("run", "flow");
    const auto t_run = std::chrono::steady_clock::now();
    std::vector<PhaseTime> run_phases;
    active_run_phases_ = &run_phases;
    const Netlist& nl = *netlist_;
    HdfFlowResult res;
    res.circuit = nl.name();
    res.num_gates = nl.num_comb_gates();
    res.num_ffs = nl.flip_flops().size();
    res.num_patterns = test_set_.size();
    res.num_monitors = placement_.num_monitors();
    res.fault_universe = universe_.size();
    res.at_speed_detectable = structural_.num_at_speed;
    res.timing_redundant = structural_.num_redundant;
    res.candidate_faults = structural_.num_candidates;
    res.simulated_faults = simulated_.size();
    res.clock_period = sta_.clock_period;
    res.t_min = sta_.clock_period / config_.fmax_factor;
    res.atpg_coverage = atpg_coverage_;

    auto scaled = [this](std::size_t n) {
        return static_cast<std::size_t>(
            std::llround(sample_scale_ * static_cast<double>(n)));
    };

    // --- Table I ---
    guarded_phase(run_phases, "table1", /*essential=*/false,
                  [&](PhaseStatus&) {
        std::size_t conv_detected = 0;
        std::size_t prop_detected = 0;
        std::size_t at_speed_monitor = 0;
        for (std::uint32_t i = 0; i < ranges_.size(); ++i) {
            if (!ff_range_in_window(i).empty()) ++conv_detected;
            const IntervalSet full =
                full_detection_range(ranges_[i], placement_.config_delays);
            IntervalSet in_window = full;
            const Interval w = window_for(config_.fmax_factor);
            in_window.clip(w.lo, w.hi);
            if (in_window.empty()) continue;
            ++prop_detected;
            if (detects_at_speed(full, sta_.clock_period)) {
                ++at_speed_monitor;
            }
        }
        res.detected_conv = scaled(conv_detected);
        res.detected_prop = scaled(prop_detected);
        res.monitor_at_speed = scaled(at_speed_monitor);
        res.target_faults = scaled(targets_.size());
        res.gain_percent =
            conv_detected == 0
                ? 0.0
                : (static_cast<double>(prop_detected) /
                       static_cast<double>(conv_detected) -
                   1.0) *
                      100.0;
    });

    // --- Table II: frequency selection ---
    // Declared outside the phase so a failure leaves safe (empty)
    // defaults for the dependents to check.
    FrequencySelection sel_prop;
    std::vector<IntervalSet> target_ranges;
    std::vector<Time> all_periods;
    std::vector<FrequencySelection> cov_selections;
    const bool freq_ok = guarded_phase(
        run_phases, "freq_select", /*essential=*/false, [&](PhaseStatus&) {
            // Conventional FAST: cover the conventionally detectable
            // faults using flip-flop ranges only.
            std::vector<IntervalSet> conv_ranges(ranges_.size());
            for (std::uint32_t i = 0; i < ranges_.size(); ++i) {
                conv_ranges[i] = ff_range_in_window(i);
            }
            FrequencySelectOptions fopts;
            fopts.discretize = config_.discretize;
            fopts.solver = config_.solver;
            fopts.method = SelectMethod::BranchAndBound;
            const FrequencySelection sel_conv =
                select_frequencies(conv_ranges, fopts);
            res.freq_conv = sel_conv.periods.size();

            // Target fault ranges (monitored).
            target_ranges.reserve(targets_.size());
            for (std::uint32_t pos : targets_) {
                target_ranges.push_back(full_range_in_window(pos));
            }
            FrequencySelectOptions heur_opts = fopts;
            heur_opts.method = SelectMethod::Greedy;
            const FrequencySelection sel_heur =
                select_frequencies(target_ranges, heur_opts);
            res.freq_heur = sel_heur.periods.size();
            sel_prop = select_frequencies(target_ranges, fopts);
            res.freq_prop = sel_prop.periods.size();
            res.freq_reduction_percent =
                res.freq_conv == 0
                    ? 0.0
                    : (1.0 - static_cast<double>(res.freq_prop) /
                                 static_cast<double>(res.freq_conv)) *
                          100.0;

            // Union of all periods pass B will need.
            all_periods = sel_prop.periods;
            for (double cov : config_.coverage_targets) {
                FrequencySelectOptions copts = fopts;
                copts.coverage = cov;
                cov_selections.push_back(
                    select_frequencies(target_ranges, copts));
                for (Time t : cov_selections.back().periods) {
                    all_periods.push_back(t);
                }
            }
            std::sort(all_periods.begin(), all_periods.end());
            all_periods.erase(
                std::unique(all_periods.begin(), all_periods.end(),
                            [](Time a, Time b) {
                                return std::abs(a - b) <= kTimeEps;
                            }),
                all_periods.end());
        });

    // --- Pass B over the union of all periods we will need ---
    std::vector<DelayFault> target_faults;
    std::vector<DetectionEntry> all_entries;
    guarded_phase(
        run_phases, "fault_sim_pass_b", /*essential=*/false,
        [&](PhaseStatus& st) {
            std::vector<FaultRanges> target_fault_ranges;
            for (std::uint32_t pos : targets_) {
                target_faults.push_back(universe_.fault(simulated_[pos]));
                target_fault_ranges.push_back(ranges_[pos]);
            }
            const WaveSim wave_sim(nl, *delays_, config_.wave);
            DetectionAnalysisConfig dac;
            dac.glitch_threshold = config_.glitch_threshold >= 0.0
                                       ? config_.glitch_threshold
                                       : delays_->glitch_threshold();
            dac.horizon = sta_.clock_period * 1.02;
            dac.num_threads = config_.num_threads;
            const DetectionAnalyzer analyzer(wave_sim, test_set_.patterns,
                                             placement_.monitored, dac);
            all_entries = analyzer.detection_table(
                target_faults, target_fault_ranges, all_periods,
                placement_.config_delays);
            detect_counters_ += analyzer.counters();
            if (analyzer.interrupted()) {
                st.outcome = PhaseOutcome::Degraded;
                st.detail = "detection table cancelled: entries cover the "
                            "faults simulated before the stop";
            }
        });
    res.detection = detect_counters_;

    // Helper: restrict the table to one period subset (remapped).
    auto entries_for = [&all_entries, &all_periods](
                           std::span<const Time> periods) {
        std::vector<std::uint16_t> remap(all_periods.size(), UINT16_MAX);
        for (std::uint16_t j = 0; j < periods.size(); ++j) {
            for (std::uint16_t k = 0; k < all_periods.size(); ++k) {
                if (std::abs(all_periods[k] - periods[j]) <= kTimeEps) {
                    remap[k] = j;
                    break;
                }
            }
        }
        std::vector<DetectionEntry> out;
        for (DetectionEntry e : all_entries) {
            if (e.period < remap.size() && remap[e.period] != UINT16_MAX) {
                e.period = remap[e.period];
                out.push_back(e);
            }
        }
        return out;
    };

    const std::size_t num_configs = placement_.config_delays.size();
    PatternConfigOptions pco;
    pco.method = SelectMethod::BranchAndBound;
    pco.solver = config_.solver;

    // --- Table II: pattern x config selection at full coverage ---
    if (freq_ok) {
        guarded_phase(run_phases, "pattern_config_select",
                      /*essential=*/false, [&](PhaseStatus&) {
            std::vector<std::uint32_t> all_targets(target_faults.size());
            for (std::uint32_t i = 0; i < all_targets.size(); ++i) {
                all_targets[i] = i;
            }
            const auto entries = entries_for(sel_prop.periods);
            const PatternConfigResult pc = select_pattern_configs(
                entries, sel_prop.periods, all_targets, pco);
            res.orig_pc =
                test_set_.size() * num_configs * sel_prop.periods.size();
            res.opti_pc = pc.schedule.size();
            res.pc_reduction_percent =
                schedule_reduction_percent(res.opti_pc, res.orig_pc);
            res.schedule_proven_optimal =
                pc.proven_optimal && sel_prop.proven_optimal;
            res.schedule_uncovered = pc.uncovered_faults.size();
        });
    } else {
        skip_phase("pattern_config_select", "frequency selection failed");
    }

    // --- Table III ---
    if (freq_ok &&
        cov_selections.size() == config_.coverage_targets.size()) {
        guarded_phase(run_phases, "coverage_rows", /*essential=*/false,
                      [&](PhaseStatus&) {
            for (std::size_t k = 0; k < config_.coverage_targets.size();
                 ++k) {
                const FrequencySelection& sel = cov_selections[k];
                CoverageRow row;
                row.coverage = config_.coverage_targets[k];
                row.num_frequencies = sel.periods.size();
                row.naive_pc =
                    test_set_.size() * num_configs * sel.periods.size();
                // Faults actually covered by this (partial) selection.
                std::vector<bool> in_cover(target_faults.size(), false);
                for (const auto& covered : sel.covered) {
                    for (std::uint32_t fi : covered) in_cover[fi] = true;
                }
                std::vector<std::uint32_t> cov_targets;
                for (std::uint32_t i = 0; i < in_cover.size(); ++i) {
                    if (in_cover[i]) cov_targets.push_back(i);
                }
                const auto entries = entries_for(sel.periods);
                const PatternConfigResult pc = select_pattern_configs(
                    entries, sel.periods, cov_targets, pco);
                row.schedule_size = pc.schedule.size();
                row.reduction_percent = schedule_reduction_percent(
                    row.schedule_size, row.naive_pc);
                res.coverage_rows.push_back(row);
            }
        });
    } else {
        skip_phase("coverage_rows", "frequency selections unavailable");
    }

    res.phases = phases_;
    res.phases.insert(res.phases.end(), run_phases.begin(), run_phases.end());
    res.total_wall_seconds =
        prepare_wall_seconds_ + wall_seconds_since(t_run);
    res.status = status_;
    // Leave the snapshot file in its final state even when the caller
    // never writes the full manifest(result) itself.
    flush_manifest(nullptr);
    active_run_phases_ = nullptr;
    return res;
}

RunManifest HdfFlow::manifest(const HdfFlowResult& result) const {
    RunManifest m;

    fill_config(m);

    m.set_circuit("name", result.circuit);
    m.set_circuit("num_gates", result.num_gates);
    m.set_circuit("num_ffs", result.num_ffs);
    m.set_circuit("num_patterns", result.num_patterns);
    m.set_circuit("num_monitors", result.num_monitors);
    m.set_circuit("fault_universe", result.fault_universe);
    m.set_circuit("candidate_faults", result.candidate_faults);
    m.set_circuit("simulated_faults", result.simulated_faults);
    m.set_circuit("target_faults", result.target_faults);

    for (const PhaseTime& p : result.phases) m.add_phase(p);
    m.set_total_wall_seconds(result.total_wall_seconds);
    m.set_status(result.status.to_json());

    // Snapshot of the process-wide metrics; the shared pool is only
    // touched when this flow actually used it (a serial flow must not
    // spin up worker threads just to report about them).
    MetricsRegistry& reg = MetricsRegistry::global();
    if (config_.num_threads != 1) {
        ThreadPool::shared().publish_metrics(reg);
    }
    Json metrics = reg.to_json();
    metrics.set("detection", result.detection.to_json());
    m.set_metrics(std::move(metrics));
    return m;
}

}  // namespace fastmon
