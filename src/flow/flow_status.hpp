// Structured per-phase flow status: the machinery behind graceful
// degradation.
//
// Every HdfFlow phase finishes with a PhaseStatus instead of either
// silently succeeding or tearing the whole flow down with a bare
// exception.  Essential phases (STA, monitor placement, fault
// classification) still abort the flow — but through a typed FlowError
// that names the phase — while every other phase records a Degraded /
// Skipped / Failed outcome and lets the flow continue on partial data.
// The accumulated FlowStatus becomes the manifest's "status" block, so
// a run killed by FASTMON_DEADLINE or SIGINT leaves an honest record of
// exactly which phases completed.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "util/cancel.hpp"
#include "util/json.hpp"

namespace fastmon {

enum class PhaseOutcome : std::uint8_t {
    Ok = 0,    ///< ran to completion on full inputs
    Degraded,  ///< ran, but on partial inputs or with a fallback method
    Skipped,   ///< never ran (dependency failed or flow cancelled)
    Failed,    ///< threw; flow continued with defaults (non-essential)
};

/// Lower-case name ("ok", "degraded", "skipped", "failed").
[[nodiscard]] const char* phase_outcome_name(PhaseOutcome outcome);

/// Outcome of one named flow phase.
struct PhaseStatus {
    std::string name;
    PhaseOutcome outcome = PhaseOutcome::Ok;
    std::string detail;  ///< empty for Ok; reason otherwise

    friend bool operator==(const PhaseStatus&, const PhaseStatus&) = default;
};

/// Accumulated status of a whole flow run (prepare() + run()).
struct FlowStatus {
    std::vector<PhaseStatus> phases;
    bool cancelled = false;
    CancelCause cancel_cause = CancelCause::None;

    /// True when every phase ran to completion and nothing was
    /// cancelled — the result is the full, undegraded computation.
    [[nodiscard]] bool complete() const;

    /// "ok" when complete(), else "degraded".  (A run that died on an
    /// essential phase never produces a FlowStatus; the caller writes
    /// "failed" from its FlowError handler.)
    [[nodiscard]] const char* overall() const;

    [[nodiscard]] const PhaseStatus* find(const std::string& name) const;

    /// Manifest "status" block:
    ///   { "outcome": "ok|degraded|failed|running",
    ///     "cancelled": bool, "cancel_cause": "none|deadline|signal|test",
    ///     "phases": [ { "name", "outcome", "detail" }, ... ] }
    /// `outcome_override` (e.g. "running" for phase-boundary flushes or
    /// "failed" from an error handler) replaces overall() when non-null.
    [[nodiscard]] Json to_json(const char* outcome_override = nullptr) const;
};

/// An essential flow phase failed; the flow cannot produce even a
/// degraded result.  Carries the phase name so error handlers can
/// record it in the manifest status block.
class FlowError : public std::runtime_error {
public:
    FlowError(std::string phase, const std::string& message);
    [[nodiscard]] const std::string& phase() const noexcept { return phase_; }

private:
    std::string phase_;
};

}  // namespace fastmon
