#include "flow/report.hpp"

#include <cstdio>
#include <ostream>

#include "util/table.hpp"

namespace fastmon {

void print_table1(std::ostream& os, std::span<const HdfFlowResult> rows) {
    TextTable t({"Circuit", "Gates", "FFs", "|P|", "|M|", "conv.", "prop.",
                 "d%", "Phi_tar"});
    for (const HdfFlowResult& r : rows) {
        t.begin_row();
        t.cell(r.circuit);
        t.cell(r.num_gates);
        t.cell(r.num_ffs);
        t.cell(r.num_patterns);
        t.cell(r.num_monitors);
        t.cell(r.detected_conv);
        t.cell(r.detected_prop);
        t.cell_percent(r.gain_percent);
        t.cell(r.target_faults);
    }
    t.print(os);
}

void print_table2(std::ostream& os, std::span<const HdfFlowResult> rows) {
    TextTable t({"Circuit", "F conv.", "F heur.", "F prop.", "d%|F|",
                 "PC orig.", "PC opti.", "d%|PC|"});
    for (const HdfFlowResult& r : rows) {
        t.begin_row();
        t.cell(r.circuit);
        t.cell(r.freq_conv);
        t.cell(r.freq_heur);
        t.cell(r.freq_prop);
        t.cell(r.freq_reduction_percent, 1);
        t.cell(r.orig_pc);
        t.cell(r.opti_pc);
        t.cell_percent(r.pc_reduction_percent);
    }
    t.print(os);
}

void print_table3(std::ostream& os, std::span<const HdfFlowResult> rows) {
    std::vector<std::string> headers{"Circuit"};
    if (!rows.empty()) {
        for (const CoverageRow& cr : rows.front().coverage_rows) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.0f%%", cr.coverage * 100.0);
            const std::string tag(buf);
            headers.push_back("|F" + tag + "|");
            headers.push_back("|PC" + tag + "|");
            headers.push_back("|S" + tag + "|");
            headers.push_back("d%" + tag);
        }
    }
    TextTable t(std::move(headers));
    for (const HdfFlowResult& r : rows) {
        t.begin_row();
        t.cell(r.circuit);
        for (const CoverageRow& cr : r.coverage_rows) {
            t.cell(cr.num_frequencies);
            t.cell(cr.naive_pc);
            t.cell(cr.schedule_size);
            t.cell_percent(cr.reduction_percent);
        }
    }
    t.print(os);
}

void print_fig3(std::ostream& os, std::span<const CoverageBySpeed> curve) {
    TextTable t({"fmax/fnom", "conv. FAST", "with monitors"});
    for (const CoverageBySpeed& p : curve) {
        t.begin_row();
        t.cell(p.fmax_factor, 2);
        t.cell(p.conv * 100.0, 1);
        t.cell(p.prop * 100.0, 1);
    }
    t.print(os);
    // Small ASCII plot (conv: '.', prop: '#').
    const int width = 60;
    for (const CoverageBySpeed& p : curve) {
        const int c = static_cast<int>(p.conv * width);
        const int m = static_cast<int>(p.prop * width);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%5.2f |", p.fmax_factor);
        os << buf;
        for (int x = 0; x <= width; ++x) {
            if (x == m) {
                os << '#';
            } else if (x == c) {
                os << '.';
            } else {
                os << ' ';
            }
        }
        os << '\n';
    }
}

void print_engine_counters(std::ostream& os,
                           std::span<const HdfFlowResult> rows) {
    // Columns come from DetectionCounters::to_json(), so new counters
    // show up here (and in the bench artifacts) without touching any
    // per-consumer field list.
    std::vector<std::string> headers{"Circuit"};
    if (!rows.empty()) {
        const Json first = rows.front().detection.to_json();
        for (const auto& [key, value] : first.as_object()) {
            headers.push_back(key);
        }
    }
    TextTable t(std::move(headers));
    for (const HdfFlowResult& r : rows) {
        t.begin_row();
        t.cell(r.circuit);
        const Json j = r.detection.to_json();
        for (const auto& [key, value] : j.as_object()) {
            const double v = value.as_number();
            if (v == static_cast<double>(static_cast<long long>(v))) {
                t.cell(static_cast<long long>(v));
            } else {
                t.cell(v, 3);
            }
        }
    }
    t.print(os);
}

void print_phase_table(std::ostream& os, const HdfFlowResult& result) {
    TextTable t({"Phase", "wall [s]", "cpu [s]", "wall %"});
    double phase_wall = 0.0;
    for (const PhaseTime& p : result.phases) phase_wall += p.wall_seconds;
    const double total =
        result.total_wall_seconds > 0.0 ? result.total_wall_seconds : phase_wall;
    for (const PhaseTime& p : result.phases) {
        t.begin_row();
        t.cell(p.name);
        t.cell(p.wall_seconds, 3);
        t.cell(p.cpu_seconds, 3);
        t.cell(total > 0.0 ? 100.0 * p.wall_seconds / total : 0.0, 1);
    }
    t.begin_row();
    t.cell(std::string("total (phases)"));
    t.cell(phase_wall, 3);
    t.cell(std::string("-"));
    t.cell(total > 0.0 ? 100.0 * phase_wall / total : 0.0, 1);
    t.begin_row();
    t.cell(std::string("total (wall)"));
    t.cell(result.total_wall_seconds, 3);
    t.cell(std::string("-"));
    t.cell(std::string("-"));
    t.print(os);
}

}  // namespace fastmon
