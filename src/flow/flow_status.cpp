#include "flow/flow_status.hpp"

namespace fastmon {

const char* phase_outcome_name(PhaseOutcome outcome) {
    switch (outcome) {
        case PhaseOutcome::Ok: return "ok";
        case PhaseOutcome::Degraded: return "degraded";
        case PhaseOutcome::Skipped: return "skipped";
        case PhaseOutcome::Failed: return "failed";
    }
    return "unknown";
}

bool FlowStatus::complete() const {
    if (cancelled) return false;
    for (const PhaseStatus& p : phases) {
        if (p.outcome != PhaseOutcome::Ok) return false;
    }
    return true;
}

const char* FlowStatus::overall() const {
    return complete() ? "ok" : "degraded";
}

const PhaseStatus* FlowStatus::find(const std::string& name) const {
    for (const PhaseStatus& p : phases) {
        if (p.name == name) return &p;
    }
    return nullptr;
}

Json FlowStatus::to_json(const char* outcome_override) const {
    Json doc = Json::object();
    doc.set("outcome",
            outcome_override != nullptr ? outcome_override : overall());
    doc.set("cancelled", cancelled);
    doc.set("cancel_cause", cancel_cause_name(cancel_cause));
    Json list = Json::array();
    for (const PhaseStatus& p : phases) {
        Json j = Json::object();
        j.set("name", p.name);
        j.set("outcome", phase_outcome_name(p.outcome));
        j.set("detail", p.detail);
        list.push_back(std::move(j));
    }
    doc.set("phases", std::move(list));
    return doc;
}

FlowError::FlowError(std::string phase, const std::string& message)
    : std::runtime_error("flow phase '" + phase + "' failed: " + message),
      phase_(std::move(phase)) {}

}  // namespace fastmon
