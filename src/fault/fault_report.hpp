// Fault-level reporting: a per-fault CSV dump of the classification and
// detection analysis, the artifact a test engineer diffs between
// silicon revisions.
#pragma once

#include <iosfwd>
#include <span>

#include "fault/classify.hpp"
#include "fault/detection_range.hpp"

namespace fastmon {

/// CSV columns:
///   fault, site, direction, delta_ps, class,
///   ff_lo, ff_hi, sr_lo, sr_hi, active_patterns
/// One row per fault of the universe.  `simulated` and `ranges` map the
/// simulated subset (ids parallel to ranges); faults outside it carry
/// empty range columns.
void write_fault_report_csv(std::ostream& os, const Netlist& netlist,
                            const FaultUniverse& universe,
                            const StructuralClassification& classification,
                            std::span<const FaultId> simulated,
                            std::span<const FaultRanges> ranges);

std::string_view to_string(StructuralClass klass);

}  // namespace fastmon
