#include "fault/classify.hpp"

#include <algorithm>

namespace fastmon {

std::vector<FaultId> StructuralClassification::candidates() const {
    std::vector<FaultId> ids;
    ids.reserve(num_candidates);
    for (FaultId i = 0; i < klass.size(); ++i) {
        if (klass[i] == StructuralClass::Candidate) ids.push_back(i);
    }
    return ids;
}

Time path_through_site(const Netlist& netlist, const DelayAnnotation& delays,
                       const StaResult& sta, const FaultSite& site) {
    if (site.pin == FaultSite::kOutputPin) {
        return sta.path_through[site.gate];
    }
    const Gate& g = netlist.gate(site.gate);
    const GateId driver = g.fanin[site.pin];
    const PinDelay arc = delays.arc(site.gate, site.pin);
    return sta.max_arrival[driver] + std::max(arc.rise, arc.fall) +
           sta.downstream[site.gate];
}

StructuralClassification classify_structural(
    const Netlist& netlist, const DelayAnnotation& delays,
    const StaResult& sta, const FaultUniverse& universe,
    const StructuralClassifyConfig& config) {
    StructuralClassification out;
    out.klass.resize(universe.size(), StructuralClass::Candidate);

    const Time t_nom = sta.clock_period;
    const Time t_min = t_nom / config.fmax_factor;

    // Per-gate: does the fanout cone reach a monitored observation point?
    // (Cached per gate; all faults of a gate share the cone.)
    // node id -> "is a monitored observe node", computed once.
    std::vector<bool> node_monitored(netlist.size(), false);
    if (!config.monitored_observe.empty()) {
        const auto ops = netlist.observe_points();
        for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
            if (config.monitored_observe[oi]) node_monitored[ops[oi].node] = true;
        }
    }
    // Reverse-topological propagation: a gate reaches a monitored
    // observation point iff one of its sink fanouts is monitored or a
    // combinational fanout reaches one.
    std::vector<bool> reaches_monitor(netlist.size(), false);
    {
        const auto order = netlist.topo_order();
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            const GateId id = *it;
            for (GateId out : netlist.gate(id).fanout) {
                const Gate& og = netlist.gate(out);
                if (og.type == CellType::Output || og.type == CellType::Dff) {
                    if (node_monitored[out]) reaches_monitor[id] = true;
                } else if (reaches_monitor[out]) {
                    reaches_monitor[id] = true;
                }
            }
        }
    }
    auto monitored_in_cone = [&](GateId gate) { return reaches_monitor[gate]; };

    for (FaultId fid = 0; fid < universe.size(); ++fid) {
        const DelayFault& f = universe.fault(fid);
        const Time path = path_through_site(netlist, delays, sta, f.site);

        // At-speed detectable: slack at the site below the fault size.
        if (t_nom - path < f.delta) {
            out.klass[fid] = StructuralClass::AtSpeedDetectable;
            ++out.num_at_speed;
            continue;
        }

        // Timing redundant: even the slowest faulty transition through
        // the site (path + delta), shifted by the largest monitor delay
        // where a monitor is reachable, settles before t_min — nothing
        // observable remains inside [t_min, t_nom].
        const Time shift =
            monitored_in_cone(f.site.gate) ? config.max_monitor_delay : 0.0;
        if (path + f.delta + shift < t_min) {
            out.klass[fid] = StructuralClass::TimingRedundant;
            ++out.num_redundant;
            continue;
        }
        ++out.num_candidates;
    }
    return out;
}

}  // namespace fastmon
