// Small delay fault universe.
//
// Following Sec. V of the paper, two small delay faults (slow-to-rise
// and slow-to-fall) are modelled at every input and output pin of every
// combinational gate.  The fault size is delta = 6 sigma with
// sigma = 0.2 x the nominal delay of the faulted gate — the size regime
// of marginal (early-life) and aging-degraded devices.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/fault_sim.hpp"
#include "timing/delay_model.hpp"

namespace fastmon {

using FaultId = std::uint32_t;

class FaultUniverse {
public:
    /// Enumerates the faults of `netlist`.  `delta_factor` scales the
    /// nominal gate delay into the fault size (paper: 6 * 0.2 = 1.2).
    static FaultUniverse generate(const Netlist& netlist,
                                  const DelayAnnotation& delays,
                                  double delta_factor = 1.2);

    [[nodiscard]] std::size_t size() const { return faults_.size(); }
    [[nodiscard]] const DelayFault& fault(FaultId id) const { return faults_[id]; }
    [[nodiscard]] std::span<const DelayFault> faults() const { return faults_; }

    /// Stable human-readable name, e.g. "g42/in1:STR".
    [[nodiscard]] std::string fault_name(const Netlist& netlist, FaultId id) const;

    /// Deterministic stratified sample of `max_count` fault ids (used by
    /// the benches to bound simulation time on the largest profiles; the
    /// sampling rate is always reported).  Returns all ids if the
    /// universe is smaller than max_count.
    [[nodiscard]] std::vector<FaultId> sample(std::size_t max_count,
                                              std::uint64_t seed) const;

private:
    std::vector<DelayFault> faults_;
};

}  // namespace fastmon
