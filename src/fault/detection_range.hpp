// Detection-range computation by timing-accurate fault simulation —
// steps (2)-(4) of the paper's test flow (Fig. 4).
//
// Pass A (analyze): for every candidate fault and every pattern pair,
// the fanout cone is re-simulated; the XOR of fault-free and faulty
// waveforms at each observation point yields detection intervals, which
// are pulse-filtered (Sec. II-A) and accumulated into two aggregates per
// fault: the range observable by standard flip-flops (all observation
// points) and the unshifted range observable by monitor shadow
// registers (monitored observation points only).  Patterns that produce
// any difference are remembered for pass B.
//
// Pass B (detection_table): re-simulates only (fault, active pattern)
// pairs and evaluates detection at a small set of selected observation
// times under every monitor configuration — the input of the second
// scheduling step (pattern x configuration selection).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "sim/pattern.hpp"

namespace fastmon {

/// Aggregated (pass A) detection data per fault.
struct FaultRanges {
    /// Detection range via standard flip-flops, union over all patterns
    /// and all observation points; raw observation times in [0, horizon).
    IntervalSet ff;
    /// Unshifted detection range at monitored observation points; the
    /// shadow-register range under configuration delay d is (sr + d).
    IntervalSet sr;
    /// Pattern indices that produced any output difference.
    std::vector<std::uint32_t> active_patterns;
};

/// One confirmed detection opportunity (pass B).
struct DetectionEntry {
    std::uint32_t fault_index = 0;    ///< index into the analyzed fault list
    std::uint32_t pattern = 0;        ///< pattern index
    std::uint16_t config = 0;         ///< monitor configuration index
    std::uint16_t period = 0;         ///< index into the period list
};

struct DetectionAnalysisConfig {
    /// Pulse-filtering threshold for detection intervals (Sec. II-A);
    /// intervals shorter than this are pessimistically dropped.
    Time glitch_threshold = 0.0;
    /// Upper bound of recorded observation times (>= t_nom + max
    /// monitor delay).
    Time horizon = 0.0;
};

class DetectionAnalyzer {
public:
    /// `monitored` flags each observation point carrying a monitor (may
    /// be empty: no monitors).
    DetectionAnalyzer(const WaveSim& wave_sim,
                      std::span<const PatternPair> patterns,
                      const std::vector<bool>& monitored,
                      DetectionAnalysisConfig config);

    /// Pass A over `faults` (parallelized over patterns internally).
    [[nodiscard]] std::vector<FaultRanges> analyze(
        std::span<const DelayFault> faults) const;

    /// Pass B: for each fault (with its active pattern list from pass A),
    /// tests detection at each observation time in `periods` under each
    /// monitor configuration delay in `config_delays` (index 0 is the
    /// monitor-off configuration with delay 0).
    [[nodiscard]] std::vector<DetectionEntry> detection_table(
        std::span<const DelayFault> faults,
        std::span<const FaultRanges> ranges,
        std::span<const Time> periods,
        std::span<const Time> config_delays) const;

    [[nodiscard]] const WaveSim& wave_sim() const { return *wave_sim_; }

private:
    /// FF/SR interval pair for one fault under one pattern.
    struct PairRanges {
        IntervalSet ff;
        IntervalSet sr;
    };
    [[nodiscard]] PairRanges ranges_for_pattern(
        const DelayFault& fault, std::span<const Waveform> good) const;

    const WaveSim* wave_sim_;
    std::span<const PatternPair> patterns_;
    std::vector<bool> monitored_;
    DetectionAnalysisConfig config_;
};

}  // namespace fastmon
