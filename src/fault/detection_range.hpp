// Detection-range computation by timing-accurate fault simulation —
// steps (2)-(4) of the paper's test flow (Fig. 4).
//
// Pass A (analyze): for every candidate fault and every pattern pair,
// the fanout cone is re-simulated; the XOR of fault-free and faulty
// waveforms at each observation point yields detection intervals, which
// are pulse-filtered (Sec. II-A) and accumulated into two aggregates per
// fault: the range observable by standard flip-flops (all observation
// points) and the unshifted range observable by monitor shadow
// registers (monitored observation points only).  Patterns that produce
// any difference are remembered for pass B.
//
// Pass B (detection_table): re-simulates only (fault, active pattern)
// pairs and evaluates detection at a small set of selected observation
// times under every monitor configuration — the input of the second
// scheduling step (pattern x configuration selection).
//
// Engine structure (this is the dominant cost of the whole flow):
//   * a bit-parallel ternary pre-screen (ActivationScreen) packs
//     patterns 64-wide and discards (fault, pattern) pairs whose site
//     provably never toggles, before any waveform is touched;
//   * surviving pairs run through FaultSim with a shared ConeCache and
//     per-worker dense-overlay scratch;
//   * work executes on a persistent thread pool: fault pairs of the
//     current pattern in parallel chunks, the next patterns'
//     fault-free waveforms as pipelined producer tasks;
//   * cheap counters record how much work each stage did.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "sim/pattern.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace fastmon {

/// Aggregated (pass A) detection data per fault.
struct FaultRanges {
    /// Detection range via standard flip-flops, union over all patterns
    /// and all observation points; raw observation times in [0, horizon).
    IntervalSet ff;
    /// Unshifted detection range at monitored observation points; the
    /// shadow-register range under configuration delay d is (sr + d).
    IntervalSet sr;
    /// Pattern indices that produced any output difference.
    std::vector<std::uint32_t> active_patterns;
};

/// One confirmed detection opportunity (pass B).
struct DetectionEntry {
    std::uint32_t fault_index = 0;    ///< index into the analyzed fault list
    std::uint32_t pattern = 0;        ///< pattern index
    std::uint16_t config = 0;         ///< monitor configuration index
    std::uint16_t period = 0;         ///< index into the period list
};

struct DetectionAnalysisConfig {
    /// Pulse-filtering threshold for detection intervals (Sec. II-A);
    /// intervals shorter than this are pessimistically dropped.
    Time glitch_threshold = 0.0;
    /// Upper bound of recorded observation times (>= t_nom + max
    /// monitor delay).
    Time horizon = 0.0;
    /// Simulation lanes: 0 = one per hardware thread (the process-wide
    /// shared pool), 1 = serial, n >= 2 = a dedicated pool of n - 1
    /// workers plus the calling thread.
    std::size_t num_threads = 0;
};

/// Cumulative work/timing counters of a DetectionAnalyzer — the
/// baseline data of performance work on the engine.  Pair counters
/// cover analyze(); detection_table() re-simulations are added to
/// pairs_simulated and timed separately.
struct DetectionCounters {
    std::uint64_t pairs_total = 0;         ///< (fault, pattern) pairs seen
    std::uint64_t pairs_screened_out = 0;  ///< dropped by the bit-parallel screen
    std::uint64_t pairs_inactive = 0;      ///< dropped by the exact activation check
    std::uint64_t pairs_simulated = 0;     ///< full cone re-simulations
    std::uint64_t pairs_detected = 0;      ///< simulations with a non-empty range
    std::uint64_t gates_reevaluated = 0;   ///< gate evaluations inside FaultSim
    std::uint64_t good_wave_sims = 0;      ///< fault-free waveform simulations
    std::uint64_t cones_cached = 0;        ///< distinct fanout cones materialized
    double screen_seconds = 0.0;           ///< building the activation screen
    double good_wave_seconds = 0.0;        ///< fault-free simulation (CPU time)
    double fault_sim_seconds = 0.0;        ///< fault simulation chunks (CPU time)
    double analyze_seconds = 0.0;          ///< analyze() wall clock
    double table_seconds = 0.0;            ///< detection_table() wall clock

    DetectionCounters& operator+=(const DetectionCounters& other);

    /// Stable key/value view of every counter, in declaration order —
    /// the single source of truth for reports, bench artifacts, and the
    /// run manifest (no per-consumer field lists).
    [[nodiscard]] Json to_json() const;
};

/// Bit-parallel, hazard-aware fault-activation pre-screen.
///
/// Patterns are packed 64 per word and pushed through a ternary logic
/// simulation (LogicSim::eval64_ternary): a stable (non-X) node
/// provably never toggles in the timed waveform simulation, so no
/// delay fault at that site can be activated by that pattern.  The
/// screen is conservative: may_toggle() == false guarantees
/// FaultSim::activated() == false for both transition directions;
/// true means "must check".
class ActivationScreen {
public:
    ActivationScreen(const Netlist& netlist,
                     std::span<const PatternPair> patterns);

    /// May the signal driven by `signal` toggle under pattern `pattern`?
    [[nodiscard]] bool may_toggle(GateId signal,
                                  std::uint32_t pattern) const {
        return (words_[signal * blocks_ + pattern / 64] >>
                (pattern % 64)) &
               1ULL;
    }

    /// Convenience: screen bit of a fault site (either direction).
    [[nodiscard]] bool may_activate(const Netlist& netlist,
                                    const FaultSite& site,
                                    std::uint32_t pattern) const;

    /// 64-pattern block of screen bits for `signal` (bit k = pattern
    /// block * 64 + k).
    [[nodiscard]] std::uint64_t block(GateId signal,
                                      std::size_t block_index) const {
        return words_[signal * blocks_ + block_index];
    }

    [[nodiscard]] std::size_t num_blocks() const { return blocks_; }

private:
    std::size_t blocks_ = 0;
    std::vector<std::uint64_t> words_;  ///< [signal * blocks_ + block]
};

class DetectionAnalyzer {
public:
    /// `monitored` flags each observation point carrying a monitor (may
    /// be empty: no monitors).
    DetectionAnalyzer(const WaveSim& wave_sim,
                      std::span<const PatternPair> patterns,
                      const std::vector<bool>& monitored,
                      DetectionAnalysisConfig config);

    /// Pass A over `faults` (screened, cached, and parallelized on the
    /// persistent pool internally).
    [[nodiscard]] std::vector<FaultRanges> analyze(
        std::span<const DelayFault> faults) const;

    /// Pass B: for each fault (with its active pattern list from pass A),
    /// tests detection at each observation time in `periods` under each
    /// monitor configuration delay in `config_delays` (index 0 is the
    /// monitor-off configuration with delay 0).
    [[nodiscard]] std::vector<DetectionEntry> detection_table(
        std::span<const DelayFault> faults,
        std::span<const FaultRanges> ranges,
        std::span<const Time> periods,
        std::span<const Time> config_delays) const;

    [[nodiscard]] const WaveSim& wave_sim() const { return *wave_sim_; }

    /// Work/timing counters accumulated over every analyze() and
    /// detection_table() call on this analyzer.
    [[nodiscard]] DetectionCounters counters() const;

    /// True when any pass on this analyzer stopped early on a
    /// cancellation request; the returned ranges/entries then cover the
    /// (fault, pattern) pairs processed before the stop.  Kept off
    /// DetectionCounters so the bench cache format stays stable.
    [[nodiscard]] bool interrupted() const {
        return interrupted_.load(std::memory_order_relaxed);
    }

private:
    /// FF/SR interval pair for one fault under one pattern.
    struct PairRanges {
        IntervalSet ff;
        IntervalSet sr;
    };
    [[nodiscard]] PairRanges ranges_for_pattern(
        const FaultSim& fsim, const DelayFault& fault,
        std::span<const Waveform> good, FaultSimScratch& scratch) const;

    /// nullptr = run serial (num_threads == 1).
    [[nodiscard]] ThreadPool* pool() const;

    struct Atomics {
        std::atomic<std::uint64_t> pairs_total{0};
        std::atomic<std::uint64_t> pairs_screened_out{0};
        std::atomic<std::uint64_t> pairs_inactive{0};
        std::atomic<std::uint64_t> pairs_simulated{0};
        std::atomic<std::uint64_t> pairs_detected{0};
        std::atomic<std::uint64_t> gates_reevaluated{0};
        std::atomic<std::uint64_t> good_wave_sims{0};
        std::atomic<std::uint64_t> screen_ns{0};
        std::atomic<std::uint64_t> good_wave_ns{0};
        std::atomic<std::uint64_t> fault_sim_ns{0};
        std::atomic<std::uint64_t> analyze_ns{0};
        std::atomic<std::uint64_t> table_ns{0};
    };

    const WaveSim* wave_sim_;
    std::span<const PatternPair> patterns_;
    std::vector<bool> monitored_;
    DetectionAnalysisConfig config_;
    ConeCache cones_;
    std::unique_ptr<ThreadPool> owned_pool_;  ///< only when num_threads >= 2
    mutable Atomics stats_;
    mutable std::atomic<bool> interrupted_{false};
};

}  // namespace fastmon
