// Structural (pre-simulation) fault classification — step (1) of the
// paper's test flow (Fig. 4).
//
// Using STA timing, faults are sorted into:
//  * AtSpeedDetectable — the minimum slack at the site is smaller than
//    the fault size, so an ordinary at-speed test catches them; they are
//    removed from the FAST fault list.
//  * TimingRedundant — even through the longest path and with the
//    maximum monitor delay added, the fault effect cannot reach the
//    observable window [t_min, t_nom]; undetectable, removed.
//  * Candidate — needs timing-accurate fault simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "timing/sta.hpp"

namespace fastmon {

enum class StructuralClass : std::uint8_t {
    AtSpeedDetectable,
    TimingRedundant,
    Candidate,
};

struct StructuralClassification {
    std::vector<StructuralClass> klass;  ///< per FaultId
    std::size_t num_at_speed = 0;
    std::size_t num_redundant = 0;
    std::size_t num_candidates = 0;

    [[nodiscard]] std::vector<FaultId> candidates() const;
};

struct StructuralClassifyConfig {
    double fmax_factor = 3.0;       ///< f_max = factor * f_nom
    Time max_monitor_delay = 0.0;   ///< largest configurable monitor delay
    /// Per observe-point index: carries a monitor (empty = no monitors).
    std::vector<bool> monitored_observe;
};

StructuralClassification classify_structural(
    const Netlist& netlist, const DelayAnnotation& delays,
    const StaResult& sta, const FaultUniverse& universe,
    const StructuralClassifyConfig& config);

/// Longest path through the fault site (launch to capture), the quantity
/// whose slack against the clock decides at-speed detectability.
Time path_through_site(const Netlist& netlist, const DelayAnnotation& delays,
                       const StaResult& sta, const FaultSite& site);

}  // namespace fastmon
