#include "fault/fault_report.hpp"

#include <ostream>
#include <unordered_map>

namespace fastmon {

std::string_view to_string(StructuralClass klass) {
    switch (klass) {
        case StructuralClass::AtSpeedDetectable: return "at-speed";
        case StructuralClass::TimingRedundant: return "redundant";
        case StructuralClass::Candidate: return "candidate";
    }
    return "?";
}

void write_fault_report_csv(std::ostream& os, const Netlist& netlist,
                            const FaultUniverse& universe,
                            const StructuralClassification& classification,
                            std::span<const FaultId> simulated,
                            std::span<const FaultRanges> ranges) {
    os << "fault,site,direction,delta_ps,class,ff_lo,ff_hi,sr_lo,sr_hi,"
          "active_patterns\n";
    std::unordered_map<FaultId, std::size_t> position;
    for (std::size_t i = 0; i < simulated.size(); ++i) {
        position.emplace(simulated[i], i);
    }
    for (FaultId id = 0; id < universe.size(); ++id) {
        const DelayFault& f = universe.fault(id);
        os << id << ',' << universe.fault_name(netlist, id) << ','
           << (f.slow_rising ? "STR" : "STF") << ',' << f.delta << ','
           << to_string(classification.klass[id]) << ',';
        auto it = position.find(id);
        if (it != position.end()) {
            const FaultRanges& r = ranges[it->second];
            if (r.ff.empty()) {
                os << ",,";
            } else {
                os << r.ff.min() << ',' << r.ff.max() << ',';
            }
            if (r.sr.empty()) {
                os << ",,";
            } else {
                os << r.sr.min() << ',' << r.sr.max() << ',';
            }
            os << r.active_patterns.size();
        } else {
            os << ",,,,0";
        }
        os << '\n';
    }
}

}  // namespace fastmon
