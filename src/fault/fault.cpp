#include "fault/fault.hpp"

#include <algorithm>

#include "util/prng.hpp"

namespace fastmon {

FaultUniverse FaultUniverse::generate(const Netlist& netlist,
                                      const DelayAnnotation& delays,
                                      double delta_factor) {
    FaultUniverse u;
    for (GateId id = 0; id < netlist.size(); ++id) {
        const Gate& g = netlist.gate(id);
        if (!is_combinational(g.type)) continue;
        const Time delta = delta_factor * delays.nominal_gate_delay(id);
        if (delta <= 0.0) continue;
        for (bool rising : {true, false}) {
            u.faults_.push_back(DelayFault{
                FaultSite{id, FaultSite::kOutputPin}, rising, delta});
            for (std::uint32_t pin = 0;
                 pin < static_cast<std::uint32_t>(g.fanin.size()); ++pin) {
                u.faults_.push_back(
                    DelayFault{FaultSite{id, pin}, rising, delta});
            }
        }
    }
    return u;
}

std::string FaultUniverse::fault_name(const Netlist& netlist,
                                      FaultId id) const {
    const DelayFault& f = faults_[id];
    std::string name = netlist.gate(f.site.gate).name;
    if (f.site.pin == FaultSite::kOutputPin) {
        name += "/out";
    } else {
        name += "/in" + std::to_string(f.site.pin);
    }
    name += f.slow_rising ? ":STR" : ":STF";
    return name;
}

std::vector<FaultId> FaultUniverse::sample(std::size_t max_count,
                                           std::uint64_t seed) const {
    std::vector<FaultId> ids(faults_.size());
    for (FaultId i = 0; i < ids.size(); ++i) ids[i] = i;
    if (ids.size() <= max_count) return ids;
    // Deterministic partial Fisher-Yates.
    Prng rng(seed ^ 0x5A11F00DULL);
    for (std::size_t i = 0; i < max_count; ++i) {
        const std::size_t j = i + rng.next_below(ids.size() - i);
        std::swap(ids[i], ids[j]);
    }
    ids.resize(max_count);
    std::sort(ids.begin(), ids.end());
    return ids;
}

}  // namespace fastmon
