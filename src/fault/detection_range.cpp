#include "fault/detection_range.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>

#include "sim/logic_sim.hpp"
#include "util/cancel.hpp"
#include "util/fault_inject.hpp"
#include "util/trace.hpp"

namespace fastmon {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
}

/// Pattern-boundary cancellation poll shared by both passes.  The
/// `cancel.fault_sim_mid` injection point converts into an organic
/// cancellation request so the exact same degradation path is tested.
bool cancel_requested() {
    if (FaultInjector::global().trip("cancel.fault_sim_mid")) {
        CancelToken::global().cancel(CancelCause::Test);
    }
    return CancelToken::global().cancelled();
}

/// Freelist of per-worker fault-simulation scratches for one pass; the
/// scratches stay alive until the pass ends so their work counters can
/// be harvested.
class ScratchPool {
public:
    FaultSimScratch* acquire() {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!free_.empty()) {
            FaultSimScratch* s = free_.back();
            free_.pop_back();
            return s;
        }
        all_.push_back(std::make_unique<FaultSimScratch>());
        return all_.back().get();
    }

    void release(FaultSimScratch* s) {
        const std::lock_guard<std::mutex> lock(mutex_);
        free_.push_back(s);
    }

    [[nodiscard]] std::uint64_t gates_evaluated() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        std::uint64_t total = 0;
        for (const auto& s : all_) total += s->gates_evaluated();
        return total;
    }

private:
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<FaultSimScratch>> all_;
    std::vector<FaultSimScratch*> free_;
};

}  // namespace

DetectionCounters& DetectionCounters::operator+=(
    const DetectionCounters& other) {
    pairs_total += other.pairs_total;
    pairs_screened_out += other.pairs_screened_out;
    pairs_inactive += other.pairs_inactive;
    pairs_simulated += other.pairs_simulated;
    pairs_detected += other.pairs_detected;
    gates_reevaluated += other.gates_reevaluated;
    good_wave_sims += other.good_wave_sims;
    cones_cached += other.cones_cached;
    screen_seconds += other.screen_seconds;
    good_wave_seconds += other.good_wave_seconds;
    fault_sim_seconds += other.fault_sim_seconds;
    analyze_seconds += other.analyze_seconds;
    table_seconds += other.table_seconds;
    return *this;
}

Json DetectionCounters::to_json() const {
    Json j = Json::object();
    j.set("pairs_total", pairs_total);
    j.set("pairs_screened_out", pairs_screened_out);
    j.set("pairs_inactive", pairs_inactive);
    j.set("pairs_simulated", pairs_simulated);
    j.set("pairs_detected", pairs_detected);
    j.set("gates_reevaluated", gates_reevaluated);
    j.set("good_wave_sims", good_wave_sims);
    j.set("cones_cached", cones_cached);
    j.set("screen_seconds", screen_seconds);
    j.set("good_wave_seconds", good_wave_seconds);
    j.set("fault_sim_seconds", fault_sim_seconds);
    j.set("analyze_seconds", analyze_seconds);
    j.set("table_seconds", table_seconds);
    return j;
}

ActivationScreen::ActivationScreen(const Netlist& netlist,
                                   std::span<const PatternPair> patterns) {
    blocks_ = (patterns.size() + 63) / 64;
    words_.assign(netlist.size() * blocks_, 0);
    if (blocks_ == 0) return;
    const LogicSim lsim(netlist);
    const std::size_t n_src = netlist.comb_sources().size();
    std::vector<std::uint64_t> can0(n_src);
    std::vector<std::uint64_t> can1(n_src);
    for (std::size_t b = 0; b < blocks_; ++b) {
        std::fill(can0.begin(), can0.end(), 0);
        std::fill(can1.begin(), can1.end(), 0);
        const std::size_t base = b * 64;
        const std::size_t lanes =
            std::min<std::size_t>(64, patterns.size() - base);
        for (std::size_t k = 0; k < lanes; ++k) {
            const PatternPair& p = patterns[base + k];
            const std::uint64_t bit = 1ULL << k;
            for (std::size_t s = 0; s < n_src; ++s) {
                const bool x1 = p.v1[s] != 0;
                const bool x2 = p.v2[s] != 0;
                if (x1 != x2) {  // toggling source: X (attains both)
                    can0[s] |= bit;
                    can1[s] |= bit;
                } else if (x1) {
                    can1[s] |= bit;
                } else {
                    can0[s] |= bit;
                }
            }
        }
        const LogicSim::TernaryValues tv = lsim.eval64_ternary(can0, can1);
        for (GateId g = 0; g < netlist.size(); ++g) {
            words_[g * blocks_ + b] = tv.can0[g] & tv.can1[g];
        }
    }
}

bool ActivationScreen::may_activate(const Netlist& netlist,
                                    const FaultSite& site,
                                    std::uint32_t pattern) const {
    return may_toggle(fault_site_signal(netlist, site), pattern);
}

DetectionAnalyzer::DetectionAnalyzer(const WaveSim& wave_sim,
                                     std::span<const PatternPair> patterns,
                                     const std::vector<bool>& monitored,
                                     DetectionAnalysisConfig config)
    : wave_sim_(&wave_sim),
      patterns_(patterns),
      monitored_(monitored),
      config_(config),
      cones_(wave_sim.netlist()) {
    if (monitored_.empty()) {
        monitored_.assign(wave_sim.netlist().observe_points().size(), false);
    }
    assert(monitored_.size() == wave_sim.netlist().observe_points().size());
    if (config_.num_threads >= 2) {
        // The calling thread is one lane (it helps while waiting), so a
        // dedicated pool only needs num_threads - 1 workers.
        owned_pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
    }
}

ThreadPool* DetectionAnalyzer::pool() const {
    if (config_.num_threads == 1) return nullptr;
    if (owned_pool_) return owned_pool_.get();
    return &ThreadPool::shared();
}

DetectionAnalyzer::PairRanges DetectionAnalyzer::ranges_for_pattern(
    const FaultSim& fsim, const DelayFault& fault,
    std::span<const Waveform> good, FaultSimScratch& scratch) const {
    PairRanges out;
    for (const ObserveDiff& od : fsim.simulate(fault, good, scratch)) {
        IntervalSet ivals = od.diff.ones(config_.horizon);
        ivals.filter_glitches(config_.glitch_threshold);
        if (ivals.empty()) continue;
        out.ff.unite(ivals);
        if (monitored_[od.observe_index]) out.sr.unite(ivals);
    }
    return out;
}

std::vector<FaultRanges> DetectionAnalyzer::analyze(
    std::span<const DelayFault> faults) const {
    const TraceSpan span("analyze", "detect");
    const auto t_total = Clock::now();
    std::vector<FaultRanges> result(faults.size());
    stats_.pairs_total += faults.size() * patterns_.size();
    if (faults.empty() || patterns_.empty()) {
        stats_.analyze_ns += ns_since(t_total);
        return result;
    }
    const Netlist& nl = wave_sim_->netlist();

    // Bit-parallel pre-screen: pack the patterns 64-wide, then keep
    // only (fault, pattern) pairs whose site signal may toggle; skip
    // patterns with no surviving pair entirely (their fault-free
    // waveforms are never needed).
    const auto t_screen = Clock::now();
    TraceSpan screen_span("activation_screen", "detect");
    const ActivationScreen screen(nl, patterns_);
    std::vector<GateId> site_signal(faults.size());
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        site_signal[fi] = fault_site_signal(nl, faults[fi].site);
    }
    std::vector<GateId> distinct_signals = site_signal;
    std::sort(distinct_signals.begin(), distinct_signals.end());
    distinct_signals.erase(
        std::unique(distinct_signals.begin(), distinct_signals.end()),
        distinct_signals.end());
    std::vector<std::uint32_t> active_pats;
    for (std::uint32_t pi = 0; pi < patterns_.size(); ++pi) {
        for (GateId sig : distinct_signals) {
            if (screen.may_toggle(sig, pi)) {
                active_pats.push_back(pi);
                break;
            }
        }
    }
    stats_.pairs_screened_out +=
        (patterns_.size() - active_pats.size()) * faults.size();
    stats_.screen_ns += ns_since(t_screen);
    screen_span.end();

    ScratchPool scratches;

    // One (pattern, fault chunk) work item; patterns are processed in
    // ascending order with a barrier in between, so the per-fault
    // accumulation order is identical to a sequential engine.
    auto run_chunk = [&](std::uint32_t pi, std::span<const Waveform> good,
                         std::size_t begin, std::size_t end) {
        const TraceSpan chunk_span("fault_sim_chunk", "detect");
        const auto t0 = Clock::now();
        FaultSimScratch* scratch = scratches.acquire();
        const FaultSim fsim(*wave_sim_, &cones_);
        std::uint64_t screened = 0;
        std::uint64_t inactive = 0;
        std::uint64_t simulated = 0;
        std::uint64_t detected = 0;
        for (std::size_t fi = begin; fi < end; ++fi) {
            if (CancelToken::global().cancelled()) {
                // Faults not reached keep empty ranges; the analyzer
                // reports interrupted() so callers scale accordingly.
                interrupted_.store(true, std::memory_order_relaxed);
                break;
            }
            if (!screen.may_toggle(site_signal[fi], pi)) {
                ++screened;
                continue;
            }
            if (!fsim.activated(faults[fi], good)) {
                ++inactive;
                continue;
            }
            ++simulated;
            PairRanges pr =
                ranges_for_pattern(fsim, faults[fi], good, *scratch);
            if (pr.ff.empty() && pr.sr.empty()) continue;
            ++detected;
            result[fi].ff.unite(pr.ff);
            result[fi].sr.unite(pr.sr);
            result[fi].active_patterns.push_back(pi);
        }
        scratches.release(scratch);
        stats_.pairs_screened_out += screened;
        stats_.pairs_inactive += inactive;
        stats_.pairs_simulated += simulated;
        stats_.pairs_detected += detected;
        stats_.fault_sim_ns += ns_since(t0);
    };

    ThreadPool* tp = pool();
    if (tp == nullptr) {
        for (std::uint32_t pi : active_pats) {
            if (cancel_requested()) {
                interrupted_.store(true, std::memory_order_relaxed);
                break;
            }
            const auto t0 = Clock::now();
            const PatternPair& p = patterns_[pi];
            const std::vector<Waveform> good =
                wave_sim_->simulate(p.v1, p.v2);
            ++stats_.good_wave_sims;
            stats_.good_wave_ns += ns_since(t0);
            run_chunk(pi, good, 0, faults.size());
        }
    } else {
        // Pipelined producer: fault-free waveforms of upcoming patterns
        // are simulated on the pool while the current pattern's fault
        // chunks run, so workers never idle between patterns.
        const std::size_t lanes = tp->size() + 1;
        const std::size_t lookahead =
            std::min(active_pats.size(), lanes + 2);
        std::vector<std::vector<Waveform>> slots(active_pats.size());
        std::vector<std::unique_ptr<ThreadPool::TaskGroup>> producers(
            active_pats.size());
        std::size_t next_submit = 0;
        auto submit_until = [&](std::size_t limit) {
            for (; next_submit < limit; ++next_submit) {
                const std::size_t idx = next_submit;
                producers[idx] =
                    std::make_unique<ThreadPool::TaskGroup>(*tp);
                producers[idx]->run([this, idx, &slots, &active_pats] {
                    const TraceSpan wave_span("good_wave", "detect");
                    const auto t0 = Clock::now();
                    const PatternPair& p = patterns_[active_pats[idx]];
                    slots[idx] = wave_sim_->simulate(p.v1, p.v2);
                    ++stats_.good_wave_sims;
                    stats_.good_wave_ns += ns_since(t0);
                });
            }
        };
        for (std::size_t idx = 0; idx < active_pats.size(); ++idx) {
            if (cancel_requested()) {
                // Already-submitted producer groups drain through their
                // destructors; no slot is consumed after this point.
                interrupted_.store(true, std::memory_order_relaxed);
                break;
            }
            submit_until(std::min(active_pats.size(), idx + lookahead));
            producers[idx]->wait();
            const std::vector<Waveform>& good = slots[idx];
            const std::uint32_t pi = active_pats[idx];
            ThreadPool::TaskGroup group(*tp);
            const std::size_t chunk_count =
                std::min(faults.size(), lanes * 4);
            const std::size_t chunk =
                (faults.size() + chunk_count - 1) / chunk_count;
            for (std::size_t b = 0; b < faults.size(); b += chunk) {
                const std::size_t e = std::min(faults.size(), b + chunk);
                group.run([&run_chunk, pi, &good, b, e] {
                    run_chunk(pi, good, b, e);
                });
            }
            group.wait();
            slots[idx] = {};
            producers[idx].reset();
        }
    }
    stats_.gates_reevaluated += scratches.gates_evaluated();
    stats_.analyze_ns += ns_since(t_total);
    return result;
}

std::vector<DetectionEntry> DetectionAnalyzer::detection_table(
    std::span<const DelayFault> faults, std::span<const FaultRanges> ranges,
    std::span<const Time> periods, std::span<const Time> config_delays) const {
    const TraceSpan span("detection_table", "detect");
    const auto t_total = Clock::now();
    assert(ranges.size() == faults.size());

    // Invert: pattern -> fault indices with that pattern active.
    std::vector<std::vector<std::uint32_t>> by_pattern(patterns_.size());
    for (std::uint32_t fi = 0; fi < ranges.size(); ++fi) {
        for (std::uint32_t pi : ranges[fi].active_patterns) {
            by_pattern[pi].push_back(fi);
        }
    }
    std::vector<std::uint32_t> active_pats;
    for (std::uint32_t pi = 0; pi < patterns_.size(); ++pi) {
        if (!by_pattern[pi].empty()) active_pats.push_back(pi);
    }

    std::vector<DetectionEntry> entries;
    std::mutex entries_mutex;
    ScratchPool scratches;

    auto run_chunk = [&](std::uint32_t pi, std::span<const Waveform> good,
                         std::size_t begin, std::size_t end) {
        const TraceSpan chunk_span("table_chunk", "detect");
        FaultSimScratch* scratch = scratches.acquire();
        const FaultSim fsim(*wave_sim_, &cones_);
        const auto& flist = by_pattern[pi];
        std::vector<DetectionEntry> local;
        for (std::size_t k = begin; k < end; ++k) {
            if (CancelToken::global().cancelled()) {
                interrupted_.store(true, std::memory_order_relaxed);
                break;
            }
            const std::uint32_t fi = flist[k];
            const PairRanges pr =
                ranges_for_pattern(fsim, faults[fi], good, *scratch);
            for (std::uint16_t ti = 0; ti < periods.size(); ++ti) {
                const Time t = periods[ti];
                for (std::uint16_t ci = 0; ci < config_delays.size(); ++ci) {
                    const Time shifted = t - config_delays[ci];
                    const bool det =
                        (ci == 0 && pr.ff.contains(t)) ||
                        (ci != 0 && (pr.ff.contains(t) ||
                                     pr.sr.contains(shifted)));
                    if (det) {
                        local.push_back(DetectionEntry{fi, pi, ci, ti});
                    }
                }
            }
        }
        scratches.release(scratch);
        stats_.pairs_simulated += end - begin;
        const std::lock_guard<std::mutex> lock(entries_mutex);
        entries.insert(entries.end(), local.begin(), local.end());
    };

    ThreadPool* tp = pool();
    if (tp == nullptr) {
        for (std::uint32_t pi : active_pats) {
            if (cancel_requested()) {
                interrupted_.store(true, std::memory_order_relaxed);
                break;
            }
            const auto t0 = Clock::now();
            const PatternPair& p = patterns_[pi];
            const std::vector<Waveform> good =
                wave_sim_->simulate(p.v1, p.v2);
            ++stats_.good_wave_sims;
            stats_.good_wave_ns += ns_since(t0);
            run_chunk(pi, good, 0, by_pattern[pi].size());
        }
    } else {
        const std::size_t lanes = tp->size() + 1;
        const std::size_t lookahead =
            std::min(active_pats.size(), lanes + 2);
        std::vector<std::vector<Waveform>> slots(active_pats.size());
        std::vector<std::unique_ptr<ThreadPool::TaskGroup>> producers(
            active_pats.size());
        std::size_t next_submit = 0;
        auto submit_until = [&](std::size_t limit) {
            for (; next_submit < limit; ++next_submit) {
                const std::size_t idx = next_submit;
                producers[idx] =
                    std::make_unique<ThreadPool::TaskGroup>(*tp);
                producers[idx]->run([this, idx, &slots, &active_pats] {
                    const TraceSpan wave_span("good_wave", "detect");
                    const auto t0 = Clock::now();
                    const PatternPair& p = patterns_[active_pats[idx]];
                    slots[idx] = wave_sim_->simulate(p.v1, p.v2);
                    ++stats_.good_wave_sims;
                    stats_.good_wave_ns += ns_since(t0);
                });
            }
        };
        for (std::size_t idx = 0; idx < active_pats.size(); ++idx) {
            if (cancel_requested()) {
                interrupted_.store(true, std::memory_order_relaxed);
                break;
            }
            submit_until(std::min(active_pats.size(), idx + lookahead));
            producers[idx]->wait();
            const std::vector<Waveform>& good = slots[idx];
            const std::uint32_t pi = active_pats[idx];
            const std::size_t total = by_pattern[pi].size();
            ThreadPool::TaskGroup group(*tp);
            const std::size_t chunk_count = std::min(total, lanes * 4);
            const std::size_t chunk =
                (total + chunk_count - 1) / chunk_count;
            for (std::size_t b = 0; b < total; b += chunk) {
                const std::size_t e = std::min(total, b + chunk);
                group.run([&run_chunk, pi, &good, b, e] {
                    run_chunk(pi, good, b, e);
                });
            }
            group.wait();
            slots[idx] = {};
            producers[idx].reset();
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const DetectionEntry& a, const DetectionEntry& b) {
                  if (a.fault_index != b.fault_index)
                      return a.fault_index < b.fault_index;
                  if (a.period != b.period) return a.period < b.period;
                  if (a.pattern != b.pattern) return a.pattern < b.pattern;
                  return a.config < b.config;
              });
    stats_.gates_reevaluated += scratches.gates_evaluated();
    stats_.table_ns += ns_since(t_total);
    return entries;
}

DetectionCounters DetectionAnalyzer::counters() const {
    DetectionCounters c;
    c.pairs_total = stats_.pairs_total.load();
    c.pairs_screened_out = stats_.pairs_screened_out.load();
    c.pairs_inactive = stats_.pairs_inactive.load();
    c.pairs_simulated = stats_.pairs_simulated.load();
    c.pairs_detected = stats_.pairs_detected.load();
    c.gates_reevaluated = stats_.gates_reevaluated.load();
    c.good_wave_sims = stats_.good_wave_sims.load();
    c.cones_cached = cones_.materialized();
    c.screen_seconds = static_cast<double>(stats_.screen_ns.load()) * 1e-9;
    c.good_wave_seconds =
        static_cast<double>(stats_.good_wave_ns.load()) * 1e-9;
    c.fault_sim_seconds =
        static_cast<double>(stats_.fault_sim_ns.load()) * 1e-9;
    c.analyze_seconds = static_cast<double>(stats_.analyze_ns.load()) * 1e-9;
    c.table_seconds = static_cast<double>(stats_.table_ns.load()) * 1e-9;
    return c;
}

}  // namespace fastmon
