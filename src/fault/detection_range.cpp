#include "fault/detection_range.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <thread>

namespace fastmon {

namespace {

std::size_t worker_count(std::size_t work_items) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    return std::max<std::size_t>(1, std::min({hw, work_items, std::size_t{16}}));
}

/// Runs fn(begin, end) on `workers` threads over [0, total).
template <typename Fn>
void parallel_chunks(std::size_t total, Fn&& fn) {
    const std::size_t workers = worker_count(total);
    if (workers <= 1) {
        fn(std::size_t{0}, total);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(workers);
    const std::size_t chunk = (total + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t begin = w * chunk;
        const std::size_t end = std::min(total, begin + chunk);
        if (begin >= end) break;
        threads.emplace_back([&fn, begin, end] { fn(begin, end); });
    }
    for (std::thread& t : threads) t.join();
}

}  // namespace

DetectionAnalyzer::DetectionAnalyzer(const WaveSim& wave_sim,
                                     std::span<const PatternPair> patterns,
                                     const std::vector<bool>& monitored,
                                     DetectionAnalysisConfig config)
    : wave_sim_(&wave_sim),
      patterns_(patterns),
      monitored_(monitored),
      config_(config) {
    if (monitored_.empty()) {
        monitored_.assign(wave_sim.netlist().observe_points().size(), false);
    }
    assert(monitored_.size() == wave_sim.netlist().observe_points().size());
}

DetectionAnalyzer::PairRanges DetectionAnalyzer::ranges_for_pattern(
    const DelayFault& fault, std::span<const Waveform> good) const {
    PairRanges out;
    const FaultSim fsim(*wave_sim_);
    for (const ObserveDiff& od : fsim.simulate(fault, good)) {
        IntervalSet ivals = od.diff.ones(config_.horizon);
        ivals.filter_glitches(config_.glitch_threshold);
        if (ivals.empty()) continue;
        out.ff.unite(ivals);
        if (monitored_[od.observe_index]) out.sr.unite(ivals);
    }
    return out;
}

std::vector<FaultRanges> DetectionAnalyzer::analyze(
    std::span<const DelayFault> faults) const {
    std::vector<FaultRanges> result(faults.size());
    const FaultSim fsim(*wave_sim_);

    for (std::uint32_t pi = 0; pi < patterns_.size(); ++pi) {
        const PatternPair& p = patterns_[pi];
        const std::vector<Waveform> good = wave_sim_->simulate(p.v1, p.v2);
        parallel_chunks(faults.size(), [&](std::size_t begin, std::size_t end) {
            for (std::size_t fi = begin; fi < end; ++fi) {
                if (!fsim.activated(faults[fi], good)) continue;
                PairRanges pr = ranges_for_pattern(faults[fi], good);
                if (pr.ff.empty() && pr.sr.empty()) continue;
                result[fi].ff.unite(pr.ff);
                result[fi].sr.unite(pr.sr);
                result[fi].active_patterns.push_back(pi);
            }
        });
    }
    return result;
}

std::vector<DetectionEntry> DetectionAnalyzer::detection_table(
    std::span<const DelayFault> faults, std::span<const FaultRanges> ranges,
    std::span<const Time> periods, std::span<const Time> config_delays) const {
    assert(ranges.size() == faults.size());

    // Invert: pattern -> fault indices with that pattern active.
    std::vector<std::vector<std::uint32_t>> by_pattern(patterns_.size());
    for (std::uint32_t fi = 0; fi < ranges.size(); ++fi) {
        for (std::uint32_t pi : ranges[fi].active_patterns) {
            by_pattern[pi].push_back(fi);
        }
    }

    std::vector<DetectionEntry> entries;
    std::mutex entries_mutex;

    for (std::uint32_t pi = 0; pi < patterns_.size(); ++pi) {
        if (by_pattern[pi].empty()) continue;
        const PatternPair& p = patterns_[pi];
        const std::vector<Waveform> good = wave_sim_->simulate(p.v1, p.v2);
        const auto& flist = by_pattern[pi];
        parallel_chunks(flist.size(), [&](std::size_t begin, std::size_t end) {
            std::vector<DetectionEntry> local;
            for (std::size_t k = begin; k < end; ++k) {
                const std::uint32_t fi = flist[k];
                const PairRanges pr = ranges_for_pattern(faults[fi], good);
                for (std::uint16_t ti = 0; ti < periods.size(); ++ti) {
                    const Time t = periods[ti];
                    for (std::uint16_t ci = 0; ci < config_delays.size(); ++ci) {
                        const Time shifted = t - config_delays[ci];
                        const bool det =
                            (ci == 0 && pr.ff.contains(t)) ||
                            (ci != 0 && (pr.ff.contains(t) ||
                                         pr.sr.contains(shifted)));
                        if (det) {
                            local.push_back(DetectionEntry{fi, pi, ci, ti});
                        }
                    }
                }
            }
            const std::lock_guard<std::mutex> lock(entries_mutex);
            entries.insert(entries.end(), local.begin(), local.end());
        });
    }
    std::sort(entries.begin(), entries.end(),
              [](const DetectionEntry& a, const DetectionEntry& b) {
                  if (a.fault_index != b.fault_index)
                      return a.fault_index < b.fault_index;
                  if (a.period != b.period) return a.period < b.period;
                  if (a.pattern != b.pattern) return a.pattern < b.pattern;
                  return a.config < b.config;
              });
    return entries;
}

}  // namespace fastmon
