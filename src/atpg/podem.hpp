// PODEM — path-oriented decision making test generation.
//
// Classic PODEM over the combinational core with five-valued logic
// (0, 1, X, D, D-bar), used by the transition-fault ATPG:
//  * generate_test: finds source values propagating the fault effect of
//    a stuck line to an observation point (the v2 vector of a TDF pair);
//  * justify: finds source values forcing a single line to a value (the
//    v1 vector, which only needs to initialize the fault site).
// Both are bounded by a backtrack limit and report Untestable vs.
// Aborted separately so the ATPG can distinguish redundancy from
// effort exhaustion.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/fault_sim.hpp"
#include "sim/logic_sim.hpp"

namespace fastmon {

enum class PodemStatus : std::uint8_t { Success, Untestable, Aborted };

struct PodemResult {
    PodemStatus status = PodemStatus::Untestable;
    /// Source assignment (indexed like comb_sources); unassigned
    /// sources are filled with `fill` bits by the caller's choice in
    /// Podem::run (X positions are reported in `assigned`).
    std::vector<Bit> vector;
    std::vector<bool> assigned;  ///< which sources PODEM actually set
    std::size_t backtracks = 0;
};

/// Not thread-safe: a Podem instance caches per-source fanout cones
/// across calls (use one instance per thread).
class Podem {
public:
    explicit Podem(const Netlist& netlist, std::size_t backtrack_limit = 250);

    /// Generates a vector detecting "site stuck at `stuck_value`"
    /// (fault effect must reach an observation point).  For input-pin
    /// sites the fault is on the branch into that pin only.
    [[nodiscard]] PodemResult generate_test(const FaultSite& site,
                                            bool stuck_value) const;

    /// Generates a vector that sets the signal at `site` (the driving
    /// line) to `value`, with no propagation requirement.
    [[nodiscard]] PodemResult justify(const FaultSite& site, bool value) const;

private:
    const Netlist* netlist_;
    std::size_t backtrack_limit_;
    /// Per-source fanout cones, filled lazily (index: source position).
    mutable std::vector<std::vector<GateId>> cone_cache_;
};

}  // namespace fastmon
