// 64-way parallel-pattern transition delay fault (TDF) simulation.
//
// Under enhanced-scan application a slow-to-rise (slow-to-fall)
// transition fault at a site is detected by a pattern pair (v1, v2) iff
// v1 sets the site to the initial value, v2 launches the transition,
// and the stale value propagates to an observation point under v2 —
// i.e. the gross-delay abstraction of a delay fault.  The simulator
// packs 64 pattern pairs into machine words and re-simulates only the
// fanout cone per fault, with fault dropping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/fault_sim.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"

namespace fastmon {

/// A transition delay fault used for ATPG coverage.
struct TdfFault {
    FaultSite site;
    bool slow_rising = true;

    friend bool operator==(const TdfFault&, const TdfFault&) = default;
};

/// All transition faults of the circuit (both directions at every pin
/// of every combinational gate).
std::vector<TdfFault> enumerate_tdf_faults(const Netlist& netlist);

class TransitionFaultSim {
public:
    explicit TransitionFaultSim(const Netlist& netlist);

    /// Packs up to 64 pattern pairs (starting at `first`) into words per
    /// source; lanes beyond the pattern count replicate pattern 0.
    struct Batch {
        std::vector<std::uint64_t> src1;
        std::vector<std::uint64_t> src2;
        std::size_t count = 0;
    };
    [[nodiscard]] Batch pack(std::span<const PatternPair> patterns,
                             std::size_t first) const;

    /// Node values for both vectors of a packed batch.
    struct BatchValues {
        std::vector<std::uint64_t> val1;
        std::vector<std::uint64_t> val2;
    };
    [[nodiscard]] BatchValues evaluate(const Batch& batch) const;

    /// Lane mask of patterns in the batch that detect `fault`.
    [[nodiscard]] std::uint64_t detect_mask(const TdfFault& fault,
                                            const BatchValues& values) const;

    [[nodiscard]] const Netlist& netlist() const { return *netlist_; }

private:
    const Netlist* netlist_;
    LogicSim logic_;
};

/// Convenience: fault-simulates `patterns` against `faults` with
/// dropping; returns per-fault index of the first detecting pattern
/// (SIZE_MAX if undetected).
std::vector<std::size_t> fault_simulate_tdf(const Netlist& netlist,
                                            std::span<const TdfFault> faults,
                                            std::span<const PatternPair> patterns);

}  // namespace fastmon
