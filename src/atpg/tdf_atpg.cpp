#include "atpg/tdf_atpg.hpp"

#include <algorithm>

#include "util/cancel.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/prng.hpp"
#include "util/trace.hpp"

namespace fastmon {

namespace {

PatternPair random_pair(std::size_t n_src, Prng& rng) {
    PatternPair p;
    p.v1.resize(n_src);
    p.v2.resize(n_src);
    for (std::size_t s = 0; s < n_src; ++s) {
        p.v1[s] = rng.chance(0.5) ? 1 : 0;
        p.v2[s] = rng.chance(0.5) ? 1 : 0;
    }
    return p;
}

/// Greedy lane cover: choose a minimal-ish subset of the 64 lanes that
/// covers all faults newly detected by this batch.
std::vector<std::size_t> select_lanes(
    const std::vector<std::uint64_t>& masks, std::size_t lane_count) {
    std::vector<std::size_t> chosen;
    std::vector<bool> covered(masks.size(), false);
    std::size_t remaining = masks.size();
    while (remaining > 0) {
        std::size_t best_lane = SIZE_MAX;
        std::size_t best_gain = 0;
        for (std::size_t lane = 0; lane < lane_count; ++lane) {
            std::size_t gain = 0;
            for (std::size_t f = 0; f < masks.size(); ++f) {
                if (!covered[f] && ((masks[f] >> lane) & 1) != 0) ++gain;
            }
            if (gain > best_gain) {
                best_gain = gain;
                best_lane = lane;
            }
        }
        if (best_lane == SIZE_MAX) break;  // leftover faults uncoverable
        chosen.push_back(best_lane);
        for (std::size_t f = 0; f < masks.size(); ++f) {
            if (((masks[f] >> best_lane) & 1) != 0 && !covered[f]) {
                covered[f] = true;
                --remaining;
            }
        }
    }
    return chosen;
}

}  // namespace

AtpgResult generate_tdf_tests(const Netlist& netlist,
                              const AtpgConfig& config) {
    const TraceSpan span("atpg", "atpg");
    std::uint64_t total_backtracks = 0;
    AtpgResult result;
    const std::vector<TdfFault> faults = enumerate_tdf_faults(netlist);
    result.num_faults = faults.size();
    std::vector<bool> detected(faults.size(), false);

    const std::size_t n_src = netlist.comb_sources().size();
    TransitionFaultSim sim(netlist);
    Prng rng(config.seed ^ 0xA7B6ULL);

    // --- Phase 1: random patterns -------------------------------------
    TraceSpan random_span("atpg_random", "atpg");
    std::size_t idle = 0;
    std::size_t random_batches = 0;
    const CancelToken& cancel = CancelToken::global();
    for (std::size_t batch_no = 0;
         batch_no < config.max_random_batches && idle < config.max_idle_batches;
         ++batch_no) {
        if (cancel.cancelled()) {
            result.interrupted = true;
            break;
        }
        ++random_batches;
        std::vector<PatternPair> cand;
        cand.reserve(64);
        for (int i = 0; i < 64; ++i) cand.push_back(random_pair(n_src, rng));
        const auto batch = sim.pack(cand, 0);
        const auto values = sim.evaluate(batch);

        std::vector<std::uint64_t> masks;
        std::vector<std::size_t> mask_fault;
        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            if (detected[fi]) continue;
            const std::uint64_t m = sim.detect_mask(faults[fi], values);
            if (m != 0) {
                masks.push_back(m);
                mask_fault.push_back(fi);
            }
        }
        if (masks.empty()) {
            ++idle;
            continue;
        }
        idle = 0;
        for (std::size_t lane : select_lanes(masks, batch.count)) {
            result.test_set.patterns.push_back(cand[lane]);
            for (std::size_t k = 0; k < masks.size(); ++k) {
                if (((masks[k] >> lane) & 1) != 0) detected[mask_fault[k]] = true;
            }
        }
    }

    random_span.end();

    // --- Phase 2: deterministic engine (PODEM / SAT / auto) -----------
    TraceSpan podem_span("atpg_podem", "atpg");
    if (config.deterministic_phase && !result.interrupted) {
        const std::unique_ptr<AtpgEngine> engine =
            make_atpg_engine(netlist, config);
        std::size_t targeted = 0;
        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            if (cancel.cancelled()) {
                // Patterns found so far still get compacted below; the
                // partial test set is a usable degraded result.
                result.interrupted = true;
                break;
            }
            if (detected[fi]) continue;
            if (config.max_deterministic_faults != 0 &&
                targeted >= config.max_deterministic_faults) {
                break;
            }
            ++targeted;
            AtpgFaultResult target = engine->generate(faults[fi], rng);
            total_backtracks += target.effort;
            if (target.verdict == AtpgVerdict::Untestable) {
                ++result.num_untestable;
                continue;
            }
            if (target.verdict == AtpgVerdict::Aborted) {
                ++result.num_aborted;
                continue;
            }
            PatternPair p = std::move(target.pattern);
            // Confirm and drop any other faults the pattern catches.
            const std::vector<PatternPair> one{p};
            const auto batch = sim.pack(one, 0);
            const auto values = sim.evaluate(batch);
            bool confirms = false;
            for (std::size_t fj = 0; fj < faults.size(); ++fj) {
                if (detected[fj]) continue;
                if ((sim.detect_mask(faults[fj], values) & 1ULL) != 0) {
                    detected[fj] = true;
                    confirms = true;
                }
            }
            if (confirms) result.test_set.patterns.push_back(std::move(p));
        }
    }

    podem_span.end();

    // --- Phase 3: reverse-order compaction -----------------------------
    {
        const TraceSpan compact_span("atpg_compact", "atpg");
        std::vector<PatternPair>& pats = result.test_set.patterns;
        std::reverse(pats.begin(), pats.end());
        const std::vector<std::size_t> first =
            fault_simulate_tdf(netlist, faults, pats);
        std::vector<bool> keep(pats.size(), false);
        for (std::size_t fd : first) {
            if (fd != SIZE_MAX) keep[fd] = true;
        }
        std::vector<PatternPair> compacted;
        for (std::size_t i = 0; i < pats.size(); ++i) {
            if (keep[i]) compacted.push_back(std::move(pats[i]));
        }
        pats = std::move(compacted);
    }

    result.num_detected =
        static_cast<std::size_t>(std::count(detected.begin(), detected.end(), true));

    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("atpg.faults").add(result.num_faults);
    reg.counter("atpg.detected").add(result.num_detected);
    reg.counter("atpg.untestable").add(result.num_untestable);
    reg.counter("atpg.aborted").add(result.num_aborted);
    reg.counter("atpg.backtracks").add(total_backtracks);
    reg.counter("atpg.random_batches").add(random_batches);
    reg.counter("atpg.patterns").add(result.test_set.size());

    log_info() << "ATPG " << netlist.name() << ": " << result.num_detected
               << "/" << result.num_faults << " TDF detected ("
               << result.test_set.size() << " patterns, "
               << result.num_untestable << " untestable, "
               << result.num_aborted << " aborted)";
    return result;
}

}  // namespace fastmon
