// Pattern-set quality metrics.
//
// Tools a test engineer runs on a pattern set before committing tester
// time: per-pattern marginal coverage (the compaction profile), TDF
// N-detect counts (how often each fault is independently detected — a
// proxy for coverage of unmodeled defects), and source-toggle activity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/tfault_sim.hpp"

namespace fastmon {

struct PatternSetMetrics {
    std::size_t num_patterns = 0;
    std::size_t num_faults = 0;
    std::size_t detected = 0;
    /// detected faults / total faults.
    double coverage = 0.0;
    /// Cumulative detected-fault count after each pattern (fault-drop
    /// order) — the classic coverage curve.
    std::vector<std::size_t> cumulative_detected;
    /// Per fault: number of patterns that detect it (capped at
    /// `n_detect_cap`).
    std::vector<std::uint32_t> detect_counts;
    /// Faults with detect count >= n for n = 1..cap.
    std::vector<std::size_t> n_detect_histogram;
    /// Mean fraction of sources toggling between v1 and v2 per pattern.
    double mean_toggle_rate = 0.0;
};

/// Computes all metrics in one fault-simulation sweep.
/// `n_detect_cap` bounds the per-fault counting (default 5: the common
/// N-detect target).
PatternSetMetrics evaluate_pattern_set(const Netlist& netlist,
                                       std::span<const PatternPair> patterns,
                                       std::uint32_t n_detect_cap = 5);

}  // namespace fastmon
