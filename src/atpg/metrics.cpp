#include "atpg/metrics.hpp"

#include <bit>

namespace fastmon {

PatternSetMetrics evaluate_pattern_set(const Netlist& netlist,
                                       std::span<const PatternPair> patterns,
                                       std::uint32_t n_detect_cap) {
    PatternSetMetrics m;
    const std::vector<TdfFault> faults = enumerate_tdf_faults(netlist);
    m.num_patterns = patterns.size();
    m.num_faults = faults.size();
    m.detect_counts.assign(faults.size(), 0);
    m.cumulative_detected.assign(patterns.size(), 0);
    if (patterns.empty()) return m;

    TransitionFaultSim sim(netlist);
    std::vector<std::size_t> first_detect(faults.size(), SIZE_MAX);

    for (std::size_t base = 0; base < patterns.size(); base += 64) {
        const auto batch = sim.pack(patterns, base);
        const auto values = sim.evaluate(batch);
        const std::uint64_t valid =
            batch.count == 64 ? ~0ULL : ((1ULL << batch.count) - 1);
        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            if (m.detect_counts[fi] >= n_detect_cap) continue;
            const std::uint64_t mask =
                sim.detect_mask(faults[fi], values) & valid;
            if (mask == 0) continue;
            m.detect_counts[fi] = std::min<std::uint32_t>(
                n_detect_cap,
                m.detect_counts[fi] +
                    static_cast<std::uint32_t>(std::popcount(mask)));
            if (first_detect[fi] == SIZE_MAX) {
                first_detect[fi] =
                    base + static_cast<std::size_t>(std::countr_zero(mask));
            }
        }
    }

    // Coverage curve from first-detection indices.
    for (std::size_t fd : first_detect) {
        if (fd != SIZE_MAX) {
            ++m.detected;
            ++m.cumulative_detected[fd];
        }
    }
    for (std::size_t p = 1; p < m.cumulative_detected.size(); ++p) {
        m.cumulative_detected[p] += m.cumulative_detected[p - 1];
    }
    m.coverage = m.num_faults == 0
                     ? 1.0
                     : static_cast<double>(m.detected) /
                           static_cast<double>(m.num_faults);

    m.n_detect_histogram.assign(n_detect_cap, 0);
    for (std::uint32_t c : m.detect_counts) {
        for (std::uint32_t n = 1; n <= c && n <= n_detect_cap; ++n) {
            ++m.n_detect_histogram[n - 1];
        }
    }

    double toggles = 0.0;
    for (const PatternPair& p : patterns) {
        std::size_t t = 0;
        for (std::size_t s = 0; s < p.v1.size(); ++s) {
            if (p.v1[s] != p.v2[s]) ++t;
        }
        toggles += p.v1.empty() ? 0.0
                                : static_cast<double>(t) /
                                      static_cast<double>(p.v1.size());
    }
    m.mean_toggle_rate = toggles / static_cast<double>(patterns.size());
    return m;
}

}  // namespace fastmon
