#include "atpg/bist.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace fastmon {

namespace {

/// Maximal-length Galois feedback polynomials (right-shift form).
std::uint64_t taps_for(std::uint32_t width) {
    switch (width) {
        case 16: return 0xB400ULL;      // x^16+x^14+x^13+x^11+1
        case 24: return 0xE10000ULL;    // x^24+x^23+x^22+x^17+1
        case 32: return 0xA3000000ULL;  // maximal (period 2^32-1, verified)
        default:
            throw std::invalid_argument("unsupported LFSR width " +
                                        std::to_string(width));
    }
}

std::uint64_t mask_for(std::uint32_t width) {
    return width == 64 ? ~0ULL : ((1ULL << width) - 1);
}

}  // namespace

Prpg::Prpg(std::uint32_t width, std::uint64_t seed)
    : width_(width), taps_(taps_for(width)), state_(seed & mask_for(width)) {
    if (state_ == 0) state_ = 1;  // avoid the LFSR lock-up state
}

Bit Prpg::next_bit() {
    // Galois step: the output bit conditions the polynomial XOR.
    const Bit out = static_cast<Bit>(state_ & 1);
    state_ >>= 1;
    if (out != 0) state_ ^= taps_;
    return out;
}

PatternPair Prpg::next_pattern(std::size_t num_sources) {
    PatternPair p;
    p.v1.resize(num_sources);
    p.v2.resize(num_sources);
    for (std::size_t s = 0; s < num_sources; ++s) p.v1[s] = next_bit();
    for (std::size_t s = 0; s < num_sources; ++s) p.v2[s] = next_bit();
    return p;
}

std::vector<PatternPair> Prpg::generate(std::size_t num_sources,
                                        std::size_t count) {
    std::vector<PatternPair> out;
    out.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        out.push_back(next_pattern(num_sources));
    }
    return out;
}

Misr::Misr(std::uint32_t width)
    : width_(width), taps_(taps_for(width)), state_(0) {}

void Misr::absorb_word(std::uint64_t response_bits) {
    const std::uint64_t out = state_ & 1;
    state_ >>= 1;
    if (out != 0) state_ ^= taps_;
    state_ ^= response_bits & mask_for(width_);
}

void Misr::absorb(std::span<const Bit> response) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < response.size(); ++i) {
        if (response[i] != 0) word ^= 1ULL << (i % width_);
    }
    absorb_word(word);
}

double Misr::aliasing_probability() const {
    return std::pow(2.0, -static_cast<double>(width_));
}

BistCoverage misr_fault_coverage(const WaveSim& sim,
                                 std::span<const PatternPair> patterns,
                                 std::span<const DelayFault> faults,
                                 Time period, std::uint32_t misr_width) {
    const Netlist& nl = sim.netlist();
    const auto ops = nl.observe_points();
    const FaultSim fsim(sim);

    BistCoverage result;
    result.period = period;

    // Good responses per pattern (sampled at `period`), good signature,
    // and per-fault incremental signatures.
    Misr good(misr_width);
    std::vector<Misr> faulty(faults.size(), Misr(misr_width));
    std::vector<bool> any_diff(faults.size(), false);

    std::vector<Bit> response(ops.size());
    for (const PatternPair& p : patterns) {
        const std::vector<Waveform> waves = sim.simulate(p.v1, p.v2);
        for (std::size_t oi = 0; oi < ops.size(); ++oi) {
            response[oi] =
                static_cast<Bit>(waves[ops[oi].signal].value_at(period));
        }
        good.absorb(response);

        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            std::vector<Bit> fresp = response;
            if (fsim.activated(faults[fi], waves)) {
                for (const ObserveDiff& od : fsim.simulate(faults[fi], waves)) {
                    if (od.diff.value_at(period)) {
                        fresp[od.observe_index] ^= 1;
                        any_diff[fi] = true;
                    }
                }
            }
            faulty[fi].absorb(fresp);
        }
    }

    result.good_signature = good.signature();
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        const bool sig_diff = faulty[fi].signature() != good.signature();
        if (sig_diff) ++result.detected;
        if (any_diff[fi]) {
            ++result.response_diffs;
            if (!sig_diff) ++result.aliased;
        }
    }
    return result;
}

}  // namespace fastmon
