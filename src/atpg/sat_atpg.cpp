#include "atpg/sat_atpg.hpp"

#include <cassert>

#include "util/metrics.hpp"

namespace fastmon {

namespace {

using sat::Lit;
using sat::Solver;
using sat::Var;

/// Literal asserting "variable == value".
Lit lit_is(Var v, bool value) { return Lit(v, !value); }

/// out <-> AND(in...)
void enc_and(Solver& s, Lit out, std::span<const Lit> in) {
    std::vector<Lit> big;
    big.reserve(in.size() + 1);
    for (Lit l : in) {
        s.add_clause({~out, l});
        big.push_back(~l);
    }
    big.push_back(out);
    s.add_clause(std::span<const Lit>(big.data(), big.size()));
}

/// out <-> OR(in...)
void enc_or(Solver& s, Lit out, std::span<const Lit> in) {
    std::vector<Lit> big;
    big.reserve(in.size() + 1);
    for (Lit l : in) {
        s.add_clause({out, ~l});
        big.push_back(l);
    }
    big.push_back(~out);
    s.add_clause(std::span<const Lit>(big.data(), big.size()));
}

/// out <-> a XOR b
void enc_xor2(Solver& s, Lit out, Lit a, Lit b) {
    s.add_clause({~out, a, b});
    s.add_clause({~out, ~a, ~b});
    s.add_clause({out, ~a, b});
    s.add_clause({out, a, ~b});
}

/// out <-> in
void enc_eq(Solver& s, Lit out, Lit in) {
    s.add_clause({~out, in});
    s.add_clause({out, ~in});
}

/// Tseitin encoding of one library cell: out <-> f(in...).  Matches
/// eval_cell() bit for bit (n-ary XOR/XNOR are parity chains).
void encode_cell(Solver& s, CellType type, Lit out, std::span<const Lit> in) {
    switch (type) {
        case CellType::Buf:
            enc_eq(s, out, in[0]);
            return;
        case CellType::Inv:
            enc_eq(s, out, ~in[0]);
            return;
        case CellType::And:
            enc_and(s, out, in);
            return;
        case CellType::Nand:
            enc_and(s, ~out, in);
            return;
        case CellType::Or:
            enc_or(s, out, in);
            return;
        case CellType::Nor:
            enc_or(s, ~out, in);
            return;
        case CellType::Xor:
        case CellType::Xnor: {
            const Lit target = type == CellType::Xor ? out : ~out;
            if (in.size() == 1) {
                enc_eq(s, target, in[0]);
                return;
            }
            Lit acc = in[0];
            for (std::size_t i = 1; i + 1 < in.size(); ++i) {
                const Lit t = sat::mk_lit(s.new_var());
                enc_xor2(s, t, acc, in[i]);
                acc = t;
            }
            enc_xor2(s, target, acc, in.back());
            return;
        }
        case CellType::Mux2:
            // in[0] ? in[2] : in[1]
            s.add_clause({in[0], ~in[1], out});
            s.add_clause({in[0], in[1], ~out});
            s.add_clause({~in[0], ~in[2], out});
            s.add_clause({~in[0], in[2], ~out});
            return;
        case CellType::Aoi21: {
            // !((a & b) | c)
            const Lit t = sat::mk_lit(s.new_var());
            const Lit ab[] = {in[0], in[1]};
            enc_and(s, t, ab);
            const Lit tc[] = {t, in[2]};
            enc_or(s, ~out, tc);
            return;
        }
        case CellType::Oai21: {
            // !((a | b) & c)
            const Lit t = sat::mk_lit(s.new_var());
            const Lit ab[] = {in[0], in[1]};
            enc_or(s, t, ab);
            const Lit tc[] = {t, in[2]};
            enc_and(s, ~out, tc);
            return;
        }
        default:
            assert(false && "encode_cell: not a combinational cell");
    }
}

}  // namespace

SatAtpg::SatAtpg(const Netlist& netlist, const AtpgConfig& config)
    : netlist_(&netlist), config_(config) {
    solver_ = std::make_unique<Solver>();
    encode_frames();
}

SatAtpg::~SatAtpg() = default;

void SatAtpg::encode_frames() {
    const Netlist& nl = *netlist_;
    g1_.resize(nl.size());
    g2_.resize(nl.size());
    for (GateId id = 0; id < nl.size(); ++id) {
        g1_[id] = solver_->new_var();
        g2_[id] = solver_->new_var();
    }
    // Sources (Input, Dff-as-Q) stay free variables; Output pads carry
    // no logic and their variables are never referenced.
    for (GateId id : nl.topo_order()) {
        const Gate& g = nl.gate(id);
        if (!is_combinational(g.type)) continue;
        encode_gate(g, g1_, g1_[id]);
        encode_gate(g, g2_, g2_[id]);
    }
}

void SatAtpg::encode_gate(const Gate& gate, const std::vector<Var>& frame,
                          Var out) {
    std::vector<Lit> in;
    in.reserve(gate.fanin.size());
    for (GateId f : gate.fanin) in.push_back(sat::mk_lit(frame[f]));
    encode_cell(*solver_, gate.type, sat::mk_lit(out),
                std::span<const Lit>(in.data(), in.size()));
}

void SatAtpg::rebuild() {
    solver_ = std::make_unique<Solver>();
    cones_.clear();
    encode_frames();
    sites_since_rebuild_ = 0;
    ++stats_.rebuilds;
}

SatAtpg::SiteCone& SatAtpg::site_cone(const FaultSite& site) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(site.gate) << 32) | site.pin;
    if (auto it = cones_.find(key); it != cones_.end()) return it->second;

    if (config_.sat_restart_period != 0 &&
        sites_since_rebuild_ >= config_.sat_restart_period) {
        rebuild();
    }

    const Netlist& nl = *netlist_;
    const Gate& fg = nl.gate(site.gate);
    Solver& s = *solver_;

    // Faulty value of the site gate's output.  The stale value is the
    // frame-1 value of the site *signal* (the gate output for output
    // faults, the driving fanin for pin faults), so one cone serves
    // both slow-to-rise and slow-to-fall queries.
    std::unordered_map<GateId, Lit> fval;
    if (site.pin == FaultSite::kOutputPin) {
        fval.emplace(site.gate, sat::mk_lit(g1_[site.gate]));
    } else {
        const GateId sig = fg.fanin[site.pin];
        std::vector<Lit> in;
        in.reserve(fg.fanin.size());
        for (std::uint32_t p = 0;
             p < static_cast<std::uint32_t>(fg.fanin.size()); ++p) {
            in.push_back(p == site.pin ? sat::mk_lit(g1_[sig])
                                       : sat::mk_lit(g2_[fg.fanin[p]]));
        }
        const Lit fo = sat::mk_lit(s.new_var());
        encode_cell(s, fg.type, fo, std::span<const Lit>(in.data(), in.size()));
        fval.emplace(site.gate, fo);
    }

    // Faulty copies through the fanout cone (registers and pads
    // terminate propagation).  All clauses are definitions of fresh
    // variables — no selector guard needed; they cannot constrain other
    // faults' queries.
    for (GateId id : nl.fanout_cone(site.gate)) {
        if (id == site.gate) continue;
        const Gate& g = nl.gate(id);
        if (!is_combinational(g.type)) continue;
        std::vector<Lit> in;
        in.reserve(g.fanin.size());
        for (GateId f : g.fanin) {
            auto it = fval.find(f);
            in.push_back(it != fval.end() ? it->second : sat::mk_lit(g2_[f]));
        }
        const Lit fo = sat::mk_lit(s.new_var());
        encode_cell(s, g.type, fo, std::span<const Lit>(in.data(), in.size()));
        fval.emplace(id, fo);
    }

    // Difference indicators at every observe point the cone reaches,
    // plus the selector-guarded propagation demand.
    SiteCone cone;
    cone.sel = sat::mk_lit(s.new_var());
    std::vector<Lit> prop{~cone.sel};
    for (const ObservePoint& op : nl.observe_points()) {
        auto it = fval.find(op.signal);
        if (it == fval.end()) continue;
        const Lit d = sat::mk_lit(s.new_var());
        enc_xor2(s, d, it->second, sat::mk_lit(g2_[op.signal]));
        prop.push_back(d);
    }
    cone.feasible = prop.size() > 1;
    s.add_clause(std::span<const Lit>(prop.data(), prop.size()));

    ++sites_since_rebuild_;
    ++stats_.encoded_sites;
    return cones_.emplace(key, cone).first->second;
}

AtpgFaultResult SatAtpg::generate(const TdfFault& fault, Prng& rng) {
    (void)rng;  // SAT models are total: nothing left to fill
    AtpgFaultResult result;
    ++stats_.targets;

    const SiteCone cone = site_cone(fault.site);  // may rebuild the solver
    const Gate& fg = netlist_->gate(fault.site.gate);
    const GateId sig = fault.site.pin == FaultSite::kOutputPin
                           ? fault.site.gate
                           : fg.fanin[fault.site.pin];
    if (!cone.feasible) {
        // The site reaches no observe point: structurally redundant.
        result.verdict = AtpgVerdict::Untestable;
        ++stats_.untestable;
        return result;
    }

    // Launch-on-capture activation: v1 parks the site at the initial
    // value, v2 launches the transition (STR: 0 -> 1).
    const bool initial = !fault.slow_rising;
    const Lit assumptions[] = {
        cone.sel,
        lit_is(g1_[sig], initial),
        lit_is(g2_[sig], !initial),
    };

    solver_->set_conflict_budget(config_.sat_conflict_budget);
    const std::uint64_t before = solver_->stats().conflicts;
    const sat::SolveStatus status = solver_->solve(assumptions);
    const std::uint64_t spent = solver_->stats().conflicts - before;
    stats_.conflicts += spent;
    result.effort = spent;

    switch (status) {
        case sat::SolveStatus::Sat: {
            result.verdict = AtpgVerdict::Testable;
            ++stats_.testable;
            const auto sources = netlist_->comb_sources();
            result.pattern.v1.resize(sources.size());
            result.pattern.v2.resize(sources.size());
            for (std::size_t i = 0; i < sources.size(); ++i) {
                result.pattern.v1[i] =
                    solver_->model_value(g1_[sources[i]]) ? 1 : 0;
                result.pattern.v2[i] =
                    solver_->model_value(g2_[sources[i]]) ? 1 : 0;
            }
            break;
        }
        case sat::SolveStatus::Unsat:
            result.verdict = AtpgVerdict::Untestable;
            ++stats_.untestable;
            break;
        case sat::SolveStatus::Unknown:
            result.verdict = AtpgVerdict::Aborted;
            ++stats_.aborted;
            break;
    }

    MetricsRegistry::global().counter("atpg.sat.solves").add(1);
    return result;
}

}  // namespace fastmon
