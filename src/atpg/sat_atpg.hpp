// SAT-based transition-fault test generation.
//
// The whole netlist is Tseitin-encoded ONCE into a two-frame CNF over
// the combinational core: frame 1 (the v1 initialization vector) and
// frame 2 (the v2 launch vector) are independent variable sets, which
// is exactly the enhanced-scan substitution the pattern model uses
// (sim/pattern.hpp) — the frames are not connected through the
// flip-flops.
//
// Per fault *site* a faulty copy of the site's fanout cone is encoded
// lazily and kept: the copy reads the stale frame-1 value at the site
// and frame-2 values everywhere else, XOR "difference" variables are
// placed at the observe points the cone reaches, and a single
// selector-guarded clause (~sel | d1 | ... | dk) demands propagation.
// All cone clauses are pure definitions of fresh variables, so they
// never constrain other queries; only the selector literal activates a
// cone.  One cone serves both fault directions.
//
// Each fault then solves under four assumptions — the selector, the
// launch transition at the site (g1 = initial, g2 = !initial) — so the
// solver instance, including every learned clause, is reused across
// the entire fault list.  A periodic rebuild (AtpgConfig::
// sat_restart_period) bounds clause-database growth.
//
// SAT  -> Testable (witness extracted from the model),
// UNSAT -> Untestable (proof under assumptions),
// budget exhausted -> Aborted, mirroring PODEM's backtrack limit.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "atpg/engine.hpp"
#include "sat/solver.hpp"

namespace fastmon {

struct SatAtpgStats {
    std::uint64_t targets = 0;
    std::uint64_t testable = 0;
    std::uint64_t untestable = 0;
    std::uint64_t aborted = 0;
    std::uint64_t encoded_sites = 0;
    std::uint64_t rebuilds = 0;
    std::uint64_t conflicts = 0;  ///< accumulated across rebuilds
};

class SatAtpg final : public AtpgEngine {
public:
    SatAtpg(const Netlist& netlist, const AtpgConfig& config);
    ~SatAtpg() override;

    [[nodiscard]] std::string_view name() const override { return "sat"; }
    [[nodiscard]] AtpgFaultResult generate(const TdfFault& fault,
                                           Prng& rng) override;

    [[nodiscard]] const SatAtpgStats& stats() const { return stats_; }

private:
    struct SiteCone {
        sat::Lit sel;  ///< assuming this literal activates the cone
        bool feasible = true;  ///< false when the cone reaches no observe point
    };

    void rebuild();
    void encode_frames();
    void encode_gate(const Gate& gate, const std::vector<sat::Var>& frame,
                     sat::Var out);
    SiteCone& site_cone(const FaultSite& site);

    const Netlist* netlist_;
    AtpgConfig config_;
    std::unique_ptr<sat::Solver> solver_;
    std::vector<sat::Var> g1_;  ///< frame-1 variable per netlist node
    std::vector<sat::Var> g2_;  ///< frame-2 variable per netlist node
    /// Encoded fault cones, keyed by site gate * (max pins) + pin.
    std::unordered_map<std::uint64_t, SiteCone> cones_;
    std::size_t sites_since_rebuild_ = 0;
    SatAtpgStats stats_;
};

}  // namespace fastmon
