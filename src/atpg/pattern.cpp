#include "atpg/pattern.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/diagnostic.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {

void write_patterns(std::ostream& os, const TestSet& set) {
    for (const PatternPair& p : set.patterns) {
        for (Bit b : p.v1) os << (b != 0 ? '1' : '0');
        os << ' ';
        for (Bit b : p.v2) os << (b != 0 ? '1' : '0');
        os << '\n';
    }
}

std::string write_patterns_string(const TestSet& set) {
    std::ostringstream os;
    write_patterns(os, set);
    return os.str();
}

TestSet read_patterns(std::istream& is, std::size_t num_sources) {
    FaultInjector::global().fire("parser.pattern");
    const auto fail = [](std::size_t line_no, const std::string& msg,
                         const std::string& excerpt) -> void {
        throw Diagnostic("pattern", "", line_no, 0, msg, excerpt);
    };
    TestSet set;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string a;
        std::string b;
        if (!(ls >> a >> b) || a.size() != num_sources ||
            b.size() != num_sources) {
            fail(line_no,
                 "expected two vectors of " + std::to_string(num_sources) +
                     " bits",
                 line);
        }
        PatternPair p;
        p.v1.reserve(num_sources);
        p.v2.reserve(num_sources);
        for (char c : a) {
            if (c != '0' && c != '1') {
                fail(line_no, "invalid bit", line);
            }
            p.v1.push_back(c == '1' ? 1 : 0);
        }
        for (char c : b) {
            if (c != '0' && c != '1') {
                fail(line_no, "invalid bit", line);
            }
            p.v2.push_back(c == '1' ? 1 : 0);
        }
        set.patterns.push_back(std::move(p));
    }
    return set;
}

TestSet read_patterns_string(const std::string& text, std::size_t num_sources) {
    std::istringstream is(text);
    return read_patterns(is, num_sources);
}

}  // namespace fastmon
