#include "atpg/tfault_sim.hpp"

#include <bit>
#include <cassert>
#include <unordered_map>

namespace fastmon {

std::vector<TdfFault> enumerate_tdf_faults(const Netlist& netlist) {
    std::vector<TdfFault> faults;
    for (GateId id = 0; id < netlist.size(); ++id) {
        const Gate& g = netlist.gate(id);
        if (!is_combinational(g.type)) continue;
        for (bool rising : {true, false}) {
            faults.push_back(
                TdfFault{FaultSite{id, FaultSite::kOutputPin}, rising});
            for (std::uint32_t pin = 0;
                 pin < static_cast<std::uint32_t>(g.fanin.size()); ++pin) {
                faults.push_back(TdfFault{FaultSite{id, pin}, rising});
            }
        }
    }
    return faults;
}

TransitionFaultSim::TransitionFaultSim(const Netlist& netlist)
    : netlist_(&netlist), logic_(netlist) {}

TransitionFaultSim::Batch TransitionFaultSim::pack(
    std::span<const PatternPair> patterns, std::size_t first) const {
    assert(first < patterns.size());
    const std::size_t n_src = netlist_->comb_sources().size();
    Batch b;
    b.count = std::min<std::size_t>(64, patterns.size() - first);
    b.src1.assign(n_src, 0);
    b.src2.assign(n_src, 0);
    for (std::size_t lane = 0; lane < 64; ++lane) {
        const PatternPair& p =
            patterns[first + (lane < b.count ? lane : 0)];
        for (std::size_t s = 0; s < n_src; ++s) {
            if (p.v1[s] != 0) b.src1[s] |= 1ULL << lane;
            if (p.v2[s] != 0) b.src2[s] |= 1ULL << lane;
        }
    }
    return b;
}

TransitionFaultSim::BatchValues TransitionFaultSim::evaluate(
    const Batch& batch) const {
    return BatchValues{logic_.eval64(batch.src1), logic_.eval64(batch.src2)};
}

std::uint64_t TransitionFaultSim::detect_mask(const TdfFault& fault,
                                              const BatchValues& values) const {
    const Netlist& nl = *netlist_;
    const Gate& fg = nl.gate(fault.site.gate);

    // Signal at the fault site under both vectors.
    const GateId site_signal = fault.site.pin == FaultSite::kOutputPin
                                   ? fault.site.gate
                                   : fg.fanin[fault.site.pin];
    const std::uint64_t s1 = values.val1[site_signal];
    const std::uint64_t s2 = values.val2[site_signal];
    const std::uint64_t act = fault.slow_rising ? (~s1 & s2) : (s1 & ~s2);
    if (act == 0) return 0;

    // Faulty propagation of the stale value under v2: the site keeps v1
    // in activated lanes.
    std::unordered_map<GateId, std::uint64_t> overlay;
    overlay.reserve(32);

    std::uint64_t ins[8];
    auto eval_with_overlay = [&](GateId id,
                                 std::uint32_t faulty_pin,
                                 std::uint64_t faulty_word) -> std::uint64_t {
        const Gate& g = nl.gate(id);
        for (std::uint32_t p = 0;
             p < static_cast<std::uint32_t>(g.fanin.size()); ++p) {
            if (p == faulty_pin) {
                ins[p] = faulty_word;
                continue;
            }
            auto it = overlay.find(g.fanin[p]);
            ins[p] = it != overlay.end() ? it->second : values.val2[g.fanin[p]];
        }
        if (g.type == CellType::Output) return ins[0];
        return eval_cell64(
            g.type, std::span<const std::uint64_t>(ins, g.fanin.size()));
    };

    const std::uint64_t faulty_site = s2 ^ act;  // v1 value in active lanes
    if (fault.site.pin == FaultSite::kOutputPin) {
        overlay.emplace(fault.site.gate, faulty_site);
    } else {
        const std::uint64_t w = eval_with_overlay(
            fault.site.gate, fault.site.pin, faulty_site);
        if (w == values.val2[fault.site.gate]) return 0;
        overlay.emplace(fault.site.gate, w);
    }

    for (GateId id : nl.fanout_cone(fault.site.gate)) {
        if (id == fault.site.gate) continue;
        const Gate& g = nl.gate(id);
        bool dirty = false;
        for (GateId f : g.fanin) {
            if (overlay.contains(f)) {
                dirty = true;
                break;
            }
        }
        if (!dirty) continue;
        if (g.type == CellType::Dff) continue;  // register boundary
        const std::uint64_t w =
            eval_with_overlay(id, FaultSite::kOutputPin + 0, 0);
        if (w != values.val2[id]) overlay.emplace(id, w);
    }

    std::uint64_t detected = 0;
    for (const ObservePoint& op : nl.observe_points()) {
        auto it = overlay.find(op.signal);
        if (it == overlay.end()) continue;
        detected |= it->second ^ values.val2[op.signal];
    }
    return detected & act;
}

std::vector<std::size_t> fault_simulate_tdf(
    const Netlist& netlist, std::span<const TdfFault> faults,
    std::span<const PatternPair> patterns) {
    std::vector<std::size_t> first_detect(faults.size(), SIZE_MAX);
    if (patterns.empty()) return first_detect;
    TransitionFaultSim sim(netlist);
    for (std::size_t base = 0; base < patterns.size(); base += 64) {
        const auto batch = sim.pack(patterns, base);
        const auto values = sim.evaluate(batch);
        bool any_open = false;
        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            if (first_detect[fi] != SIZE_MAX) continue;
            const std::uint64_t mask = sim.detect_mask(faults[fi], values);
            const std::uint64_t valid =
                batch.count == 64 ? ~0ULL : ((1ULL << batch.count) - 1);
            const std::uint64_t hit = mask & valid;
            if (hit != 0) {
                first_detect[fi] =
                    base + static_cast<std::size_t>(std::countr_zero(hit));
            } else {
                any_open = true;
            }
        }
        if (!any_open) break;
    }
    return first_detect;
}

}  // namespace fastmon
