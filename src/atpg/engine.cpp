#include "atpg/engine.hpp"

#include "atpg/podem.hpp"
#include "atpg/sat_atpg.hpp"

namespace fastmon {

std::string_view atpg_engine_kind_name(AtpgEngineKind kind) {
    switch (kind) {
        case AtpgEngineKind::Podem: return "podem";
        case AtpgEngineKind::Sat: return "sat";
        case AtpgEngineKind::Auto: return "auto";
    }
    return "?";
}

std::optional<AtpgEngineKind> atpg_engine_kind_from_name(
    std::string_view name) {
    if (name == "podem") return AtpgEngineKind::Podem;
    if (name == "sat") return AtpgEngineKind::Sat;
    if (name == "auto") return AtpgEngineKind::Auto;
    return std::nullopt;
}

namespace {

/// Structural engine: v2 detects "site stuck at the initial value", v1
/// justifies the initial value; X positions are filled from the
/// caller's PRNG (one draw per unassigned position, v1 before v2 per
/// source, preserving the historical draw order of the ATPG loop).
class PodemEngine final : public AtpgEngine {
public:
    PodemEngine(const Netlist& netlist, const AtpgConfig& config)
        : netlist_(&netlist), podem_(netlist, config.podem_backtrack_limit) {}

    [[nodiscard]] std::string_view name() const override { return "podem"; }

    [[nodiscard]] AtpgFaultResult generate(const TdfFault& fault,
                                           Prng& rng) override {
        AtpgFaultResult result;
        const bool initial = !fault.slow_rising;  // STR: 0 -> 1
        const PodemResult v2 = podem_.generate_test(fault.site, initial);
        result.effort = v2.backtracks;
        if (v2.status == PodemStatus::Untestable) {
            result.verdict = AtpgVerdict::Untestable;
            return result;
        }
        if (v2.status == PodemStatus::Aborted) {
            result.verdict = AtpgVerdict::Aborted;
            return result;
        }
        const PodemResult v1 = podem_.justify(fault.site, initial);
        result.effort += v1.backtracks;
        if (v1.status == PodemStatus::Untestable) {
            result.verdict = AtpgVerdict::Untestable;
            return result;
        }
        if (v1.status == PodemStatus::Aborted) {
            result.verdict = AtpgVerdict::Aborted;
            return result;
        }
        const std::size_t n_src = netlist_->comb_sources().size();
        result.pattern.v1.resize(n_src);
        result.pattern.v2.resize(n_src);
        for (std::size_t s = 0; s < n_src; ++s) {
            result.pattern.v1[s] =
                v1.assigned[s] ? v1.vector[s] : (rng.chance(0.5) ? 1 : 0);
            result.pattern.v2[s] =
                v2.assigned[s] ? v2.vector[s] : (rng.chance(0.5) ? 1 : 0);
        }
        result.verdict = AtpgVerdict::Testable;
        return result;
    }

private:
    const Netlist* netlist_;
    Podem podem_;
};

/// SAT-only engine (thin ownership wrapper; SatAtpg implements
/// AtpgEngine directly).
std::unique_ptr<AtpgEngine> make_sat(const Netlist& netlist,
                                     const AtpgConfig& config) {
    return std::make_unique<SatAtpg>(netlist, config);
}

/// PODEM first; aborted targets retry on a lazily built SAT engine, so
/// the CNF encoding cost is only paid when the structural search
/// actually hits its budget.
class AutoEngine final : public AtpgEngine {
public:
    AutoEngine(const Netlist& netlist, const AtpgConfig& config)
        : netlist_(&netlist), config_(config), podem_(netlist, config) {}

    [[nodiscard]] std::string_view name() const override { return "auto"; }

    [[nodiscard]] AtpgFaultResult generate(const TdfFault& fault,
                                           Prng& rng) override {
        AtpgFaultResult first = podem_.generate(fault, rng);
        if (first.verdict != AtpgVerdict::Aborted) return first;
        if (!sat_) sat_ = make_sat(*netlist_, config_);
        AtpgFaultResult second = sat_->generate(fault, rng);
        second.effort += first.effort;
        return second;
    }

private:
    const Netlist* netlist_;
    AtpgConfig config_;
    PodemEngine podem_;
    std::unique_ptr<AtpgEngine> sat_;
};

}  // namespace

std::unique_ptr<AtpgEngine> make_atpg_engine(const Netlist& netlist,
                                             const AtpgConfig& config) {
    switch (config.engine) {
        case AtpgEngineKind::Podem:
            return std::make_unique<PodemEngine>(netlist, config);
        case AtpgEngineKind::Sat:
            return make_sat(netlist, config);
        case AtpgEngineKind::Auto:
            return std::make_unique<AutoEngine>(netlist, config);
    }
    return std::make_unique<PodemEngine>(netlist, config);
}

}  // namespace fastmon
