// Unified test-generation engine interface.
//
// The transition-fault ATPG (tdf_atpg.hpp) targets one fault at a time
// in its deterministic phase; AtpgEngine abstracts over how that
// target is solved.  Two implementations exist:
//
//   * Podem   — classic structural search (podem.hpp), bounded by a
//               backtrack limit,
//   * SatAtpg — incremental CNF-based generation (sat_atpg.hpp),
//               bounded by a per-fault conflict budget,
//
// plus an Auto policy that runs PODEM first and retries aborted
// targets with SAT (the SAT encoder is only built when first needed).
// All engine selection and effort knobs live in AtpgConfig so the
// flow / CLI / manifest see one configuration surface instead of
// per-engine constructor parameters.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "atpg/tfault_sim.hpp"
#include "util/prng.hpp"

namespace fastmon {

enum class AtpgEngineKind : std::uint8_t {
    Podem,  ///< structural PODEM only
    Sat,    ///< incremental SAT only
    Auto,   ///< PODEM first, SAT fallback for aborted targets
};

std::string_view atpg_engine_kind_name(AtpgEngineKind kind);
std::optional<AtpgEngineKind> atpg_engine_kind_from_name(std::string_view name);

/// All ATPG knobs, engine selection included (recorded in the run
/// manifest by HdfFlow).
struct AtpgConfig {
    std::uint64_t seed = 1;
    /// Random phase stops after this many consecutive batches without a
    /// new detection.
    std::size_t max_idle_batches = 10;
    std::size_t max_random_batches = 200;
    /// Skip the deterministic phase entirely (fast mode for benches).
    bool deterministic_phase = true;
    /// Cap on deterministic targets (0 = unlimited).
    std::size_t max_deterministic_faults = 0;

    /// Which engine the deterministic phase uses.
    AtpgEngineKind engine = AtpgEngineKind::Podem;
    /// PODEM effort cap (per target).
    std::size_t podem_backtrack_limit = 250;
    /// SAT effort cap (conflicts per target; 0 = unlimited).
    std::uint64_t sat_conflict_budget = 20000;
    /// SAT solver is rebuilt (dropping learned clauses and fault-cone
    /// encodings) after this many encoded fault sites; bounds clause-
    /// database growth on long fault lists.  0 = never rebuild.
    std::size_t sat_restart_period = 512;
};

enum class AtpgVerdict : std::uint8_t {
    Testable,    ///< `pattern` is a witness pair
    Untestable,  ///< proven redundant
    Aborted,     ///< effort budget exhausted
};

struct AtpgFaultResult {
    AtpgVerdict verdict = AtpgVerdict::Aborted;
    /// Complete (v1, v2) enhanced-scan pair when Testable; positions the
    /// engine left unconstrained are filled from the caller's PRNG.
    PatternPair pattern;
    /// Search effort spent on this target: backtracks for PODEM,
    /// conflicts for SAT (summed for Auto).
    std::uint64_t effort = 0;
};

class AtpgEngine {
public:
    virtual ~AtpgEngine() = default;

    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Generates a test for one transition fault.  `rng` fills pattern
    /// positions the engine leaves unconstrained, keeping the caller in
    /// charge of reproducibility.
    [[nodiscard]] virtual AtpgFaultResult generate(const TdfFault& fault,
                                                   Prng& rng) = 0;
};

/// Builds the engine selected by `config.engine`.
std::unique_ptr<AtpgEngine> make_atpg_engine(const Netlist& netlist,
                                             const AtpgConfig& config);

}  // namespace fastmon
