#include "atpg/podem.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

namespace fastmon {

namespace {

// Ternary logic values.
constexpr std::uint8_t T0 = 0;
constexpr std::uint8_t T1 = 1;
constexpr std::uint8_t TX = 2;

/// Five-valued signal as a (good, faulty) ternary pair:
/// D = (1,0), D-bar = (0,1), X = (X,X).
struct V5 {
    std::uint8_t good = TX;
    std::uint8_t faulty = TX;

    [[nodiscard]] bool is_d() const {
        return good != TX && faulty != TX && good != faulty;
    }
    friend bool operator==(const V5&, const V5&) = default;
};

std::uint8_t t_not(std::uint8_t v) {
    return v == TX ? TX : (v == T1 ? T0 : T1);
}

std::uint8_t t_and(std::uint8_t a, std::uint8_t b) {
    if (a == T0 || b == T0) return T0;
    if (a == T1 && b == T1) return T1;
    return TX;
}

std::uint8_t t_or(std::uint8_t a, std::uint8_t b) {
    if (a == T1 || b == T1) return T1;
    if (a == T0 && b == T0) return T0;
    return TX;
}

std::uint8_t t_xor(std::uint8_t a, std::uint8_t b) {
    if (a == TX || b == TX) return TX;
    return a == b ? T0 : T1;
}

/// Ternary (three-valued) gate evaluation with controlling values.
std::uint8_t ternary_eval(CellType type, std::span<const std::uint8_t> ins) {
    switch (type) {
        case CellType::Buf:
        case CellType::Output:
            return ins[0];
        case CellType::Inv:
            return t_not(ins[0]);
        case CellType::And:
        case CellType::Nand: {
            std::uint8_t acc = T1;
            for (std::uint8_t v : ins) acc = t_and(acc, v);
            return type == CellType::And ? acc : t_not(acc);
        }
        case CellType::Or:
        case CellType::Nor: {
            std::uint8_t acc = T0;
            for (std::uint8_t v : ins) acc = t_or(acc, v);
            return type == CellType::Or ? acc : t_not(acc);
        }
        case CellType::Xor:
        case CellType::Xnor: {
            std::uint8_t acc = T0;
            for (std::uint8_t v : ins) acc = t_xor(acc, v);
            return type == CellType::Xor ? acc : t_not(acc);
        }
        case CellType::Mux2: {
            if (ins[0] == T0) return ins[1];
            if (ins[0] == T1) return ins[2];
            // Select unknown: defined only if both data inputs agree.
            return (ins[1] == ins[2] && ins[1] != TX) ? ins[1] : TX;
        }
        case CellType::Aoi21:
            return t_not(t_or(t_and(ins[0], ins[1]), ins[2]));
        case CellType::Oai21:
            return t_not(t_and(t_or(ins[0], ins[1]), ins[2]));
        default:
            return TX;
    }
}

/// Does this cell type invert the chosen input on a sensitized path?
/// (Heuristic for backtrace; correctness is preserved by backtracking.)
bool inverting(CellType type) {
    switch (type) {
        case CellType::Inv:
        case CellType::Nand:
        case CellType::Nor:
        case CellType::Xnor:
        case CellType::Aoi21:
        case CellType::Oai21:
            return true;
        default:
            return false;
    }
}

/// Non-controlling input value used to sensitize a gate (heuristic).
bool noncontrolling(CellType type) {
    switch (type) {
        case CellType::And:
        case CellType::Nand:
            return true;
        case CellType::Or:
        case CellType::Nor:
            return false;
        default:
            return false;
    }
}

struct Objective {
    GateId signal = kNoGate;
    bool value = false;
};

}  // namespace

/// Cache of per-source fanout cones, shared across PODEM runs on the
/// same netlist (cone extraction is the dominant setup cost otherwise).
using PodemConeCache = std::vector<std::vector<GateId>>;

struct PodemEngine {
    const Netlist& nl;
    const FaultSite site;
    const bool stuck_value;
    const bool propagate;  ///< false for pure justification
    const std::size_t backtrack_limit;
    PodemConeCache& cones;

    std::vector<V5> values;
    std::vector<Bit> source_vals;      // only meaningful where source_set
    std::vector<bool> source_set;
    std::vector<GateId> site_cone;
    std::size_t backtracks = 0;

    PodemEngine(const Netlist& netlist, const FaultSite& s, bool sv,
                bool prop, std::size_t limit, PodemConeCache& cone_cache)
        : nl(netlist),
          site(s),
          stuck_value(sv),
          propagate(prop),
          backtrack_limit(limit),
          cones(cone_cache),
          values(netlist.size()),
          source_vals(netlist.comb_sources().size(), 0),
          source_set(netlist.comb_sources().size(), false),
          site_cone(netlist.fanout_cone(s.gate)) {}

    const std::vector<GateId>& source_cone(std::uint32_t src) {
        if (cones.size() != nl.comb_sources().size()) {
            cones.assign(nl.comb_sources().size(), {});
        }
        std::vector<GateId>& cone = cones[src];
        if (cone.empty()) {
            cone = nl.fanout_cone(nl.comb_sources()[src]);
        }
        return cone;
    }

    /// Signal whose good value must become !stuck_value to activate.
    [[nodiscard]] GateId faulted_line_driver() const {
        if (site.pin == FaultSite::kOutputPin) return site.gate;
        return nl.gate(site.gate).fanin[site.pin];
    }

    /// Recomputes the value of one non-source node from its fanins,
    /// applying the fault injection at the site.
    void eval_node(GateId id) {
        const Gate& g = nl.gate(id);
        const auto arity = static_cast<std::uint32_t>(g.fanin.size());
        std::uint8_t gin[8];
        std::uint8_t fin[8];
        for (std::uint32_t p = 0; p < arity; ++p) {
            gin[p] = values[g.fanin[p]].good;
            fin[p] = values[g.fanin[p]].faulty;
        }
        // Branch fault injection: the faulty circuit sees the stuck
        // value on this one pin.
        if (propagate && id == site.gate &&
            site.pin != FaultSite::kOutputPin) {
            fin[site.pin] = stuck_value ? T1 : T0;
        }
        V5 v;
        if (g.type == CellType::Output) {
            v = V5{gin[0], fin[0]};
        } else {
            v.good = ternary_eval(g.type,
                                  std::span<const std::uint8_t>(gin, arity));
            v.faulty = ternary_eval(g.type,
                                    std::span<const std::uint8_t>(fin, arity));
        }
        // Stem fault injection at the gate output.
        if (propagate && id == site.gate &&
            site.pin == FaultSite::kOutputPin) {
            v.faulty = stuck_value ? T1 : T0;
        }
        values[id] = v;
    }

    [[nodiscard]] V5 source_value(std::uint32_t src) const {
        const std::uint8_t v =
            source_set[src] ? (source_vals[src] != 0 ? T1 : T0) : TX;
        return V5{v, v};
    }

    /// Full forward implication (used once at start).
    void imply() {
        for (GateId id : nl.topo_order()) {
            const std::uint32_t src = nl.source_index(id);
            if (src != std::numeric_limits<std::uint32_t>::max()) {
                values[id] = source_value(src);
                continue;
            }
            eval_node(id);
        }
    }

    /// Incremental implication after (un)assigning one source: only the
    /// source's fanout cone can change.
    void imply_from(std::uint32_t src) {
        values[nl.comb_sources()[src]] = source_value(src);
        for (GateId id : source_cone(src)) {
            if (nl.source_index(id) !=
                std::numeric_limits<std::uint32_t>::max()) {
                continue;  // the source itself / register sinks
            }
            eval_node(id);
        }
    }

    [[nodiscard]] bool effect_at_output() const {
        for (const ObservePoint& op : nl.observe_points()) {
            if (values[op.signal].is_d()) return true;
        }
        return false;
    }

    /// True once the fault is activated (good side of the faulted line
    /// at the non-stuck value).
    [[nodiscard]] std::uint8_t line_good_value() const {
        if (site.pin == FaultSite::kOutputPin) {
            return values[site.gate].good;
        }
        return values[faulted_line_driver()].good;
    }

    /// X-path check: for every node in the site cone, can a change still
    /// reach an observation point through X-valued (or D-carrying)
    /// signals?  Computed in one reverse sweep over the cone.
    [[nodiscard]] std::vector<std::int8_t> x_path_map() const {
        std::vector<std::int8_t> reach(nl.size(), 0);
        for (auto it = site_cone.rbegin(); it != site_cone.rend(); ++it) {
            const GateId id = *it;
            const Gate& g = nl.gate(id);
            if (g.type == CellType::Output || g.type == CellType::Dff) {
                reach[id] = 1;  // observation point (D pin / pad)
                continue;
            }
            for (GateId out : g.fanout) {
                const Gate& og = nl.gate(out);
                if (og.type == CellType::Output || og.type == CellType::Dff) {
                    reach[id] = 1;
                    break;
                }
                const V5& ov = values[out];
                const bool open = ov.good == TX || ov.faulty == TX;
                if (open && reach[out] != 0) {
                    reach[id] = 1;
                    break;
                }
            }
        }
        return reach;
    }

    [[nodiscard]] std::optional<Objective> next_objective() const {
        const std::uint8_t lv = line_good_value();
        const std::uint8_t want = stuck_value ? T0 : T1;
        if (lv == TX) {
            return Objective{faulted_line_driver(), want == T1};
        }
        if (lv != want) return std::nullopt;  // activation conflict
        if (!propagate) return std::nullopt;  // justification done/failed
        // D-frontier: X-output gates with a D on some input; pick the
        // shallowest one that still has an X-path to an observation
        // point.  The frontier can only live in the fanout cone of the
        // fault site.
        const std::vector<std::int8_t> x_path = x_path_map();
        GateId best = kNoGate;
        for (GateId id : site_cone) {
            const Gate& g = nl.gate(id);
            if (!is_combinational(g.type)) continue;
            const V5& out = values[id];
            if (out.good != TX && out.faulty != TX) continue;
            bool has_d = false;
            for (GateId f : g.fanin) {
                if (values[f].is_d()) {
                    has_d = true;
                    break;
                }
            }
            // The faulted gate's injected branch D is not visible in
            // values[]; treat it as a frontier member when activated.
            if (id == site.gate && site.pin != FaultSite::kOutputPin) {
                has_d = true;
            }
            if (!has_d) continue;
            if (x_path[id] == 0) continue;  // effect can no longer reach
            if (best == kNoGate || nl.level(id) < nl.level(best)) best = id;
        }
        if (best == kNoGate) return std::nullopt;
        const Gate& g = nl.gate(best);
        for (GateId f : g.fanin) {
            if (values[f].good == TX) {
                return Objective{f, noncontrolling(g.type)};
            }
        }
        return std::nullopt;
    }

    /// X-valued fanin with extreme logic level: `hardest` selects the
    /// deepest (to satisfy all-inputs objectives early), otherwise the
    /// shallowest (easiest single-input objective).
    [[nodiscard]] GateId pick_x_fanin(const Gate& g, bool hardest) const {
        GateId pick = kNoGate;
        for (GateId f : g.fanin) {
            if (values[f].good != TX) continue;
            if (pick == kNoGate ||
                (hardest ? nl.level(f) > nl.level(pick)
                         : nl.level(f) < nl.level(pick))) {
                pick = f;
            }
        }
        return pick;
    }

    /// Maps an objective to a source assignment through X-valued lines
    /// using the classic goal-directed heuristic: descend into the
    /// easiest input when any controlling value suffices, the hardest
    /// when all inputs must be non-controlling.
    [[nodiscard]] std::optional<std::pair<std::uint32_t, bool>> backtrace(
        Objective obj) const {
        GateId s = obj.signal;
        bool v = obj.value;
        for (std::size_t guard = 0; guard < nl.size() + 1; ++guard) {
            const std::uint32_t src = nl.source_index(s);
            if (src != std::numeric_limits<std::uint32_t>::max()) {
                if (source_set[src]) return std::nullopt;
                return std::make_pair(src, v);
            }
            const Gate& g = nl.gate(s);
            GateId next = kNoGate;
            bool next_v = v;
            switch (g.type) {
                case CellType::And:
                case CellType::Nand: {
                    const bool out_and = g.type == CellType::And ? v : !v;
                    // 1: all inputs 1 (hardest first); 0: any input 0.
                    next = pick_x_fanin(g, out_and);
                    next_v = out_and;
                    break;
                }
                case CellType::Or:
                case CellType::Nor: {
                    const bool out_or = g.type == CellType::Or ? v : !v;
                    // 1: any input 1 (easiest); 0: all inputs 0.
                    next = pick_x_fanin(g, !out_or);
                    next_v = out_or;
                    break;
                }
                case CellType::Inv:
                    next = values[g.fanin[0]].good == TX ? g.fanin[0] : kNoGate;
                    next_v = !v;
                    break;
                case CellType::Buf:
                case CellType::Output:
                    next = values[g.fanin[0]].good == TX ? g.fanin[0] : kNoGate;
                    break;
                case CellType::Xor:
                case CellType::Xnor: {
                    // Choose an X input; if it is the only X, its value
                    // is determined by the parity of the known inputs.
                    next = pick_x_fanin(g, false);
                    if (next == kNoGate) break;
                    bool parity = g.type == CellType::Xnor ? !v : v;
                    std::size_t n_x = 0;
                    for (GateId f : g.fanin) {
                        if (values[f].good == TX) {
                            ++n_x;
                        } else if (values[f].good == T1) {
                            parity = !parity;
                        }
                    }
                    next_v = n_x == 1 ? parity : v;
                    break;
                }
                case CellType::Mux2: {
                    // Select known: descend the selected data input.
                    if (values[g.fanin[0]].good == T0 &&
                        values[g.fanin[1]].good == TX) {
                        next = g.fanin[1];
                    } else if (values[g.fanin[0]].good == T1 &&
                               values[g.fanin[2]].good == TX) {
                        next = g.fanin[2];
                    } else {
                        next = pick_x_fanin(g, false);
                    }
                    break;
                }
                default:
                    // AOI/OAI: heuristic descent with inversion.
                    next = pick_x_fanin(g, false);
                    next_v = inverting(g.type) ? !v : v;
                    break;
            }
            if (next == kNoGate) return std::nullopt;
            v = next_v;
            s = next;
        }
        return std::nullopt;
    }

    [[nodiscard]] PodemStatus run() {
        struct Decision {
            std::uint32_t src;
            bool tried_both;
        };
        std::vector<Decision> stack;
        imply();

        for (;;) {
            // Success?
            if (propagate) {
                if (effect_at_output()) return PodemStatus::Success;
            } else {
                const std::uint8_t lv = line_good_value();
                const std::uint8_t want = stuck_value ? T0 : T1;
                if (lv == want) return PodemStatus::Success;
            }

            const auto obj = next_objective();
            std::optional<std::pair<std::uint32_t, bool>> assign;
            if (obj) assign = backtrace(*obj);

            if (assign) {
                source_set[assign->first] = true;
                source_vals[assign->first] = assign->second ? 1 : 0;
                stack.push_back(Decision{assign->first, false});
                imply_from(assign->first);
                continue;
            }

            // Dead end: backtrack.
            for (;;) {
                if (stack.empty()) return PodemStatus::Untestable;
                if (++backtracks > backtrack_limit) {
                    return PodemStatus::Aborted;
                }
                Decision& d = stack.back();
                if (!d.tried_both) {
                    d.tried_both = true;
                    source_vals[d.src] ^= 1;
                    imply_from(d.src);
                    break;
                }
                source_set[d.src] = false;
                imply_from(d.src);
                stack.pop_back();
            }
        }
    }
};

Podem::Podem(const Netlist& netlist, std::size_t backtrack_limit)
    : netlist_(&netlist), backtrack_limit_(backtrack_limit) {}

namespace {

PodemResult finish(const PodemEngine& engine, PodemStatus status) {
    PodemResult r;
    r.status = status;
    r.backtracks = engine.backtracks;
    r.vector = engine.source_vals;
    r.assigned = engine.source_set;
    return r;
}

}  // namespace

PodemResult Podem::generate_test(const FaultSite& site,
                                 bool stuck_value) const {
    PodemEngine engine(*netlist_, site, stuck_value, true, backtrack_limit_,
                       cone_cache_);
    const PodemStatus status = engine.run();
    return finish(engine, status);
}

PodemResult Podem::justify(const FaultSite& site, bool value) const {
    // Justification of "line = value" is PODEM for stuck-at !value with
    // the propagation requirement dropped.
    PodemEngine engine(*netlist_, site, !value, false, backtrack_limit_,
                       cone_cache_);
    const PodemStatus status = engine.run();
    return finish(engine, status);
}

}  // namespace fastmon
