// Test set container and text I/O.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/pattern.hpp"

namespace fastmon {

struct TestSet {
    std::vector<PatternPair> patterns;

    [[nodiscard]] std::size_t size() const { return patterns.size(); }
    [[nodiscard]] bool empty() const { return patterns.empty(); }
    [[nodiscard]] const PatternPair& operator[](std::size_t i) const {
        return patterns[i];
    }
};

/// Writes one pattern pair per line: "<v1 bits> <v2 bits>" over the
/// combinational sources (PIs then PPIs), MSB-first in source order.
void write_patterns(std::ostream& os, const TestSet& set);
std::string write_patterns_string(const TestSet& set);

/// Parses the format written by write_patterns.  `num_sources` is
/// validated against every line.
TestSet read_patterns(std::istream& is, std::size_t num_sources);
TestSet read_patterns_string(const std::string& text, std::size_t num_sources);

}  // namespace fastmon
