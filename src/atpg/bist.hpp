// FAST-BIST substrate: on-chip pattern generation and response
// compaction.
//
// The paper positions monitor reuse against BIST-based FAST
// (FAST-BIST [16]): over-clocked responses cannot go to an ATE, so
// they are compacted on chip.  This module provides the two on-chip
// blocks as software models:
//   * Prpg — a Fibonacci-LFSR pseudo-random pattern generator whose
//     bit stream fills pattern pairs for the combinational core;
//   * Misr — a multiple-input signature register compacting per-cycle
//     output responses; fault detection = signature mismatch.
// misr_fault_coverage ties them to the timing-accurate simulator: for a
// chosen FAST observation period, responses are sampled at that period
// and a fault is BIST-detected iff its faulty signature differs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/fault_sim.hpp"
#include "sim/pattern.hpp"

namespace fastmon {

/// Software Fibonacci LFSR over a dense polynomial; period 2^width - 1
/// for the built-in maximal polynomials (width 16, 24, 32).
class Prpg {
public:
    explicit Prpg(std::uint32_t width = 32, std::uint64_t seed = 1);

    /// Next pseudo-random bit (the LFSR output stage).
    Bit next_bit();

    /// Fills a pattern pair for `num_sources` core inputs.
    PatternPair next_pattern(std::size_t num_sources);

    /// A whole BIST session worth of patterns.
    std::vector<PatternPair> generate(std::size_t num_sources,
                                      std::size_t count);

    [[nodiscard]] std::uint64_t state() const { return state_; }

private:
    std::uint32_t width_;
    std::uint64_t taps_;
    std::uint64_t state_;
};

/// Multiple-input signature register (type-2 MISR): per cycle the
/// response word is XORed into an LFSR state.
class Misr {
public:
    explicit Misr(std::uint32_t width = 32);

    /// Absorbs one response word (bit i = output i, wrapped mod width).
    void absorb(std::span<const Bit> response);
    void absorb_word(std::uint64_t response_bits);

    [[nodiscard]] std::uint64_t signature() const { return state_; }
    void reset(std::uint64_t seed = 0) { state_ = seed; }

    /// Aliasing probability estimate for `cycles` absorbed responses:
    /// classic 2^-width bound (independent of cycles for cycles >= width).
    [[nodiscard]] double aliasing_probability() const;

private:
    std::uint32_t width_;
    std::uint64_t taps_;
    std::uint64_t state_;
};

/// BIST evaluation result for one observation period.
struct BistCoverage {
    Time period = 0.0;
    std::uint64_t good_signature = 0;
    std::size_t detected = 0;       ///< faults with differing signature
    std::size_t response_diffs = 0; ///< faults with any differing response bit
    std::size_t aliased = 0;        ///< differing responses, equal signature
};

/// Runs `patterns` through the timing-accurate simulator, samples every
/// observation point at `period`, and compares good vs faulty MISR
/// signatures per fault.  (Responses are also compared directly to
/// count aliasing.)
BistCoverage misr_fault_coverage(const WaveSim& sim,
                                 std::span<const PatternPair> patterns,
                                 std::span<const DelayFault> faults,
                                 Time period, std::uint32_t misr_width = 32);

}  // namespace fastmon
