// (Partial) set covering — the combinatorial core of both scheduling
// steps (Sec. IV-B): frequency selection covers target faults with test
// periods; pattern-configuration selection covers the per-frequency
// fault sets with (pattern, configuration) pairs.
//
// Instances are preprocessed (identical-element merging, essential
// sets, set dominance) and solved either greedily (the baseline
// heuristic of [17]) or exactly by the 0-1 branch-and-bound solver
// within a node/time budget, analogous to the paper's commercial ILP
// with a 1 h timeout.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/ilp.hpp"

namespace fastmon {

struct SetCoverInstance {
    std::uint32_t num_elements = 0;
    /// Element weights (empty = all 1); partial coverage targets count
    /// weight, e.g. merged fault classes carry their multiplicity.
    std::vector<std::uint32_t> element_weight;
    /// sets[s] lists the element ids covered by set s (sorted, unique).
    std::vector<std::vector<std::uint32_t>> sets;

    [[nodiscard]] std::uint64_t total_weight() const;
    [[nodiscard]] std::uint32_t weight_of(std::uint32_t element) const {
        return element_weight.empty() ? 1 : element_weight[element];
    }
};

struct SetCoverOptions {
    /// Fraction of the total element weight that must be covered
    /// (1.0 = full cover).
    double coverage = 1.0;
    std::size_t max_nodes = 200000;
    double time_limit_sec = 10.0;
};

struct SetCoverResult {
    std::vector<std::uint32_t> chosen;  ///< selected set indices (sorted)
    std::uint64_t covered_weight = 0;
    bool feasible = false;
    bool proven_optimal = false;
    /// Branch-and-bound nodes expanded (0 for the greedy heuristic).
    std::size_t nodes_explored = 0;
};

/// Greedy heuristic: repeatedly pick the set covering the most
/// uncovered weight (ties: lowest index).
SetCoverResult greedy_set_cover(const SetCoverInstance& instance,
                                const SetCoverOptions& options = {});

/// Exact (within budget) solver via preprocessing + branch and bound.
/// Falls back to the greedy incumbent when the budget is exhausted.
SetCoverResult solve_set_cover(const SetCoverInstance& instance,
                               const SetCoverOptions& options = {});

/// Formulates the *full* cover instance as a 0-1 ILP (used for
/// cross-checking solve_set_cover in tests).
IlpProblem set_cover_to_ilp(const SetCoverInstance& instance);

}  // namespace fastmon
