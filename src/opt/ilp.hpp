// Zero-one integer linear programming by branch and bound.
//
// The paper's scheduling steps are formulated as 0-1 programs solved by
// a commercial tool with a one-hour timeout (Sec. IV-C / V).  This
// solver substitutes: depth-first branch and bound with simplex LP
// relaxation bounds, greedy rounding for incumbents, and a node/time
// budget mirroring the paper's timeout (results within budget are
// proven optimal; on exhaustion the best incumbent is returned and
// flagged).
#pragma once

#include <cstdint>

#include "opt/lp.hpp"

namespace fastmon {

/// min objective . x  subject to  rows (>=)  and  x in {0,1}^n.
using IlpProblem = LpProblem;

struct IlpConfig {
    std::size_t max_nodes = 200000;
    double time_limit_sec = 30.0;
    /// LP bounding is skipped above this size (greedy bound only).
    std::size_t lp_bound_max_vars = 400;
    std::size_t lp_bound_max_rows = 400;
};

struct IlpSolution {
    bool feasible = false;
    bool proven_optimal = false;
    double objective = 0.0;
    std::vector<std::uint8_t> x;
    std::size_t nodes_explored = 0;
};

IlpSolution solve_01_ilp(const IlpProblem& problem, const IlpConfig& config = {});

}  // namespace fastmon
