#include "opt/ilp.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "util/cancel.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace fastmon {

namespace {

constexpr double kEps = 1e-6;
constexpr std::int8_t kFree = -1;

using Clock = std::chrono::steady_clock;

struct Search {
    const IlpProblem& p;
    const IlpConfig& cfg;
    Clock::time_point deadline;
    bool all_integer_costs = true;

    std::vector<std::int8_t> fixed;  // -1 free, 0, 1
    double best_obj = std::numeric_limits<double>::infinity();
    std::vector<std::uint8_t> best_x;
    std::size_t nodes = 0;
    bool budget_exhausted = false;

    explicit Search(const IlpProblem& problem, const IlpConfig& config)
        : p(problem), cfg(config) {
        deadline = Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(config.time_limit_sec));
        fixed.assign(p.num_vars, kFree);
        for (double c : p.objective) {
            if (std::abs(c - std::round(c)) > kEps) all_integer_costs = false;
        }
    }

    [[nodiscard]] bool out_of_budget() {
        if (nodes > cfg.max_nodes || Clock::now() > deadline ||
            CancelToken::global().cancelled()) {
            // Cancellation folds into budget exhaustion: the incumbent
            // (if any) survives and the caller's fallback logic runs.
            budget_exhausted = true;
            return true;
        }
        return false;
    }

    [[nodiscard]] double fixed_cost() const {
        double c = 0.0;
        for (std::size_t j = 0; j < p.num_vars; ++j) {
            if (fixed[j] == 1) c += p.objective[j];
        }
        return c;
    }

    /// Max achievable LHS of a row given current fixing.
    [[nodiscard]] double row_max(const LpRow& row) const {
        double v = 0.0;
        for (const auto& [j, c] : row.coeffs) {
            if (fixed[j] == kFree) {
                if (c > 0) v += c;
            } else if (fixed[j] == 1) {
                v += c;
            }
        }
        return v;
    }

    /// One round of feasibility check + unit propagation.  Returns false
    /// on proven infeasibility; `trail` records vars fixed here.
    bool propagate(std::vector<std::uint32_t>& trail) {
        bool changed = true;
        while (changed) {
            changed = false;
            for (const LpRow& row : p.rows) {
                const double mx = row_max(row);
                if (mx < row.rhs - kEps) return false;
                // If dropping one free positive coefficient (or raising a
                // free negative one) breaks the row, that variable is
                // forced.
                for (const auto& [j, c] : row.coeffs) {
                    if (fixed[j] != kFree) continue;
                    if (c > 0 && mx - c < row.rhs - kEps) {
                        fixed[j] = 1;
                        trail.push_back(j);
                        changed = true;
                    } else if (c < 0 && mx + c < row.rhs - kEps) {
                        fixed[j] = 0;
                        trail.push_back(j);
                        changed = true;
                    }
                }
            }
        }
        return true;
    }

    /// Greedy completion of the current partial assignment into a
    /// feasible point; returns infinity cost on failure.
    void try_greedy_incumbent() {
        std::vector<std::uint8_t> x(p.num_vars, 0);
        for (std::size_t j = 0; j < p.num_vars; ++j) {
            x[j] = fixed[j] == 1 ? 1 : 0;
            if (fixed[j] == kFree && p.objective[j] < -kEps) x[j] = 1;
        }
        auto lhs = [&](const LpRow& row) {
            double v = 0.0;
            for (const auto& [j, c] : row.coeffs) {
                if (x[j] != 0) v += c;
            }
            return v;
        };
        // Repair violated rows greedily: flip the free variable with the
        // best violation-reduction per cost.
        for (std::size_t round = 0; round < p.num_vars + 1; ++round) {
            double worst = 0.0;
            const LpRow* worst_row = nullptr;
            for (const LpRow& row : p.rows) {
                const double v = row.rhs - lhs(row);
                if (v > worst + kEps) {
                    worst = v;
                    worst_row = &row;
                }
            }
            if (worst_row == nullptr) break;  // feasible
            double best_score = -1.0;
            std::size_t best_j = SIZE_MAX;
            std::uint8_t best_val = 0;
            for (const auto& [j, c] : worst_row->coeffs) {
                if (fixed[j] != kFree) continue;
                // Raising LHS: set to 1 if c > 0 and currently 0, or to
                // 0 if c < 0 and currently 1.
                double gain = 0.0;
                std::uint8_t val = x[j];
                if (c > 0 && x[j] == 0) {
                    gain = c;
                    val = 1;
                } else if (c < 0 && x[j] == 1) {
                    gain = -c;
                    val = 0;
                } else {
                    continue;
                }
                const double cost_delta =
                    val == 1 ? p.objective[j] : -p.objective[j];
                const double score = gain / (1.0 + std::max(cost_delta, 0.0));
                if (score > best_score) {
                    best_score = score;
                    best_j = j;
                    best_val = val;
                }
            }
            if (best_j == SIZE_MAX) return;  // cannot repair
            x[best_j] = best_val;
        }
        for (const LpRow& row : p.rows) {
            if (lhs(row) < row.rhs - kEps) return;
        }
        double obj = 0.0;
        for (std::size_t j = 0; j < p.num_vars; ++j) {
            if (x[j] != 0) obj += p.objective[j];
        }
        if (obj < best_obj - kEps) {
            best_obj = obj;
            best_x = std::move(x);
        }
    }

    /// LP relaxation over the free variables; returns the global lower
    /// bound and (optionally) the fractional solution for branching.
    [[nodiscard]] double lp_bound(std::vector<double>* frac_out) {
        std::size_t n_free = 0;
        std::vector<std::uint32_t> var_map(p.num_vars, UINT32_MAX);
        for (std::size_t j = 0; j < p.num_vars; ++j) {
            if (fixed[j] == kFree) {
                var_map[j] = static_cast<std::uint32_t>(n_free++);
            }
        }
        if (n_free == 0 || n_free > cfg.lp_bound_max_vars ||
            p.rows.size() > cfg.lp_bound_max_rows) {
            // Cheap bound: fixed cost plus all profitable frees.
            double b = fixed_cost();
            for (std::size_t j = 0; j < p.num_vars; ++j) {
                if (fixed[j] == kFree && p.objective[j] < 0) {
                    b += p.objective[j];
                }
            }
            return b;
        }
        LpProblem sub;
        sub.num_vars = n_free;
        sub.objective.resize(n_free);
        for (std::size_t j = 0; j < p.num_vars; ++j) {
            if (var_map[j] != UINT32_MAX) {
                sub.objective[var_map[j]] = p.objective[j];
            }
        }
        for (const LpRow& row : p.rows) {
            LpRow r;
            r.rhs = row.rhs;
            bool any_free = false;
            for (const auto& [j, c] : row.coeffs) {
                if (fixed[j] == kFree) {
                    r.coeffs.emplace_back(var_map[j], c);
                    any_free = true;
                } else if (fixed[j] == 1) {
                    r.rhs -= c;
                }
            }
            if (any_free && r.rhs > -1e18) sub.rows.push_back(std::move(r));
        }
        // x <= 1 boxes (as -x >= -1).
        for (std::uint32_t j = 0; j < n_free; ++j) {
            LpRow r;
            r.coeffs.emplace_back(j, -1.0);
            r.rhs = -1.0;
            sub.rows.push_back(std::move(r));
        }
        const LpSolution sol = solve_lp(sub);
        if (sol.status == LpStatus::Infeasible) {
            return std::numeric_limits<double>::infinity();
        }
        if (sol.status != LpStatus::Optimal) {
            double b = fixed_cost();
            for (std::size_t j = 0; j < p.num_vars; ++j) {
                if (fixed[j] == kFree && p.objective[j] < 0) {
                    b += p.objective[j];
                }
            }
            return b;
        }
        if (frac_out != nullptr) {
            frac_out->assign(p.num_vars, 0.0);
            for (std::size_t j = 0; j < p.num_vars; ++j) {
                if (var_map[j] != UINT32_MAX) {
                    (*frac_out)[j] = sol.x[var_map[j]];
                } else {
                    (*frac_out)[j] = fixed[j] == 1 ? 1.0 : 0.0;
                }
            }
        }
        return fixed_cost() + sol.objective;
    }

    void dfs() {
        ++nodes;
        if (out_of_budget()) return;

        std::vector<std::uint32_t> trail;
        if (!propagate(trail)) {
            undo(trail);
            return;
        }

        std::vector<double> frac;
        double bound = lp_bound(&frac);
        if (all_integer_costs) bound = std::ceil(bound - kEps);
        if (bound >= best_obj - kEps) {
            undo(trail);
            return;
        }

        // Fully fixed and feasible (propagate succeeded, no frees)?
        std::size_t branch_var = SIZE_MAX;
        double branch_frac = -1.0;
        for (std::size_t j = 0; j < p.num_vars; ++j) {
            if (fixed[j] != kFree) continue;
            const double f = frac.empty() ? 0.5 : frac[j];
            const double dist = 0.5 - std::abs(f - 0.5);
            if (dist > branch_frac) {
                branch_frac = dist;
                branch_var = j;
            }
        }
        if (branch_var == SIZE_MAX) {
            // Integral: record.
            double obj = fixed_cost();
            if (obj < best_obj - kEps) {
                best_obj = obj;
                best_x.assign(p.num_vars, 0);
                for (std::size_t j = 0; j < p.num_vars; ++j) {
                    best_x[j] = fixed[j] == 1 ? 1 : 0;
                }
            }
            undo(trail);
            return;
        }

        if (nodes % 64 == 1) try_greedy_incumbent();

        const double f = frac.empty() ? 1.0 : frac[branch_var];
        const std::int8_t first = f >= 0.5 ? 1 : 0;
        for (std::int8_t v : {first, static_cast<std::int8_t>(1 - first)}) {
            fixed[branch_var] = v;
            dfs();
            if (budget_exhausted) break;
        }
        fixed[branch_var] = kFree;
        undo(trail);
    }

    void undo(const std::vector<std::uint32_t>& trail) {
        for (std::uint32_t j : trail) fixed[j] = kFree;
    }
};

}  // namespace

IlpSolution solve_01_ilp(const IlpProblem& problem, const IlpConfig& config) {
    const TraceSpan span("ilp", "opt");
    Search s(problem, config);
    // Root relaxation bound, kept for the optimality-gap metric.
    const double root_bound = s.lp_bound(nullptr);
    s.try_greedy_incumbent();
    s.dfs();

    IlpSolution sol;
    sol.nodes_explored = s.nodes;
    if (std::isfinite(s.best_obj)) {
        sol.feasible = true;
        sol.objective = s.best_obj;
        sol.x = s.best_x;
        sol.proven_optimal = !s.budget_exhausted;
    }

    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("opt.ilp.solves").add(1);
    reg.counter("opt.ilp.nodes").add(sol.nodes_explored);
    reg.counter("opt.ilp.rows").add(problem.rows.size());
    reg.counter("opt.ilp.columns").add(problem.num_vars);
    if (sol.feasible && !sol.proven_optimal) {
        reg.counter("opt.ilp.budget_exhausted").add(1);
        if (std::isfinite(root_bound)) {
            const double denom = std::max(std::abs(sol.objective), 1.0);
            reg.gauge("opt.ilp.last_gap")
                .set(std::max(0.0, sol.objective - root_bound) / denom);
        }
    }
    return sol;
}

}  // namespace fastmon
