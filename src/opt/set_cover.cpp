#include "opt/set_cover.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>

#include "util/cancel.hpp"
#include "util/fault_inject.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace fastmon {

std::uint64_t SetCoverInstance::total_weight() const {
    if (element_weight.empty()) return num_elements;
    return std::accumulate(element_weight.begin(), element_weight.end(),
                           std::uint64_t{0});
}

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t coverage_target(const SetCoverInstance& inst, double coverage) {
    const double t = coverage * static_cast<double>(inst.total_weight());
    return static_cast<std::uint64_t>(std::ceil(t - 1e-9));
}

}  // namespace

SetCoverResult greedy_set_cover(const SetCoverInstance& instance,
                                const SetCoverOptions& options) {
    SetCoverResult result;
    const std::uint64_t target = coverage_target(instance, options.coverage);
    std::vector<bool> covered(instance.num_elements, false);
    std::vector<bool> used(instance.sets.size(), false);
    std::uint64_t covered_weight = 0;

    while (covered_weight < target) {
        std::size_t best = SIZE_MAX;
        std::uint64_t best_gain = 0;
        for (std::size_t s = 0; s < instance.sets.size(); ++s) {
            if (used[s]) continue;
            std::uint64_t gain = 0;
            for (std::uint32_t e : instance.sets[s]) {
                if (!covered[e]) gain += instance.weight_of(e);
            }
            if (gain > best_gain) {
                best_gain = gain;
                best = s;
            }
        }
        if (best == SIZE_MAX) break;  // nothing improves coverage
        used[best] = true;
        result.chosen.push_back(static_cast<std::uint32_t>(best));
        for (std::uint32_t e : instance.sets[best]) {
            if (!covered[e]) {
                covered[e] = true;
                covered_weight += instance.weight_of(e);
            }
        }
    }
    std::sort(result.chosen.begin(), result.chosen.end());
    result.covered_weight = covered_weight;
    result.feasible = covered_weight >= target;
    return result;
}

namespace {

/// Reduced instance after preprocessing, with maps back to the original.
struct Reduced {
    SetCoverInstance inst;                ///< merged elements, pruned sets
    std::vector<std::uint32_t> set_map;   ///< reduced set -> original set
    std::vector<std::uint32_t> forced;    ///< original sets forced (essential)
    std::uint64_t forced_weight = 0;      ///< weight covered by forced sets
    std::uint64_t uncoverable_weight = 0; ///< weight no set covers
};

Reduced preprocess(const SetCoverInstance& instance, bool full_cover) {
    Reduced red;

    // element -> covering sets.
    std::vector<std::vector<std::uint32_t>> cover_by(instance.num_elements);
    for (std::uint32_t s = 0; s < instance.sets.size(); ++s) {
        for (std::uint32_t e : instance.sets[s]) cover_by[e].push_back(s);
    }

    std::vector<bool> element_removed(instance.num_elements, false);
    std::vector<bool> set_forced(instance.sets.size(), false);

    for (std::uint32_t e = 0; e < instance.num_elements; ++e) {
        if (cover_by[e].empty()) {
            element_removed[e] = true;
            red.uncoverable_weight += instance.weight_of(e);
        }
    }

    // Essential sets (full cover only): an element with exactly one
    // covering set forces that set; iterate to closure.
    if (full_cover) {
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::uint32_t e = 0; e < instance.num_elements; ++e) {
                if (element_removed[e] || cover_by[e].size() != 1) continue;
                const std::uint32_t s = cover_by[e][0];
                if (set_forced[s]) {
                    element_removed[e] = true;
                    red.forced_weight += instance.weight_of(e);
                    continue;
                }
                set_forced[s] = true;
                changed = true;
                for (std::uint32_t ce : instance.sets[s]) {
                    if (!element_removed[ce]) {
                        element_removed[ce] = true;
                        red.forced_weight += instance.weight_of(ce);
                    }
                }
            }
        }
        for (std::uint32_t s = 0; s < instance.sets.size(); ++s) {
            if (set_forced[s]) red.forced.push_back(s);
        }
    }

    // Merge elements with identical covering-set signatures (restricted
    // to non-forced sets).
    std::map<std::vector<std::uint32_t>, std::uint32_t> signature_to_new;
    std::vector<std::uint32_t> new_weight;
    std::vector<std::vector<std::uint32_t>> new_cover_by;
    for (std::uint32_t e = 0; e < instance.num_elements; ++e) {
        if (element_removed[e]) continue;
        std::vector<std::uint32_t> sig;
        for (std::uint32_t s : cover_by[e]) {
            if (!set_forced[s]) sig.push_back(s);
        }
        if (sig.empty()) continue;  // only coverable by forced sets
        auto [it, inserted] = signature_to_new.emplace(
            std::move(sig), static_cast<std::uint32_t>(new_weight.size()));
        if (inserted) {
            new_weight.push_back(instance.weight_of(e));
            new_cover_by.push_back(it->first);
        } else {
            new_weight[it->second] += instance.weight_of(e);
        }
    }

    // Rebuild sets over merged elements.
    std::vector<std::vector<std::uint32_t>> new_sets(instance.sets.size());
    for (std::uint32_t ne = 0; ne < new_cover_by.size(); ++ne) {
        for (std::uint32_t s : new_cover_by[ne]) new_sets[s].push_back(ne);
    }

    // Drop empty and dominated sets (unit costs: a subset of another set
    // is never needed).  Subset checks only for moderate set counts.
    std::vector<std::uint32_t> alive;
    for (std::uint32_t s = 0; s < new_sets.size(); ++s) {
        if (!new_sets[s].empty() && !set_forced[s]) alive.push_back(s);
    }
    // Exact-duplicate removal.
    {
        std::map<std::vector<std::uint32_t>, std::uint32_t> seen;
        std::vector<std::uint32_t> kept;
        for (std::uint32_t s : alive) {
            auto [it, inserted] = seen.emplace(new_sets[s], s);
            if (inserted) kept.push_back(s);
        }
        alive = std::move(kept);
    }
    if (alive.size() <= 768) {
        std::vector<bool> dominated(new_sets.size(), false);
        for (std::uint32_t a : alive) {
            for (std::uint32_t b : alive) {
                if (a == b || dominated[a] || dominated[b]) continue;
                if (new_sets[a].size() < new_sets[b].size() ||
                    (new_sets[a].size() == new_sets[b].size() && a > b)) {
                    continue;
                }
                if (std::includes(new_sets[a].begin(), new_sets[a].end(),
                                  new_sets[b].begin(), new_sets[b].end())) {
                    dominated[b] = true;
                }
            }
        }
        std::erase_if(alive,
                      [&dominated](std::uint32_t s) { return dominated[s]; });
    }

    red.inst.num_elements = static_cast<std::uint32_t>(new_weight.size());
    red.inst.element_weight = std::move(new_weight);
    for (std::uint32_t s : alive) {
        red.set_map.push_back(s);
        red.inst.sets.push_back(std::move(new_sets[s]));
    }
    return red;
}

/// Exact branch and bound on a (preprocessed) instance.
struct CoverSearch {
    const SetCoverInstance& inst;
    std::uint64_t target;
    Clock::time_point deadline;
    std::size_t max_nodes;

    std::vector<std::vector<std::uint32_t>> cover_by;
    std::vector<bool> covered;
    std::vector<bool> chosen;
    std::vector<std::uint64_t> set_weight;  // static total weight per set
    std::uint64_t covered_weight = 0;
    std::size_t chosen_count = 0;

    std::size_t best_count = SIZE_MAX;
    std::vector<bool> best_chosen;
    std::size_t nodes = 0;
    bool exhausted = false;
    std::uint64_t max_set_weight = 1;

    CoverSearch(const SetCoverInstance& instance, std::uint64_t tgt,
                const SetCoverOptions& options)
        : inst(instance), target(tgt) {
        deadline = Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(options.time_limit_sec));
        max_nodes = options.max_nodes;
        cover_by.resize(inst.num_elements);
        for (std::uint32_t s = 0; s < inst.sets.size(); ++s) {
            std::uint64_t w = 0;
            for (std::uint32_t e : inst.sets[s]) {
                cover_by[e].push_back(s);
                w += inst.weight_of(e);
            }
            set_weight.push_back(w);
            max_set_weight = std::max(max_set_weight, std::max<std::uint64_t>(w, 1));
        }
        covered.assign(inst.num_elements, false);
        chosen.assign(inst.sets.size(), false);
    }

    [[nodiscard]] bool out_of_budget() {
        if (nodes > max_nodes || Clock::now() > deadline ||
            CancelToken::global().cancelled()) {
            // A cancellation request counts as budget exhaustion: the
            // search unwinds and the caller keeps the greedy incumbent.
            exhausted = true;
            return true;
        }
        return false;
    }

    void seed_incumbent(const SetCoverResult& greedy) {
        if (!greedy.feasible) return;
        best_count = greedy.chosen.size();
        best_chosen.assign(inst.sets.size(), false);
        for (std::uint32_t s : greedy.chosen) best_chosen[s] = true;
    }

    std::vector<std::uint32_t> apply(std::uint32_t s) {
        std::vector<std::uint32_t> newly;
        chosen[s] = true;
        ++chosen_count;
        for (std::uint32_t e : inst.sets[s]) {
            if (!covered[e]) {
                covered[e] = true;
                covered_weight += inst.weight_of(e);
                newly.push_back(e);
            }
        }
        return newly;
    }

    void unapply(std::uint32_t s, const std::vector<std::uint32_t>& newly) {
        chosen[s] = false;
        --chosen_count;
        for (std::uint32_t e : newly) {
            covered[e] = false;
            covered_weight -= inst.weight_of(e);
        }
    }

    void record() {
        if (chosen_count < best_count) {
            best_count = chosen_count;
            best_chosen = chosen;
        }
    }

    /// Full-cover DFS with element branching.
    void dfs_full() {
        ++nodes;
        if (out_of_budget()) return;
        if (covered_weight >= target) {
            record();
            return;
        }
        // Bound: remaining uncovered weight / largest set weight.
        const std::uint64_t remaining = target - covered_weight;
        const std::size_t lb =
            chosen_count + static_cast<std::size_t>(
                               (remaining + max_set_weight - 1) / max_set_weight);
        if (lb >= best_count) return;

        // Branch on the uncovered element with the fewest covering sets.
        std::uint32_t pick = UINT32_MAX;
        std::size_t pick_degree = SIZE_MAX;
        for (std::uint32_t e = 0; e < inst.num_elements; ++e) {
            if (covered[e]) continue;
            if (cover_by[e].size() < pick_degree) {
                pick_degree = cover_by[e].size();
                pick = e;
            }
        }
        if (pick == UINT32_MAX) return;  // nothing uncovered but weight? no
        // Try covering sets, largest static weight first.
        std::vector<std::uint32_t> order = cover_by[pick];
        std::sort(order.begin(), order.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      return set_weight[a] > set_weight[b];
                  });
        for (std::uint32_t s : order) {
            if (chosen[s]) continue;
            const auto newly = apply(s);
            dfs_full();
            unapply(s, newly);
            if (exhausted) return;
        }
    }

    /// Partial-cover DFS: include/exclude in static-weight order.
    void dfs_partial(std::size_t idx,
                     const std::vector<std::uint32_t>& order,
                     const std::vector<std::uint64_t>& suffix_best) {
        ++nodes;
        if (out_of_budget()) return;
        if (covered_weight >= target) {
            record();
            return;
        }
        if (idx >= order.size()) return;
        // Bound: how many further sets are needed if each contributed its
        // full static weight (sorted descending)?
        const std::uint64_t remaining = target - covered_weight;
        std::uint64_t acc = 0;
        std::size_t need = 0;
        for (std::size_t k = idx; k < order.size() && acc < remaining; ++k) {
            acc += set_weight[order[k]];
            ++need;
        }
        if (acc < remaining || chosen_count + need >= best_count) return;
        (void)suffix_best;

        // Include.
        const std::uint32_t s = order[idx];
        const auto newly = apply(s);
        if (chosen_count < best_count) {
            dfs_partial(idx + 1, order, suffix_best);
        }
        unapply(s, newly);
        if (exhausted) return;
        // Exclude.
        dfs_partial(idx + 1, order, suffix_best);
    }
};

SetCoverResult solve_set_cover_impl(const SetCoverInstance& instance,
                                    const SetCoverOptions& options) {
    const bool full = options.coverage >= 1.0 - 1e-12;
    const std::uint64_t global_target =
        coverage_target(instance, options.coverage);

    const Reduced red = preprocess(instance, full);
    const SetCoverResult greedy_fallback = greedy_set_cover(instance, options);

    // Residual target for the reduced instance.
    const std::uint64_t already = red.forced_weight;
    if (full && red.uncoverable_weight > 0) {
        // Full cover impossible; report the greedy best effort.
        SetCoverResult r = greedy_fallback;
        r.feasible = false;
        return r;
    }
    std::uint64_t reduced_target =
        global_target > already ? global_target - already : 0;
    reduced_target = std::min<std::uint64_t>(reduced_target,
                                             red.inst.total_weight());

    // Greedy incumbent on the reduced instance.
    SetCoverOptions reduced_opts = options;
    reduced_opts.coverage = red.inst.total_weight() == 0
                                ? 1.0
                                : static_cast<double>(reduced_target) /
                                      static_cast<double>(red.inst.total_weight());
    CoverSearch search(red.inst, reduced_target, options);
    search.seed_incumbent(greedy_set_cover(red.inst, reduced_opts));

    if (reduced_target > 0) {
        if (full) {
            search.dfs_full();
        } else {
            std::vector<std::uint32_t> order(red.inst.sets.size());
            std::iota(order.begin(), order.end(), 0);
            std::sort(order.begin(), order.end(),
                      [&search](std::uint32_t a, std::uint32_t b) {
                          return search.set_weight[a] > search.set_weight[b];
                      });
            search.dfs_partial(0, order, {});
        }
    } else {
        search.best_count = 0;
        search.best_chosen.assign(red.inst.sets.size(), false);
    }

    SetCoverResult result;
    result.nodes_explored = search.nodes;
    if (search.best_count == SIZE_MAX) {
        // No feasible cover found within budget; fall back to greedy.
        result = greedy_fallback;
        result.nodes_explored = search.nodes;
        result.proven_optimal = false;
        return result;
    }
    for (std::uint32_t s : red.forced) result.chosen.push_back(s);
    for (std::uint32_t rs = 0; rs < red.inst.sets.size(); ++rs) {
        if (search.best_chosen.size() > rs && search.best_chosen[rs]) {
            result.chosen.push_back(red.set_map[rs]);
        }
    }
    std::sort(result.chosen.begin(), result.chosen.end());
    result.proven_optimal = !search.exhausted;

    // Recompute covered weight on the original instance.
    std::vector<bool> covered(instance.num_elements, false);
    for (std::uint32_t s : result.chosen) {
        for (std::uint32_t e : instance.sets[s]) covered[e] = true;
    }
    for (std::uint32_t e = 0; e < instance.num_elements; ++e) {
        if (covered[e]) result.covered_weight += instance.weight_of(e);
    }
    result.feasible = result.covered_weight >= global_target;

    // The greedy fallback occasionally beats an exhausted search.
    if (!result.feasible ||
        (greedy_fallback.feasible &&
         greedy_fallback.chosen.size() < result.chosen.size())) {
        if (greedy_fallback.feasible) {
            SetCoverResult r = greedy_fallback;
            r.nodes_explored = search.nodes;
            r.proven_optimal = false;
            return r;
        }
    }
    return result;
}

}  // namespace

SetCoverResult solve_set_cover(const SetCoverInstance& instance,
                               const SetCoverOptions& options) {
    const TraceSpan span("set_cover", "opt");
    SetCoverOptions effective = options;
    if (FaultInjector::global().trip("solver.budget")) {
        // Injected budget exhaustion: zero the exact-search budget so
        // the solver takes its organic greedy-fallback path.
        effective.max_nodes = 0;
        effective.time_limit_sec = 0.0;
    }
    SetCoverResult result = solve_set_cover_impl(instance, effective);
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("opt.set_cover.solves").add(1);
    reg.counter("opt.set_cover.nodes").add(result.nodes_explored);
    reg.counter("opt.set_cover.elements").add(instance.num_elements);
    reg.counter("opt.set_cover.columns").add(instance.sets.size());
    if (!result.proven_optimal) {
        reg.counter("opt.set_cover.budget_exhausted").add(1);
    }
    return result;
}

IlpProblem set_cover_to_ilp(const SetCoverInstance& instance) {
    IlpProblem p;
    p.num_vars = instance.sets.size();
    p.objective.assign(p.num_vars, 1.0);
    std::vector<LpRow> rows(instance.num_elements);
    for (std::uint32_t s = 0; s < instance.sets.size(); ++s) {
        for (std::uint32_t e : instance.sets[s]) {
            rows[e].coeffs.emplace_back(s, 1.0);
        }
    }
    for (LpRow& r : rows) {
        r.rhs = 1.0;
        if (!r.coeffs.empty()) p.rows.push_back(std::move(r));
    }
    return p;
}

}  // namespace fastmon
