#include "opt/lp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/metrics.hpp"

namespace fastmon {

namespace {

constexpr double kEps = 1e-9;

/// LP solves happen per branch-and-bound node, so only cheap global
/// counters (no spans, no per-solve events).
void record_lp_metrics(const LpSolution& sol) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("opt.lp.solves").add(1);
    reg.counter("opt.lp.iterations").add(sol.iterations);
    if (sol.status == LpStatus::IterationLimit) {
        reg.counter("opt.lp.iteration_limit_hits").add(1);
    }
}

/// Dense simplex tableau.  Columns: structural vars, surplus vars,
/// artificial vars, RHS.  One row per constraint plus the objective row.
class Tableau {
public:
    Tableau(const LpProblem& p) {
        m_ = p.rows.size();
        n_ = p.num_vars;
        n_surplus_ = m_;
        // Artificial variables only for rows whose canonical form
        // (b >= 0) cannot use the surplus as the initial basic variable.
        art_of_row_.assign(m_, SIZE_MAX);
        std::size_t n_art = 0;
        for (std::size_t r = 0; r < m_; ++r) {
            if (p.rows[r].rhs > kEps) art_of_row_[r] = n_art++;
        }
        n_art_ = n_art;
        cols_ = n_ + n_surplus_ + n_art_ + 1;
        a_.assign(m_ + 1, std::vector<double>(cols_, 0.0));
        basis_.assign(m_, 0);

        for (std::size_t r = 0; r < m_; ++r) {
            const LpRow& row = p.rows[r];
            const double b = row.rhs;
            // a.x - s = b  (s surplus >= 0).
            const double sign = b > kEps ? 1.0 : -1.0;  // canonicalize rhs >= 0
            for (const auto& [v, c] : row.coeffs) {
                a_[r][v] += sign * c;
            }
            a_[r][n_ + r] = -sign;  // surplus
            a_[r][cols_ - 1] = sign * b;
            if (art_of_row_[r] != SIZE_MAX) {
                a_[r][n_ + n_surplus_ + art_of_row_[r]] = 1.0;
                basis_[r] = n_ + n_surplus_ + art_of_row_[r];
            } else {
                // rhs <= 0 canonicalized: the (negated) surplus column has
                // coefficient +1 and can start basic.
                basis_[r] = n_ + r;
            }
        }
    }

    /// Phase 1: minimize the sum of artificials.
    LpStatus phase1(std::size_t& iters, std::size_t max_iters) {
        if (n_art_ == 0) return LpStatus::Optimal;
        auto& z = a_[m_];
        std::fill(z.begin(), z.end(), 0.0);
        for (std::size_t j = n_ + n_surplus_; j < cols_ - 1; ++j) z[j] = 1.0;
        price_out();
        const LpStatus st = iterate(iters, max_iters);
        if (st != LpStatus::Optimal) return st;
        if (-a_[m_][cols_ - 1] > 1e-6) return LpStatus::Infeasible;
        // Pivot any artificial still (degenerately) in the basis out.
        for (std::size_t r = 0; r < m_; ++r) {
            if (basis_[r] < n_ + n_surplus_) continue;
            bool pivoted = false;
            for (std::size_t j = 0; j < n_ + n_surplus_ && !pivoted; ++j) {
                if (std::abs(a_[r][j]) > kEps) {
                    pivot(r, j);
                    pivoted = true;
                }
            }
            // A row with no eligible column is redundant; leave it.
        }
        return LpStatus::Optimal;
    }

    LpStatus phase2(const LpProblem& p, std::size_t& iters,
                    std::size_t max_iters) {
        auto& z = a_[m_];
        std::fill(z.begin(), z.end(), 0.0);
        for (std::size_t j = 0; j < n_; ++j) z[j] = p.objective[j];
        // Forbid artificials from re-entering.
        for (std::size_t j = n_ + n_surplus_; j < cols_ - 1; ++j) {
            z[j] = std::numeric_limits<double>::infinity();
        }
        price_out();
        return iterate(iters, max_iters);
    }

    [[nodiscard]] std::vector<double> extract(std::size_t num_vars) const {
        std::vector<double> x(num_vars, 0.0);
        for (std::size_t r = 0; r < m_; ++r) {
            if (basis_[r] < num_vars) x[basis_[r]] = a_[r][cols_ - 1];
        }
        return x;
    }

    [[nodiscard]] double objective_value() const { return -a_[m_][cols_ - 1]; }

private:
    void price_out() {
        // Make reduced costs of basic columns zero.
        for (std::size_t r = 0; r < m_; ++r) {
            const std::size_t j = basis_[r];
            const double cj = a_[m_][j];
            if (std::isinf(cj)) continue;  // artificial basic after phase 1
            if (std::abs(cj) <= kEps) continue;
            for (std::size_t k = 0; k < cols_; ++k) {
                a_[m_][k] -= cj * a_[r][k];
            }
        }
    }

    void pivot(std::size_t row, std::size_t col) {
        const double piv = a_[row][col];
        for (std::size_t k = 0; k < cols_; ++k) a_[row][k] /= piv;
        for (std::size_t r = 0; r <= m_; ++r) {
            if (r == row) continue;
            const double f = a_[r][col];
            if (std::abs(f) <= kEps || std::isinf(f)) continue;
            for (std::size_t k = 0; k < cols_; ++k) {
                a_[r][k] -= f * a_[row][k];
            }
        }
        basis_[row] = col;
    }

    LpStatus iterate(std::size_t& iters, std::size_t max_iters) {
        for (;;) {
            if (iters++ > max_iters) return LpStatus::IterationLimit;
            // Bland's rule: first column with negative reduced cost.
            std::size_t enter = SIZE_MAX;
            for (std::size_t j = 0; j < cols_ - 1; ++j) {
                const double rc = a_[m_][j];
                if (!std::isinf(rc) && rc < -kEps) {
                    enter = j;
                    break;
                }
            }
            if (enter == SIZE_MAX) return LpStatus::Optimal;
            // Ratio test, Bland tie-break on basis index.
            std::size_t leave = SIZE_MAX;
            double best = std::numeric_limits<double>::infinity();
            for (std::size_t r = 0; r < m_; ++r) {
                if (a_[r][enter] > kEps) {
                    const double ratio = a_[r][cols_ - 1] / a_[r][enter];
                    if (ratio < best - kEps ||
                        (ratio < best + kEps &&
                         (leave == SIZE_MAX || basis_[r] < basis_[leave]))) {
                        best = ratio;
                        leave = r;
                    }
                }
            }
            if (leave == SIZE_MAX) return LpStatus::Unbounded;
            pivot(leave, enter);
        }
    }

    std::size_t m_ = 0;
    std::size_t n_ = 0;
    std::size_t n_surplus_ = 0;
    std::size_t n_art_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::vector<double>> a_;
    std::vector<std::size_t> basis_;
    std::vector<std::size_t> art_of_row_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, std::size_t max_iterations) {
    LpSolution sol;
    if (problem.num_vars == 0) {
        // Feasible iff no row demands a positive rhs.
        for (const LpRow& r : problem.rows) {
            if (r.rhs > kEps) {
                sol.status = LpStatus::Infeasible;
                return sol;
            }
        }
        sol.status = LpStatus::Optimal;
        return sol;
    }
    Tableau t(problem);
    std::size_t iters = 0;
    LpStatus st = t.phase1(iters, max_iterations);
    if (st != LpStatus::Optimal) {
        sol.status = st;
        sol.iterations = iters;
        record_lp_metrics(sol);
        return sol;
    }
    st = t.phase2(problem, iters, max_iterations);
    sol.status = st;
    sol.iterations = iters;
    if (st == LpStatus::Optimal) {
        sol.x = t.extract(problem.num_vars);
        sol.objective = 0.0;
        for (std::size_t j = 0; j < problem.num_vars; ++j) {
            sol.objective += problem.objective[j] * sol.x[j];
        }
    }
    record_lp_metrics(sol);
    return sol;
}

}  // namespace fastmon
