// Dense two-phase primal simplex.
//
// Solves  min c.x  s.t.  A x >= b,  x >= 0  — the linear relaxation of
// the zero-one covering programs of Sec. IV-C.  The paper uses a
// commercial solver; this self-contained implementation (Bland's rule,
// two phases with artificial variables) replaces it for the problem
// sizes that survive the set-cover reductions.
#pragma once

#include <cstdint>
#include <vector>

namespace fastmon {

struct LpRow {
    /// Sparse coefficients: (variable index, value).
    std::vector<std::pair<std::uint32_t, double>> coeffs;
    double rhs = 0.0;  ///< constraint is  coeffs . x >= rhs
};

struct LpProblem {
    std::size_t num_vars = 0;
    std::vector<double> objective;  ///< minimized; size == num_vars
    std::vector<LpRow> rows;
};

enum class LpStatus : std::uint8_t {
    Optimal,
    Infeasible,
    Unbounded,
    IterationLimit,
};

struct LpSolution {
    LpStatus status = LpStatus::IterationLimit;
    double objective = 0.0;
    std::vector<double> x;
    /// Simplex pivots performed over both phases.
    std::size_t iterations = 0;
};

/// Solves the LP; `max_iterations` bounds total pivots over both phases.
LpSolution solve_lp(const LpProblem& problem, std::size_t max_iterations = 50000);

}  // namespace fastmon
