#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>

#include "util/fault_inject.hpp"

namespace fastmon::sat {

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby(std::uint64_t i) {
    std::uint64_t k = 1;
    while ((1ULL << (k + 1)) <= i + 1) ++k;
    while ((1ULL << k) - 1 != i + 1) {
        i -= (1ULL << k) - 1;
        k = 1;
        while ((1ULL << (k + 1)) <= i + 1) ++k;
    }
    return 1ULL << (k - 1);
}

constexpr double kActivityDecay = 1.0 / 0.95;
constexpr double kActivityRescale = 1e100;
constexpr std::uint64_t kRestartBase = 100;

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
    const auto v = static_cast<Var>(var_count_++);
    watches_.emplace_back();
    watches_.emplace_back();
    assign_.push_back(kUndef);
    phase_.push_back(1);  // default polarity: false (matches minisat)
    reason_.push_back(kNoClause);
    level_.push_back(0);
    activity_.push_back(0.0);
    heap_pos_.push_back(UINT32_MAX);
    seen_.push_back(0);
    model_.push_back(0);
    heap_insert(v);
    return v;
}

// --- activity heap (indexed binary max-heap over activity_) ----------

void Solver::heap_insert(Var v) {
    if (heap_pos_[v] != UINT32_MAX) return;
    heap_pos_[v] = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(v);
    heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[v]) break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<std::uint32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
    const Var v = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n) break;
        if (child + 1 < n &&
            activity_[heap_[child + 1]] > activity_[heap_[child]]) {
            ++child;
        }
        if (activity_[heap_[child]] <= activity_[v]) break;
        heap_[i] = heap_[child];
        heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
        i = child;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<std::uint32_t>(i);
}

Var Solver::heap_pop() {
    const Var top = heap_[0];
    heap_pos_[top] = UINT32_MAX;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_pos_[heap_[0]] = 0;
        heap_sift_down(0);
    }
    return top;
}

void Solver::bump_var(Var v) {
    activity_[v] += var_inc_;
    if (activity_[v] > kActivityRescale) {
        for (double& a : activity_) a *= 1.0 / kActivityRescale;
        var_inc_ *= 1.0 / kActivityRescale;
    }
    if (heap_pos_[v] != UINT32_MAX) heap_sift_up(heap_pos_[v]);
}

void Solver::decay_activities() { var_inc_ *= kActivityDecay; }

// --- clause management ------------------------------------------------

void Solver::attach_clause(ClauseRef cr) {
    const Clause& c = clauses_[cr];
    assert(c.lits.size() >= 2);
    watches_[(~c.lits[0]).code].push_back(Watcher{cr, c.lits[1]});
    watches_[(~c.lits[1]).code].push_back(Watcher{cr, c.lits[0]});
}

bool Solver::add_clause(std::span<const Lit> lits) {
    if (unsat_) return false;
    assert(trail_lim_.empty() && "add_clause only between solves");

    // Simplify against top-level facts; drop duplicates and tautologies.
    std::vector<Lit> c(lits.begin(), lits.end());
    std::sort(c.begin(), c.end(),
              [](Lit a, Lit b) { return a.code < b.code; });
    std::vector<Lit> out;
    for (std::size_t i = 0; i < c.size(); ++i) {
        const Lit l = c[i];
        if (i + 1 < c.size() && c[i + 1] == ~l) return true;  // tautology
        if (i > 0 && c[i - 1] == l) continue;                 // duplicate
        const std::uint8_t v = value(l);
        if (v == kTrue) return true;    // already satisfied at level 0
        if (v == kFalse) continue;      // falsified fact: drop literal
        out.push_back(l);
    }

    if (out.empty()) {
        unsat_ = true;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], kNoClause);
        if (propagate() != kNoClause) {
            unsat_ = true;
            return false;
        }
        return true;
    }
    const auto cr = static_cast<ClauseRef>(clauses_.size());
    clauses_.push_back(Clause{std::move(out)});
    attach_clause(cr);
    return true;
}

// --- trail ------------------------------------------------------------

void Solver::enqueue(Lit l, ClauseRef reason) {
    const Var v = l.var();
    assert(assign_[v] == kUndef);
    assign_[v] = l.sign() ? kFalse : kTrue;
    phase_[v] = l.sign() ? 1 : 0;
    reason_[v] = reason;
    level_[v] = static_cast<std::uint32_t>(trail_lim_.size());
    trail_.push_back(l);
}

void Solver::backtrack(int target_level) {
    if (static_cast<int>(trail_lim_.size()) <= target_level) return;
    const std::uint32_t bound = trail_lim_[static_cast<std::size_t>(target_level)];
    for (std::size_t i = trail_.size(); i > bound; --i) {
        const Var v = trail_[i - 1].var();
        assign_[v] = kUndef;
        reason_[v] = kNoClause;
        heap_insert(v);
    }
    trail_.resize(bound);
    trail_lim_.resize(static_cast<std::size_t>(target_level));
    qhead_ = trail_.size();
}

Solver::ClauseRef Solver::propagate() {
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++stats_.propagations;
        std::vector<Watcher>& ws = watches_[p.code];  // clauses watching ~p
        std::size_t i = 0;
        std::size_t j = 0;
        const std::size_t n = ws.size();
        while (i < n) {
            Watcher w = ws[i++];
            if (value(w.blocker) == kTrue) {
                ws[j++] = w;
                continue;
            }
            Clause& c = clauses_[w.clause];
            const Lit false_lit = ~p;
            if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
            assert(c.lits[1] == false_lit);
            const Lit first = c.lits[0];
            if (first != w.blocker && value(first) == kTrue) {
                ws[j++] = Watcher{w.clause, first};
                continue;
            }
            bool moved = false;
            for (std::size_t k = 2; k < c.lits.size(); ++k) {
                if (value(c.lits[k]) != kFalse) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[(~c.lits[1]).code].push_back(
                        Watcher{w.clause, first});
                    moved = true;
                    break;
                }
            }
            if (moved) continue;
            // Unit or conflicting.
            ws[j++] = Watcher{w.clause, first};
            if (value(first) == kFalse) {
                // Conflict: keep the remaining watchers and bail out.
                while (i < n) ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return w.clause;
            }
            enqueue(first, w.clause);
        }
        ws.resize(j);
    }
    return kNoClause;
}

// --- conflict analysis (first UIP) -----------------------------------

void Solver::analyze(ClauseRef confl, std::vector<Lit>& learnt,
                     int& backjump) {
    learnt.clear();
    learnt.push_back(Lit());  // slot for the asserting literal
    const auto current_level = static_cast<std::uint32_t>(trail_lim_.size());

    std::size_t counter = 0;
    Lit p;
    bool have_p = false;
    std::size_t index = trail_.size();

    for (;;) {
        assert(confl != kNoClause);
        const Clause& c = clauses_[confl];
        for (const Lit q : c.lits) {
            if (have_p && q == p) continue;
            const Var v = q.var();
            if (seen_[v] != 0 || level_[v] == 0) continue;
            seen_[v] = 1;
            bump_var(v);
            if (level_[v] >= current_level) {
                ++counter;
            } else {
                learnt.push_back(q);
            }
        }
        // Next trail literal marked seen (walk back to the UIP).
        while (seen_[trail_[index - 1].var()] == 0) --index;
        --index;
        p = trail_[index];
        have_p = true;
        seen_[p.var()] = 0;
        --counter;
        if (counter == 0) break;
        confl = reason_[p.var()];
    }
    learnt[0] = ~p;

    // Backjump level: highest level among the non-asserting literals
    // (that literal is moved to slot 1 so attach_clause watches it).
    if (learnt.size() == 1) {
        backjump = 0;
    } else {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < learnt.size(); ++i) {
            if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) {
                max_i = i;
            }
        }
        std::swap(learnt[1], learnt[max_i]);
        backjump = static_cast<int>(level_[learnt[1].var()]);
    }
    for (std::size_t i = 1; i < learnt.size(); ++i) seen_[learnt[i].var()] = 0;
}

// --- branching --------------------------------------------------------

Lit Solver::pick_branch() {
    while (!heap_.empty()) {
        const Var v = heap_pop();
        if (assign_[v] == kUndef) {
            return Lit(v, phase_[v] != 0);
        }
    }
    Lit none;
    none.code = UINT32_MAX;  // heap exhausted: full assignment
    return none;
}

// --- main search ------------------------------------------------------

SolveStatus Solver::solve(std::span<const Lit> assumptions) {
    ++stats_.solves;
    if (unsat_) return SolveStatus::Unsat;
    // Test hook: forced budget exhaustion, exercising the Unknown path.
    if (FaultInjector::global().trip("solver.sat_budget")) {
        return SolveStatus::Unknown;
    }

    backtrack(0);
    if (propagate() != kNoClause) {
        unsat_ = true;
        return SolveStatus::Unsat;
    }

    std::uint64_t conflicts_this_solve = 0;
    std::uint64_t restart_seq = 0;
    std::uint64_t restart_limit = kRestartBase * luby(restart_seq);
    std::vector<Lit> learnt;

    for (;;) {
        const ClauseRef confl = propagate();
        if (confl != kNoClause) {
            ++stats_.conflicts;
            ++conflicts_this_solve;
            if (trail_lim_.empty()) {
                unsat_ = true;
                return SolveStatus::Unsat;
            }
            // Conflict inside the assumption prefix: no model can exist
            // under these assumptions (every decision so far is forced).
            if (trail_lim_.size() <= assumptions.size()) {
                backtrack(0);
                return SolveStatus::Unsat;
            }
            int backjump = 0;
            analyze(confl, learnt, backjump);
            // Never jump into the middle of the assumption prefix with a
            // pending asserting literal: land at the prefix boundary and
            // let the outer loop re-establish assumptions.
            backtrack(backjump);
            if (learnt.size() == 1) {
                enqueue(learnt[0], kNoClause);  // backjump was 0
            } else {
                const auto cr = static_cast<ClauseRef>(clauses_.size());
                clauses_.push_back(Clause{learnt});
                attach_clause(cr);
                ++stats_.learned_clauses;
                enqueue(learnt[0], cr);
            }
            decay_activities();
            if (budget_ != 0 && conflicts_this_solve >= budget_) {
                backtrack(0);
                return SolveStatus::Unknown;
            }
            if (conflicts_this_solve >= restart_limit) {
                ++stats_.restarts;
                ++restart_seq;
                restart_limit =
                    conflicts_this_solve + kRestartBase * luby(restart_seq);
                backtrack(0);
            }
            continue;
        }

        // Establish the next pending assumption as a forced decision.
        if (trail_lim_.size() < assumptions.size()) {
            const Lit a = assumptions[trail_lim_.size()];
            const std::uint8_t v = value(a);
            if (v == kFalse) {
                backtrack(0);
                return SolveStatus::Unsat;
            }
            trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
            if (v == kUndef) enqueue(a, kNoClause);
            continue;
        }

        const Lit next = pick_branch();
        if (next.code == UINT32_MAX) {
            // Full assignment: record the model.
            for (Var v = 0; v < var_count_; ++v) {
                model_[v] = assign_[v] == kTrue ? 1 : 0;
            }
            backtrack(0);
            return SolveStatus::Sat;
        }
        ++stats_.decisions;
        trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
        enqueue(next, kNoClause);
    }
}

}  // namespace fastmon::sat
