// Small incremental CDCL SAT solver (minisat lineage).
//
// Built for the SAT-based transition-fault ATPG (atpg/sat_atpg.hpp):
// the circuit CNF is encoded once, then thousands of per-fault queries
// run as solve(assumptions) calls against the same instance, each fault
// differing only in its assumption literals.  Learned clauses therefore
// persist and transfer across the whole fault list — the incremental
// idiom of SAT-based model checkers over AIGs.
//
// Feature set (deliberately lean):
//   * two-watched-literal unit propagation,
//   * first-UIP conflict analysis with non-chronological backjumping,
//   * exponential VSIDS variable activities with phase saving,
//   * Luby-sequence restarts,
//   * assumption-based solving (no clause removal; callers deactivate
//     clause groups by dropping the group's selector assumption),
//   * a per-solve conflict budget that returns Unknown instead of
//     looping forever (the ATPG maps Unknown to "aborted", exactly like
//     PODEM's backtrack limit).
//
// Not thread-safe: one Solver per thread.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fastmon::sat {

/// 0-based variable index.
using Var = std::uint32_t;

/// Literal encoded as 2*var + sign (sign 1 = negated), minisat-style.
struct Lit {
    std::uint32_t code = 0;

    Lit() = default;
    Lit(Var v, bool negated) : code(2 * v + (negated ? 1U : 0U)) {}

    [[nodiscard]] Var var() const { return code >> 1; }
    [[nodiscard]] bool sign() const { return (code & 1U) != 0; }
    [[nodiscard]] Lit operator~() const {
        Lit l;
        l.code = code ^ 1U;
        return l;
    }
    friend bool operator==(const Lit&, const Lit&) = default;
};

/// Positive literal of `v`.
inline Lit mk_lit(Var v) { return Lit(v, false); }

enum class SolveStatus : std::uint8_t {
    Sat,      ///< model available via model_value()
    Unsat,    ///< no model under the given assumptions
    Unknown,  ///< conflict budget exhausted before a verdict
};

struct SolverStats {
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t learned_clauses = 0;
    std::uint64_t restarts = 0;
    std::uint64_t solves = 0;
};

class Solver {
public:
    Solver();

    /// Adds a fresh variable and returns it.
    Var new_var();

    [[nodiscard]] std::size_t num_vars() const { return var_count_; }
    [[nodiscard]] std::size_t num_clauses() const { return clauses_.size(); }

    /// Adds a clause over existing variables.  Returns false when the
    /// clause (after simplification against top-level facts) makes the
    /// formula trivially unsatisfiable; the solver is then permanently
    /// UNSAT.  Duplicate literals are merged; tautologies are dropped.
    bool add_clause(std::span<const Lit> lits);
    bool add_clause(std::initializer_list<Lit> lits) {
        return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
    }

    /// Per-solve conflict cap; 0 = unlimited.  Exhaustion yields
    /// SolveStatus::Unknown.
    void set_conflict_budget(std::uint64_t budget) { budget_ = budget; }

    /// Solves under the given assumption literals.  The instance stays
    /// valid afterwards (learned clauses are kept) whatever the result.
    [[nodiscard]] SolveStatus solve(std::span<const Lit> assumptions);
    [[nodiscard]] SolveStatus solve() { return solve({}); }

    /// Model value of `v` after a Sat result.
    [[nodiscard]] bool model_value(Var v) const { return model_[v] != 0; }

    [[nodiscard]] const SolverStats& stats() const { return stats_; }

private:
    // Truth values of the trail: 0 = true, 1 = false, 2 = unassigned
    // (lbool encoding: value(lit) = assign[var] ^ sign).
    static constexpr std::uint8_t kTrue = 0;
    static constexpr std::uint8_t kFalse = 1;
    static constexpr std::uint8_t kUndef = 2;

    using ClauseRef = std::uint32_t;
    static constexpr ClauseRef kNoClause = UINT32_MAX;

    struct Clause {
        std::vector<Lit> lits;
    };

    struct Watcher {
        ClauseRef clause;
        Lit blocker;  ///< some other literal of the clause, checked first
    };

    [[nodiscard]] std::uint8_t value(Lit l) const {
        const std::uint8_t a = assign_[l.var()];
        return a == kUndef ? kUndef : static_cast<std::uint8_t>(a ^ (l.sign() ? 1 : 0));
    }

    void enqueue(Lit l, ClauseRef reason);
    [[nodiscard]] ClauseRef propagate();
    void analyze(ClauseRef confl, std::vector<Lit>& learnt, int& backjump);
    void backtrack(int level);
    [[nodiscard]] Lit pick_branch();
    void bump_var(Var v);
    void decay_activities();
    void attach_clause(ClauseRef cr);

    std::size_t var_count_ = 0;
    std::vector<Clause> clauses_;
    std::vector<std::vector<Watcher>> watches_;  ///< indexed by lit code

    std::vector<std::uint8_t> assign_;   ///< per var: kTrue/kFalse/kUndef
    std::vector<std::uint8_t> phase_;    ///< saved phase per var
    std::vector<ClauseRef> reason_;      ///< per var
    std::vector<std::uint32_t> level_;   ///< per var
    std::vector<Lit> trail_;
    std::vector<std::uint32_t> trail_lim_;  ///< trail index per decision level
    std::size_t qhead_ = 0;

    std::vector<double> activity_;
    double var_inc_ = 1.0;
    // Binary-heap order index for branching (lazy: rebuilt per solve).
    std::vector<Var> heap_;
    std::vector<std::uint32_t> heap_pos_;
    void heap_insert(Var v);
    void heap_sift_up(std::size_t i);
    void heap_sift_down(std::size_t i);
    [[nodiscard]] Var heap_pop();

    std::vector<std::uint8_t> seen_;  ///< scratch of analyze()
    std::vector<std::uint8_t> model_;

    bool unsat_ = false;  ///< top-level (assumption-free) contradiction
    std::uint64_t budget_ = 0;
    SolverStats stats_;
};

}  // namespace fastmon::sat
