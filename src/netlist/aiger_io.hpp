// Reader/writer for the AIGER and-inverter-graph format.
//
// Both encodings are supported on the read side:
//   .aag — ASCII ("aag M I L O A" header, one definition per line),
//   .aig — binary (implicit input/AND numbering, delta-compressed
//          AND pairs as 7-bit varints).
//
// AND nodes map to CellType::And, negated literal uses materialize one
// shared CellType::Inv node per variable, and latches become
// CellType::Dff nodes (Q as pseudo primary input, next-state literal as
// the D fanin — AIGER's latch semantics match the netlist's scan view).
// Constant literals (0/1) are synthesized as XOR/XNOR of an existing
// source with itself.  Symbol-table names are honoured when present.
//
// The writer emits ASCII .aag for any finalized netlist by
// tech-mapping every library cell onto AND/INV structure; reading the
// result back therefore yields an equivalent (not structurally
// identical) netlist, while .aag produced by write_aag round-trips to
// an identical AIG.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace fastmon {

/// Parses an AIGER description (ASCII or binary, detected from the
/// header).  Throws Diagnostic (a std::runtime_error subclass carrying
/// file/line/excerpt) on malformed input.  `file_path` only labels
/// diagnostics and may be empty.  The stream must have been opened in
/// binary mode for .aig inputs.
Netlist read_aiger(std::istream& is, std::string circuit_name,
                   const std::string& file_path = {});
Netlist read_aiger_file(const std::string& path);
Netlist read_aiger_string(const std::string& text, std::string circuit_name);

/// Writes `netlist` as ASCII AIGER (.aag), decomposing every
/// combinational cell into AND/INV nodes.  Requires a finalized
/// netlist.
void write_aag(std::ostream& os, const Netlist& netlist);
std::string write_aag_string(const Netlist& netlist);

}  // namespace fastmon
