// Parameterized real-world circuit structures.
//
// Deterministic generators for classic sequential blocks — LFSRs,
// binary counters, shift registers and a pipelined parity tree — used
// as additional realistic testbenches beside the random ISCAS-like
// generator: their logic is regular, their functional behaviour is
// known in closed form (and property-tested), and their path-depth
// profiles differ sharply from random logic.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fastmon {

/// Fibonacci LFSR: `width` bits, feedback XOR over `taps` (1-based bit
/// positions, tap `width` is implicit).  An `enable` primary input
/// gates the feedback into bit 0 (so the combinational core has primary
/// inputs).  Output pads expose all state bits.
Netlist make_lfsr(std::size_t width, const std::vector<std::size_t>& taps,
                  const std::string& name = "lfsr");

/// Maximal-length taps for a few common widths (4, 8, 16); throws for
/// unsupported widths.
std::vector<std::size_t> maximal_lfsr_taps(std::size_t width);

/// Synchronous binary up-counter with enable: `width` bits of
/// toggle-carry logic.
Netlist make_counter(std::size_t width, const std::string& name = "counter");

/// Serial-in shift register of `depth` stages with a serial output.
Netlist make_shift_register(std::size_t depth,
                            const std::string& name = "shiftreg");

/// Registered parity (XOR) tree over 2^levels primary inputs.
Netlist make_parity_tree(std::size_t levels,
                         const std::string& name = "parity");

}  // namespace fastmon
