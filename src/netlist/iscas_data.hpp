// Embedded public-domain benchmark circuits.
//
// s27 is the smallest ISCAS'89 sequential benchmark and is embedded
// verbatim; it anchors the test suite to a real, published netlist.
// The two "mini" circuits are hand-written designs (a registered
// ripple-carry adder and a small ALU slice) used by tests and examples.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace fastmon {

/// The ISCAS'89 s27 benchmark (4 PIs, 1 PO, 3 DFFs, 10 gates).
Netlist make_s27();

/// A registered 4-bit ripple-carry adder (9 PIs, 8 DFFs feeding 5 POs).
Netlist make_mini_adder();

/// A small registered ALU slice: 2x4-bit operands, 2-bit opcode
/// (AND/OR/XOR/ADD), registered result.
Netlist make_mini_alu();

/// Names of all embedded circuits.
const std::vector<std::string>& embedded_circuit_names();

/// Lookup by name; throws on unknown names.
Netlist make_embedded_circuit(const std::string& name);

}  // namespace fastmon
