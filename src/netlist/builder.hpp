// Fluent programmatic construction of netlists (tests, examples).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace fastmon {

/// Thin convenience wrapper around Netlist that tracks names, so small
/// circuits can be written as a sequence of named equations.
class NetlistBuilder {
public:
    explicit NetlistBuilder(std::string circuit_name)
        : netlist_(std::move(circuit_name)) {}

    /// Declares a primary input.
    NetlistBuilder& input(const std::string& name);

    /// Declares `sig` as driven by `type` over the named fanins.
    NetlistBuilder& gate(CellType type, const std::string& sig,
                         const std::vector<std::string>& fanins);

    /// Declares a flip-flop: q = DFF(d).  `d` must already be defined;
    /// for feedback loops declare with dff_declare() and wire the D input
    /// later with dff_connect().
    NetlistBuilder& dff(const std::string& q, const std::string& d);

    /// Declares a flip-flop output `q` whose D input is wired later.
    NetlistBuilder& dff_declare(const std::string& q);

    /// Wires the D input of a previously declared flip-flop.
    NetlistBuilder& dff_connect(const std::string& q, const std::string& d);

    /// Marks a signal as primary output (creates the pad node).
    NetlistBuilder& output(const std::string& sig);

    // Shorthands.
    NetlistBuilder& inv(const std::string& out, const std::string& in) {
        return gate(CellType::Inv, out, {in});
    }
    NetlistBuilder& buf(const std::string& out, const std::string& in) {
        return gate(CellType::Buf, out, {in});
    }
    NetlistBuilder& and2(const std::string& out, const std::string& a,
                         const std::string& b) {
        return gate(CellType::And, out, {a, b});
    }
    NetlistBuilder& nand2(const std::string& out, const std::string& a,
                          const std::string& b) {
        return gate(CellType::Nand, out, {a, b});
    }
    NetlistBuilder& or2(const std::string& out, const std::string& a,
                        const std::string& b) {
        return gate(CellType::Or, out, {a, b});
    }
    NetlistBuilder& nor2(const std::string& out, const std::string& a,
                         const std::string& b) {
        return gate(CellType::Nor, out, {a, b});
    }
    NetlistBuilder& xor2(const std::string& out, const std::string& a,
                         const std::string& b) {
        return gate(CellType::Xor, out, {a, b});
    }

    /// Finalizes and returns the netlist (builder becomes unusable).
    Netlist build();

private:
    GateId resolve(const std::string& name) const;

    Netlist netlist_;
};

}  // namespace fastmon
