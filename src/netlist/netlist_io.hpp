// Unified netlist reading front end.
//
// read_netlist(path) dispatches on the file extension:
//   .bench          → ISCAS'89 bench reader      (bench_io.hpp)
//   .v              → structural Verilog reader  (verilog_io.hpp)
//   .aag / .aig     → AIGER reader, ASCII/binary (aiger_io.hpp)
//
// Tools and flows should use this instead of the per-format
// read_*_file entry points, which remain as thin delegates for
// existing callers.  Errors surface as Diagnostic (unknown extension,
// unreadable file) or as the underlying parser's error type.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace fastmon {

enum class NetlistFormat : std::uint8_t {
    Bench,    ///< ISCAS'89 .bench
    Verilog,  ///< structural Verilog subset (.v)
    Aiger,    ///< AIGER .aag/.aig (ASCII vs binary detected from header)
};

std::string_view netlist_format_name(NetlistFormat format);

/// Format implied by a path's extension, or nullopt if unrecognized.
std::optional<NetlistFormat> netlist_format_from_path(std::string_view path);

/// Reads a netlist file, dispatching on the extension.  Throws
/// Diagnostic for unknown extensions or unopenable files.
Netlist read_netlist(const std::string& path);

/// Reads a netlist file in an explicitly chosen format, ignoring the
/// extension.
Netlist read_netlist(const std::string& path, NetlistFormat format);

}  // namespace fastmon
