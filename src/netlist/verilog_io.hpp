// Structural (gate-level) Verilog subset reader/writer.
//
// Benchmark suites (ISCAS, ITC'99) and synthesis flows commonly
// exchange netlists as structural Verilog; this module supports the
// subset such netlists use:
//
//   module NAME (port, ...);
//     input  a, b;            // also input [3:0] bus;
//     output y;
//     wire   w1, w2;
//     nand   g1 (y, a, b);    // output first, primitive gates
//     not    g2 (w1, a);
//     dff    g3 (q, d);       // non-standard but customary in benchmarks
//   endmodule
//
// Buses are scalarized to name[i] wires.  Assign statements of the form
// `assign y = a;` become buffers.  Writer emits the same subset.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace fastmon {

/// Parses a single structural module.  Throws std::runtime_error with a
/// line-numbered message on anything outside the subset.
Netlist read_verilog(std::istream& is);
Netlist read_verilog_file(const std::string& path);
Netlist read_verilog_string(const std::string& text);

/// Writes `netlist` as a structural module (inverse of read_verilog up
/// to ordering; pad nodes become output ports).
void write_verilog(std::ostream& os, const Netlist& netlist);
std::string write_verilog_string(const Netlist& netlist);

}  // namespace fastmon
