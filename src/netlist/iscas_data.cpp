#include "netlist/iscas_data.hpp"

#include <stdexcept>

#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"

namespace fastmon {

namespace {

constexpr const char* kS27Bench = R"(# s27 — ISCAS'89 benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

}  // namespace

Netlist make_s27() {
    return read_bench_string(kS27Bench, "s27");
}

Netlist make_mini_adder() {
    NetlistBuilder b("mini_adder");
    // Operand registers a0..a3, b0..b3 loaded from primary inputs through
    // a load-enable mux; sum is registered combinationally visible at POs.
    for (int i = 0; i < 4; ++i) {
        b.input("ia" + std::to_string(i));
        b.input("ib" + std::to_string(i));
    }
    b.input("cin");
    for (int i = 0; i < 4; ++i) {
        b.dff("a" + std::to_string(i), "ia" + std::to_string(i));
        b.dff("b" + std::to_string(i), "ib" + std::to_string(i));
    }
    std::string carry = "cin";
    for (int i = 0; i < 4; ++i) {
        const std::string ai = "a" + std::to_string(i);
        const std::string bi = "b" + std::to_string(i);
        const std::string n = std::to_string(i);
        b.xor2("p" + n, ai, bi);
        b.xor2("s" + n, "p" + n, carry);
        b.and2("g" + n, ai, bi);
        b.and2("t" + n, "p" + n, carry);
        b.or2("c" + n, "g" + n, "t" + n);
        carry = "c" + n;
        b.output("s" + n);
    }
    b.output(carry);
    return b.build();
}

Netlist make_mini_alu() {
    NetlistBuilder b("mini_alu");
    for (int i = 0; i < 4; ++i) {
        b.input("x" + std::to_string(i));
        b.input("y" + std::to_string(i));
    }
    b.input("op0");
    b.input("op1");
    std::string carry;
    for (int i = 0; i < 4; ++i) {
        const std::string n = std::to_string(i);
        const std::string xi = "x" + n;
        const std::string yi = "y" + n;
        b.and2("and" + n, xi, yi);
        b.or2("or" + n, xi, yi);
        b.xor2("xor" + n, xi, yi);
        // Adder bit (carry chain).
        if (i == 0) {
            b.buf("sum0", "xor0");
            b.buf("c0", "and0");
        } else {
            b.xor2("sum" + n, "xor" + n, carry);
            b.and2("t" + n, "xor" + n, carry);
            b.or2("c" + n, "and" + n, "t" + n);
        }
        carry = "c" + n;
        // Result mux: op = 00 -> AND, 01 -> OR, 10 -> XOR, 11 -> ADD.
        b.gate(CellType::Mux2, "m0_" + n, {"op0", "and" + n, "or" + n});
        b.gate(CellType::Mux2, "m1_" + n, {"op0", "xor" + n, "sum" + n});
        b.gate(CellType::Mux2, "r" + n, {"op1", "m0_" + n, "m1_" + n});
        b.dff("q" + n, "r" + n);
        b.output("q" + n);
    }
    b.output(carry);
    return b.build();
}

const std::vector<std::string>& embedded_circuit_names() {
    static const std::vector<std::string> kNames = {"s27", "mini_adder",
                                                    "mini_alu"};
    return kNames;
}

Netlist make_embedded_circuit(const std::string& name) {
    if (name == "s27") return make_s27();
    if (name == "mini_adder") return make_mini_adder();
    if (name == "mini_alu") return make_mini_alu();
    throw std::runtime_error("unknown embedded circuit: " + name);
}

}  // namespace fastmon
