#include "netlist/aiger_io.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/diagnostic.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {

namespace {

// Upper bound on any single header count.  AIGER headers are attacker
// (or fuzzer) controlled; without a cap a mutated count would drive a
// multi-gigabyte allocation before the first literal is even read.
constexpr std::uint64_t kMaxCount = 10'000'000;

struct AigLatch {
    std::uint64_t lhs = 0;   ///< current-state literal (even)
    std::uint64_t next = 0;  ///< next-state literal
};

struct AigAnd {
    std::uint64_t lhs = 0;
    std::uint64_t rhs0 = 0;
    std::uint64_t rhs1 = 0;
};

/// Raw parse of an AIGER file, before netlist construction.
struct AigFile {
    std::uint64_t max_var = 0;
    std::vector<std::uint64_t> inputs;  ///< even literals
    std::vector<AigLatch> latches;
    std::vector<std::uint64_t> outputs;  ///< arbitrary literals
    std::vector<AigAnd> ands;
    std::unordered_map<std::size_t, std::string> input_names;
    std::unordered_map<std::size_t, std::string> latch_names;
    std::unordered_map<std::size_t, std::string> output_names;
};

class AigerParser {
public:
    AigerParser(std::string data, const std::string& file_path)
        : data_(std::move(data)), file_path_(file_path) {}

    AigFile parse() {
        AigFile aig;
        parse_header();
        aig.max_var = m_;
        if (binary_) {
            parse_binary_body(aig);
        } else {
            parse_ascii_body(aig);
        }
        parse_symbols(aig);
        return aig;
    }

private:
    [[noreturn]] void fail(const std::string& msg,
                           const std::string& excerpt = {}) const {
        throw Diagnostic("aiger", file_path_, line_no_, 0, msg, excerpt);
    }

    [[nodiscard]] bool at_end() const { return pos_ >= data_.size(); }

    /// Next '\n'-terminated line (CR stripped); fails when `required`
    /// and the data is exhausted.
    std::string next_line(const char* what) {
        if (at_end()) fail(std::string("unexpected end of file: expected ") + what);
        ++line_no_;
        const auto nl = data_.find('\n', pos_);
        std::string line = nl == std::string::npos
                               ? data_.substr(pos_)
                               : data_.substr(pos_, nl - pos_);
        pos_ = nl == std::string::npos ? data_.size() : nl + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
    }

    /// Splits a line into whitespace-separated unsigned integers.
    std::vector<std::uint64_t> parse_uints(const std::string& line,
                                           std::size_t min_count,
                                           std::size_t max_count,
                                           const char* what) {
        std::vector<std::uint64_t> out;
        std::size_t i = 0;
        while (i < line.size()) {
            while (i < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[i]))) {
                ++i;
            }
            if (i >= line.size()) break;
            if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
                fail(std::string("expected unsigned integer in ") + what, line);
            }
            std::uint64_t v = 0;
            while (i < line.size() &&
                   std::isdigit(static_cast<unsigned char>(line[i]))) {
                v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
                if (v > (std::uint64_t(1) << 40)) {
                    fail(std::string("integer out of range in ") + what, line);
                }
                ++i;
            }
            out.push_back(v);
        }
        if (out.size() < min_count || out.size() > max_count) {
            fail(std::string("wrong field count in ") + what, line);
        }
        return out;
    }

    void parse_header() {
        const std::string line = next_line("header");
        std::istringstream hs(line);
        std::string magic;
        hs >> magic;
        if (magic == "aig") {
            binary_ = true;
        } else if (magic != "aag") {
            fail("not an AIGER file: header must start with 'aag' or 'aig'",
                 line);
        }
        const auto counts = parse_uints(line.substr(magic.size()), 5, 5,
                                        "header (need M I L O A)");
        m_ = counts[0];
        i_ = counts[1];
        l_ = counts[2];
        o_ = counts[3];
        a_ = counts[4];
        for (std::uint64_t c : {m_, i_, l_, o_, a_}) {
            if (c > kMaxCount) fail("header count too large", line);
        }
        if (i_ + l_ + a_ > m_) {
            fail("inconsistent header: I + L + A exceeds M", line);
        }
        if (binary_ && i_ + l_ + a_ != m_) {
            fail("inconsistent binary header: M must equal I + L + A", line);
        }
    }

    void check_literal(std::uint64_t lit, const std::string& line) {
        if (lit > 2 * m_ + 1) {
            fail("literal " + std::to_string(lit) + " exceeds maxvar " +
                     std::to_string(m_),
                 line);
        }
    }

    void parse_latch_fields(const std::vector<std::uint64_t>& fields,
                            std::size_t lhs_field, std::uint64_t implicit_lhs,
                            const std::string& line, AigFile& aig) {
        AigLatch latch;
        latch.lhs = lhs_field < fields.size() ? fields[lhs_field] : implicit_lhs;
        latch.next = fields[lhs_field < fields.size() ? lhs_field + 1 : 0];
        check_literal(latch.lhs, line);
        check_literal(latch.next, line);
        if ((latch.lhs & 1) != 0 || latch.lhs == 0) {
            fail("latch literal must be a positive even literal", line);
        }
        // AIGER 1.9 optional reset value: only the default (0) is
        // representable as a netlist DFF.
        const std::size_t reset_field =
            lhs_field < fields.size() ? lhs_field + 2 : 1;
        if (fields.size() > reset_field && fields[reset_field] != 0) {
            fail("unsupported non-zero latch reset value", line);
        }
        aig.latches.push_back(latch);
    }

    void parse_ascii_body(AigFile& aig) {
        for (std::uint64_t k = 0; k < i_; ++k) {
            const std::string line = next_line("input definition");
            const auto f = parse_uints(line, 1, 1, "input definition");
            check_literal(f[0], line);
            if ((f[0] & 1) != 0 || f[0] == 0) {
                fail("input literal must be a positive even literal", line);
            }
            aig.inputs.push_back(f[0]);
        }
        for (std::uint64_t k = 0; k < l_; ++k) {
            const std::string line = next_line("latch definition");
            const auto f = parse_uints(line, 2, 3, "latch definition");
            parse_latch_fields(f, 0, 0, line, aig);
        }
        for (std::uint64_t k = 0; k < o_; ++k) {
            const std::string line = next_line("output definition");
            const auto f = parse_uints(line, 1, 1, "output definition");
            check_literal(f[0], line);
            aig.outputs.push_back(f[0]);
        }
        for (std::uint64_t k = 0; k < a_; ++k) {
            const std::string line = next_line("and definition");
            const auto f = parse_uints(line, 3, 3, "and definition");
            for (std::uint64_t lit : f) check_literal(lit, line);
            if ((f[0] & 1) != 0 || f[0] == 0) {
                fail("and literal must be a positive even literal", line);
            }
            aig.ands.push_back(AigAnd{f[0], f[1], f[2]});
        }
    }

    /// LEB128-style delta decode of the binary AND section.
    std::uint64_t decode_varint() {
        std::uint64_t x = 0;
        unsigned shift = 0;
        while (true) {
            if (at_end()) fail("truncated binary and section (EOF mid-varint)");
            const auto ch = static_cast<unsigned char>(data_[pos_++]);
            x |= static_cast<std::uint64_t>(ch & 0x7F) << shift;
            if ((ch & 0x80) == 0) break;
            shift += 7;
            if (shift > 42) fail("varint overflow in binary and section");
        }
        return x;
    }

    void parse_binary_body(AigFile& aig) {
        for (std::uint64_t k = 0; k < i_; ++k) {
            aig.inputs.push_back(2 * (k + 1));
        }
        for (std::uint64_t k = 0; k < l_; ++k) {
            const std::string line = next_line("latch definition");
            const auto f = parse_uints(line, 1, 2, "latch definition");
            parse_latch_fields(f, f.size(), 2 * (i_ + k + 1), line, aig);
        }
        for (std::uint64_t k = 0; k < o_; ++k) {
            const std::string line = next_line("output definition");
            const auto f = parse_uints(line, 1, 1, "output definition");
            check_literal(f[0], line);
            aig.outputs.push_back(f[0]);
        }
        for (std::uint64_t k = 0; k < a_; ++k) {
            const std::uint64_t lhs = 2 * (i_ + l_ + k + 1);
            const std::uint64_t delta0 = decode_varint();
            if (delta0 > lhs) {
                fail("binary and node " + std::to_string(lhs) +
                     ": delta exceeds lhs (corrupt ordering)");
            }
            const std::uint64_t rhs0 = lhs - delta0;
            const std::uint64_t delta1 = decode_varint();
            if (delta1 > rhs0) {
                fail("binary and node " + std::to_string(lhs) +
                     ": second delta exceeds first rhs");
            }
            aig.ands.push_back(AigAnd{lhs, rhs0, rhs0 - delta1});
        }
    }

    void parse_symbols(AigFile& aig) {
        while (!at_end()) {
            const std::string line = next_line("symbol table");
            if (line.empty()) continue;
            if (line[0] == 'c') return;  // comment section: ignore the rest
            const char kind = line[0];
            if (kind != 'i' && kind != 'l' && kind != 'o') {
                fail("expected symbol entry (i/l/o) or comment section", line);
            }
            std::size_t i = 1, index = 0;
            if (i >= line.size() ||
                !std::isdigit(static_cast<unsigned char>(line[i]))) {
                fail("malformed symbol entry", line);
            }
            while (i < line.size() &&
                   std::isdigit(static_cast<unsigned char>(line[i]))) {
                index = index * 10 + static_cast<std::size_t>(line[i] - '0');
                if (index > kMaxCount) fail("symbol index out of range", line);
                ++i;
            }
            if (i >= line.size() || line[i] != ' ') {
                fail("malformed symbol entry", line);
            }
            const std::string name = line.substr(i + 1);
            if (name.empty()) fail("empty symbol name", line);
            const std::size_t limit = kind == 'i'   ? aig.inputs.size()
                                      : kind == 'l' ? aig.latches.size()
                                                    : aig.outputs.size();
            if (index >= limit) {
                fail("symbol index out of range for '" + std::string(1, kind) +
                         "' section",
                     line);
            }
            auto& table = kind == 'i'   ? aig.input_names
                          : kind == 'l' ? aig.latch_names
                                        : aig.output_names;
            table[index] = name;
        }
    }

    std::string data_;
    const std::string& file_path_;
    std::size_t pos_ = 0;
    std::size_t line_no_ = 0;
    bool binary_ = false;
    std::uint64_t m_ = 0, i_ = 0, l_ = 0, o_ = 0, a_ = 0;
};

/// Builds a Netlist from a parsed AIG.  All structural errors surface
/// as Diagnostic, including those detected by the netlist itself
/// (duplicate names, cycles).
class NetlistBuilder {
public:
    NetlistBuilder(const AigFile& aig, std::string circuit_name,
                   const std::string& file_path)
        : aig_(aig),
          netlist_(std::move(circuit_name)),
          file_path_(file_path),
          var_gate_(aig.max_var + 1, kNoGate),
          inv_gate_(aig.max_var + 1, kNoGate) {}

    Netlist build() {
        declare_inputs();
        declare_latches();
        declare_ands();
        wire_ands();
        wire_latches();
        wire_outputs();
        try {
            netlist_.finalize();
        } catch (const std::exception& e) {
            fail(std::string("invalid AIG structure: ") + e.what());
        }
        return std::move(netlist_);
    }

private:
    [[noreturn]] void fail(const std::string& msg) const {
        throw Diagnostic("aiger", file_path_, 0, 0, msg, "");
    }

    GateId add_gate(CellType type, std::string name,
                    std::vector<GateId> fanin) {
        try {
            return netlist_.add_gate(type, std::move(name), std::move(fanin));
        } catch (const Diagnostic&) {
            throw;
        } catch (const std::exception& e) {
            fail(e.what());
        }
    }

    std::string symbol_or(const std::unordered_map<std::size_t, std::string>& table,
                          std::size_t index, const std::string& fallback) {
        auto it = table.find(index);
        return it == table.end() ? fallback : it->second;
    }

    void define_var(std::uint64_t lit, GateId id) {
        const std::uint64_t var = lit >> 1;
        if (var_gate_[var] != kNoGate) {
            fail("literal " + std::to_string(lit) + " defined twice");
        }
        var_gate_[var] = id;
    }

    void declare_inputs() {
        for (std::size_t k = 0; k < aig_.inputs.size(); ++k) {
            const GateId id = add_gate(
                CellType::Input,
                symbol_or(aig_.input_names, k, "i" + std::to_string(k)), {});
            define_var(aig_.inputs[k], id);
        }
    }

    void declare_latches() {
        for (std::size_t k = 0; k < aig_.latches.size(); ++k) {
            const GateId id = add_gate(
                CellType::Dff,
                symbol_or(aig_.latch_names, k, "l" + std::to_string(k)), {});
            define_var(aig_.latches[k].lhs, id);
        }
    }

    void declare_ands() {
        for (const AigAnd& a : aig_.ands) {
            const GateId id = add_gate(
                CellType::And, "a" + std::to_string(a.lhs >> 1), {});
            define_var(a.lhs, id);
        }
    }

    /// Gate driving `lit`, creating the shared INV node (or a constant
    /// synthesis) on demand.
    GateId resolve(std::uint64_t lit) {
        if (lit <= 1) return constant_gate(lit == 1);
        const std::uint64_t var = lit >> 1;
        const GateId base = var_gate_[var];
        if (base == kNoGate) {
            fail("dangling literal " + std::to_string(lit) +
                 ": variable never defined as input, latch or and");
        }
        if ((lit & 1) == 0) return base;
        if (inv_gate_[var] == kNoGate) {
            inv_gate_[var] = add_gate(
                CellType::Inv, "n" + std::to_string(var) + "$inv", {base});
        }
        return inv_gate_[var];
    }

    /// AIGER constant literals have no netlist cell; XOR/XNOR of any
    /// source with itself produces the value structurally.
    GateId constant_gate(bool one) {
        GateId& cached = one ? const1_ : const0_;
        if (cached != kNoGate) return cached;
        GateId seed = kNoGate;
        if (!netlist_.primary_inputs().empty()) {
            seed = netlist_.primary_inputs().front();
        } else if (!netlist_.flip_flops().empty()) {
            seed = netlist_.flip_flops().front();
        } else {
            fail("constant literal in a circuit without inputs or latches");
        }
        cached = add_gate(one ? CellType::Xnor : CellType::Xor,
                          one ? "$const1" : "$const0", {seed, seed});
        return cached;
    }

    void wire_ands() {
        for (const AigAnd& a : aig_.ands) {
            const GateId id = var_gate_[a.lhs >> 1];
            netlist_.append_fanin(id, resolve(a.rhs0));
            netlist_.append_fanin(id, resolve(a.rhs1));
        }
    }

    void wire_latches() {
        for (std::size_t k = 0; k < aig_.latches.size(); ++k) {
            const GateId id = var_gate_[aig_.latches[k].lhs >> 1];
            netlist_.append_fanin(id, resolve(aig_.latches[k].next));
        }
    }

    void wire_outputs() {
        for (std::size_t k = 0; k < aig_.outputs.size(); ++k) {
            const std::string name =
                symbol_or(aig_.output_names, k, "o" + std::to_string(k));
            add_gate(CellType::Output, name + "$po",
                     {resolve(aig_.outputs[k])});
        }
    }

    const AigFile& aig_;
    Netlist netlist_;
    const std::string& file_path_;
    std::vector<GateId> var_gate_;  ///< per AIG variable
    std::vector<GateId> inv_gate_;  ///< shared inverter per variable
    GateId const0_ = kNoGate;
    GateId const1_ = kNoGate;
};

}  // namespace

Netlist read_aiger(std::istream& is, std::string circuit_name,
                   const std::string& file_path) {
    FaultInjector::global().fire("parser.aiger");
    std::string data((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    AigerParser parser(std::move(data), file_path);
    const AigFile aig = parser.parse();
    NetlistBuilder builder(aig, std::move(circuit_name), file_path);
    return builder.build();
}

Netlist read_aiger_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        throw Diagnostic("aiger", path, 0, 0, "cannot open file", "");
    }
    auto slash = path.find_last_of('/');
    std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    if (auto dot = base.find_last_of('.'); dot != std::string::npos) {
        base.erase(dot);
    }
    return read_aiger(is, base, path);
}

Netlist read_aiger_string(const std::string& text, std::string circuit_name) {
    std::istringstream is(text);
    return read_aiger(is, std::move(circuit_name));
}

namespace {

/// AND-graph construction state of write_aag.
struct AigWriter {
    std::uint64_t next_var;
    std::vector<AigAnd> ands;

    std::uint64_t mk_and(std::uint64_t a, std::uint64_t b) {
        if (a == 0 || b == 0) return 0;
        if (a == 1) return b;
        if (b == 1) return a;
        if (a == b) return a;
        if (a == (b ^ 1)) return 0;
        const std::uint64_t lhs = 2 * next_var++;
        if (a < b) std::swap(a, b);
        ands.push_back(AigAnd{lhs, a, b});
        return lhs;
    }

    std::uint64_t mk_or(std::uint64_t a, std::uint64_t b) {
        return mk_and(a ^ 1, b ^ 1) ^ 1;
    }

    std::uint64_t mk_xor(std::uint64_t a, std::uint64_t b) {
        return mk_or(mk_and(a, b ^ 1), mk_and(a ^ 1, b));
    }
};

}  // namespace

void write_aag(std::ostream& os, const Netlist& netlist) {
    if (!netlist.finalized()) {
        throw std::runtime_error("write_aag requires a finalized netlist");
    }
    const auto pis = netlist.primary_inputs();
    const auto dffs = netlist.flip_flops();

    std::vector<std::uint64_t> lit(netlist.size(), UINT64_MAX);
    AigWriter w{pis.size() + dffs.size() + 1, {}};
    std::uint64_t next_input = 2;
    for (GateId id : pis) lit[id] = next_input, next_input += 2;
    for (GateId id : dffs) lit[id] = next_input, next_input += 2;

    for (GateId id : netlist.topo_order()) {
        const Gate& g = netlist.gate(id);
        if (!is_combinational(g.type)) continue;
        std::vector<std::uint64_t> in;
        in.reserve(g.fanin.size());
        for (GateId f : g.fanin) in.push_back(lit[f]);
        std::uint64_t out = 0;
        switch (g.type) {
            case CellType::Buf:
                out = in[0];
                break;
            case CellType::Inv:
                out = in[0] ^ 1;
                break;
            case CellType::And:
            case CellType::Nand: {
                out = in[0];
                for (std::size_t i = 1; i < in.size(); ++i) {
                    out = w.mk_and(out, in[i]);
                }
                if (g.type == CellType::Nand) out ^= 1;
                break;
            }
            case CellType::Or:
            case CellType::Nor: {
                out = in[0];
                for (std::size_t i = 1; i < in.size(); ++i) {
                    out = w.mk_or(out, in[i]);
                }
                if (g.type == CellType::Nor) out ^= 1;
                break;
            }
            case CellType::Xor:
            case CellType::Xnor: {
                out = in[0];
                for (std::size_t i = 1; i < in.size(); ++i) {
                    out = w.mk_xor(out, in[i]);
                }
                if (g.type == CellType::Xnor) out ^= 1;
                break;
            }
            case CellType::Mux2:
                out = w.mk_or(w.mk_and(in[0] ^ 1, in[1]),
                              w.mk_and(in[0], in[2]));
                break;
            case CellType::Aoi21:
                out = w.mk_or(w.mk_and(in[0], in[1]), in[2]) ^ 1;
                break;
            case CellType::Oai21:
                out = w.mk_and(w.mk_or(in[0], in[1]), in[2]) ^ 1;
                break;
            default:
                throw std::runtime_error("write_aag: unsupported cell type");
        }
        lit[id] = out;
    }

    const auto pos = netlist.primary_outputs();
    os << "aag " << (w.next_var - 1) << ' ' << pis.size() << ' '
       << dffs.size() << ' ' << pos.size() << ' ' << w.ands.size() << '\n';
    for (GateId id : pis) os << lit[id] << '\n';
    for (GateId id : dffs) {
        os << lit[id] << ' ' << lit[netlist.gate(id).fanin[0]] << '\n';
    }
    for (GateId id : pos) {
        os << lit[netlist.gate(id).fanin[0]] << '\n';
    }
    for (const AigAnd& a : w.ands) {
        os << a.lhs << ' ' << a.rhs0 << ' ' << a.rhs1 << '\n';
    }
    for (std::size_t k = 0; k < pis.size(); ++k) {
        os << 'i' << k << ' ' << netlist.gate(pis[k]).name << '\n';
    }
    for (std::size_t k = 0; k < dffs.size(); ++k) {
        os << 'l' << k << ' ' << netlist.gate(dffs[k]).name << '\n';
    }
    for (std::size_t k = 0; k < pos.size(); ++k) {
        std::string name = netlist.gate(pos[k]).name;
        if (name.size() > 3 && name.ends_with("$po")) {
            name.erase(name.size() - 3);
        }
        os << 'o' << k << ' ' << name << '\n';
    }
    os << "c\n" << netlist.name() << " — written by fastmon\n";
}

std::string write_aag_string(const Netlist& netlist) {
    std::ostringstream os;
    write_aag(os, netlist);
    return os.str();
}

}  // namespace fastmon
