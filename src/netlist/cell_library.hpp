// Cell library: gate types, logic functions and nominal pin-to-pin delays.
//
// The delay numbers are inspired by the NanGate 45nm Open Cell Library
// (the library the paper synthesizes with): inverters around 10 ps,
// 2-input NAND/NOR in the 15-20 ps range, XOR roughly 3x an inverter,
// plus a small per-fanout load penalty.  Absolute values only set the
// time scale; every quantity in the reproduction is relative to the
// nominal clock (1.05 x critical path length).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "util/interval.hpp"

namespace fastmon {

/// Node kinds in a netlist.  Input/Output are interface nodes without
/// logic; Dff is the sequential element (its Q pin acts as a pseudo
/// primary input, its D pin as a pseudo primary output of the
/// combinational core).
enum class CellType : std::uint8_t {
    Input,
    Output,
    Dff,
    Buf,
    Inv,
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
    Mux2,   // fanin order: select, a (sel=0), b (sel=1)
    Aoi21,  // !((a & b) | c)
    Oai21,  // !((a | b) & c)
};

/// Human-readable name ("NAND", "DFF", ...).
std::string_view cell_type_name(CellType type);

/// True for Input/Output/Dff (no combinational logic function).
bool is_interface(CellType type);

/// True if the cell computes a combinational function of its fanins.
bool is_combinational(CellType type);

/// Valid fanin counts.
std::uint32_t min_arity(CellType type);
std::uint32_t max_arity(CellType type);

/// Single-bit logic evaluation.  `inputs` holds the fanin values in pin
/// order.  Interface cells pass through their single input (Input has
/// none and must not be evaluated).
bool eval_cell(CellType type, std::span<const bool> inputs);

/// 64-way bit-parallel evaluation (one pattern per bit lane); used by the
/// parallel-pattern transition fault simulator.
std::uint64_t eval_cell64(CellType type, std::span<const std::uint64_t> inputs);

/// 64-way bit-parallel *ternary* evaluation (one pattern per bit lane).
///
/// Each input is a set of logic values the signal may attain at some
/// time during the v1 -> v2 transition, encoded as two bit masks:
/// can0 (signal may be 0) and can1 (signal may be 1); can0 & can1 is
/// the classic X.  The output masks over-approximate the values the
/// gate output can attain, which makes them a sound screen for
/// hazard-aware activation checks: a signal whose output is not X in
/// some lane provably never toggles in that lane's timed waveform.
void eval_cell64_ternary(CellType type, std::span<const std::uint64_t> can0,
                         std::span<const std::uint64_t> can1,
                         std::uint64_t& out0, std::uint64_t& out1);

/// Rise/fall propagation delay of one input-to-output arc.
struct PinDelay {
    Time rise = 0.0;  ///< delay when the *output* transitions to 1
    Time fall = 0.0;  ///< delay when the *output* transitions to 0
};

/// Nominal (pre-variation) delay model of the library.
class CellLibrary {
public:
    /// The default NanGate-45nm-inspired library.
    static const CellLibrary& nangate45();

    /// Nominal delay of the arc from fanin pin `pin` to the output of a
    /// cell with `arity` fanins.  Later pins are slightly slower,
    /// matching the stack position effect in CMOS gates.
    [[nodiscard]] PinDelay nominal_delay(CellType type, std::uint32_t arity,
                                         std::uint32_t pin) const;

    /// Additional delay per fanout branch beyond the first (load).
    [[nodiscard]] Time load_delay_per_fanout() const { return load_per_fanout_; }

    /// Clock-to-Q delay of a flip-flop.
    [[nodiscard]] Time dff_clk_to_q() const { return dff_clk_to_q_; }

    /// Setup time of a flip-flop (and of a monitor shadow register).
    [[nodiscard]] Time dff_setup() const { return dff_setup_; }

    /// Smallest combinational cell delay in the library; used as the
    /// default glitch-filtering threshold (Sec. II-A).
    [[nodiscard]] Time min_gate_delay() const;

private:
    CellLibrary() = default;

    Time load_per_fanout_ = 1.5;
    Time dff_clk_to_q_ = 28.0;
    Time dff_setup_ = 18.0;
};

}  // namespace fastmon
