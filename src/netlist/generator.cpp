#include "netlist/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/prng.hpp"

namespace fastmon {

namespace {

/// Weighted choice of a combinational cell type, roughly matching the
/// type mix of NanGate-mapped ISCAS circuits.
CellType pick_type(Prng& rng) {
    const double r = rng.next_double();
    if (r < 0.22) return CellType::Nand;
    if (r < 0.38) return CellType::Nor;
    if (r < 0.52) return CellType::Inv;
    if (r < 0.62) return CellType::And;
    if (r < 0.72) return CellType::Or;
    if (r < 0.78) return CellType::Xor;
    if (r < 0.82) return CellType::Xnor;
    if (r < 0.87) return CellType::Buf;
    if (r < 0.92) return CellType::Mux2;
    if (r < 0.96) return CellType::Aoi21;
    return CellType::Oai21;
}

std::uint32_t pick_arity(CellType type, Prng& rng) {
    const std::uint32_t lo = min_arity(type);
    const std::uint32_t hi = max_arity(type);
    if (lo == hi) return lo;
    // Mostly minimum arity, occasionally wider (3- and 4-input gates).
    const double r = rng.next_double();
    if (r < 0.70) return lo;
    if (r < 0.92) return std::min(lo + 1, hi);
    return std::min(lo + 2, hi);
}

double gaussian_weight(double x, double mu, double sigma) {
    const double d = (x - mu) / sigma;
    return std::exp(-0.5 * d * d);
}

}  // namespace

Netlist generate_circuit(const GeneratorConfig& config) {
    if (config.n_inputs == 0 || config.n_gates == 0 || config.depth == 0) {
        throw std::invalid_argument("generate_circuit: degenerate config");
    }
    Prng rng(config.seed ^ 0xFA57F00DULL);
    Netlist netlist(config.name);

    // Sources: primary inputs and flip-flop outputs (D wired later).
    std::vector<std::vector<GateId>> by_level(config.depth + 1);
    for (std::size_t i = 0; i < config.n_inputs; ++i) {
        by_level[0].push_back(
            netlist.add_gate(CellType::Input, "pi" + std::to_string(i), {}));
    }
    std::vector<GateId> ffs;
    ffs.reserve(config.n_ffs);
    for (std::size_t i = 0; i < config.n_ffs; ++i) {
        const GateId q =
            netlist.add_gate(CellType::Dff, "ff" + std::to_string(i), {});
        ffs.push_back(q);
        by_level[0].push_back(q);
    }

    // Budget split: `spread` diverts part of the gates into shallow
    // "late-merge" branches — short chains from sources that merge into
    // the deep capture cones right before the flip-flops, modelling
    // control/enable logic.  Faults in those branches reach their FF
    // exclusively over short paths, the population whose detection the
    // programmable monitors unlock (Sec. III).
    const std::size_t n_shallow = static_cast<std::size_t>(
        std::floor(0.45 * config.spread *
                   static_cast<double>(config.n_gates)));
    const std::size_t n_main = config.n_gates - n_shallow;

    // Distribute the main gates over levels 1..depth.  The histogram is
    // a two-component Gaussian mixture: a near-critical bulk plus a
    // moderate mid-depth population.
    const std::size_t depth = config.depth;
    std::vector<double> weights(depth + 1, 0.0);
    double total_weight = 0.0;
    const double main_spread = 0.15 + 0.3 * config.spread;
    for (std::size_t l = 1; l <= depth; ++l) {
        const double x = static_cast<double>(l) / static_cast<double>(depth);
        const double deep = gaussian_weight(x, 0.78, 0.14);
        const double shallow = gaussian_weight(x, 0.30, 0.26);
        weights[l] = (1.0 - main_spread) * deep + main_spread * shallow;
        total_weight += weights[l];
    }
    std::vector<std::size_t> gates_per_level(depth + 1, 0);
    std::size_t assigned = 0;
    for (std::size_t l = 1; l <= depth; ++l) {
        gates_per_level[l] = static_cast<std::size_t>(
            std::floor(static_cast<double>(n_main) * weights[l] /
                       total_weight));
        assigned += gates_per_level[l];
    }
    // Guarantee a chain to full depth and place the rounding remainder.
    for (std::size_t l = 1; l <= depth; ++l) {
        if (gates_per_level[l] == 0) {
            gates_per_level[l] = 1;
            ++assigned;
        }
    }
    while (assigned < n_main) {
        const std::size_t l = 1 + rng.next_below(depth);
        ++gates_per_level[l];
        ++assigned;
    }
    while (assigned > n_main) {
        const std::size_t l = 1 + rng.next_below(depth);
        if (gates_per_level[l] > 1) {
            --gates_per_level[l];
            --assigned;
        }
    }

    // Create gates level by level.  fanin[0] comes from the directly
    // preceding level (enforcing the level structure); the remaining pins
    // are drawn from earlier levels with a geometric bias toward nearby
    // levels, which yields realistic reconvergence.
    std::size_t gate_counter = 0;
    for (std::size_t l = 1; l <= depth; ++l) {
        for (std::size_t k = 0; k < gates_per_level[l]; ++k) {
            const CellType type = pick_type(rng);
            const std::uint32_t arity = pick_arity(type, rng);
            std::vector<GateId> fanin;
            fanin.reserve(arity);
            const std::vector<GateId>& prev = by_level[l - 1];
            fanin.push_back(prev[rng.next_below(prev.size())]);
            for (std::uint32_t pin = 1; pin < arity; ++pin) {
                // Geometric hop backwards from level l-1.
                std::size_t src_level = l - 1;
                while (src_level > 0 && rng.chance(0.45)) --src_level;
                const std::vector<GateId>& pool = by_level[src_level];
                fanin.push_back(pool[rng.next_below(pool.size())]);
            }
            const GateId id = netlist.add_gate(
                type, "g" + std::to_string(gate_counter++), std::move(fanin));
            by_level[l].push_back(id);
        }
    }

    // Late-merge shallow branches: short chains fed by sources, each
    // merged through a dedicated XOR stage directly in front of a
    // capture flip-flop (parity/mask-style capture logic).  The XOR is
    // sensitized regardless of its other input, so every path from a
    // chain gate to its FF is short and live: their small-delay-fault
    // effects settle long before t_min = t_nom/3 — undetectable by
    // conventional FAST, detectable through the monitors' detection
    // range shift (the population behind the paper's Fig. 3 gap).
    // Deep random logic cannot serve as merge point: its signal
    // probabilities collapse toward constants and block propagation.
    std::vector<GateId> merged_driver(config.n_ffs, kNoGate);
    if (n_shallow > 0) {
        const std::vector<GateId>& sources = by_level[0];
        // Concentrate the capture-XOR stages on a quarter of the
        // flip-flops: exactly the long-path-end fraction that receives
        // monitors (Sec. V inserts monitors at 25 % of the PPOs).
        const std::size_t n_slots =
            std::max<std::size_t>(2, config.n_ffs / 4);
        std::vector<std::size_t> stack_height(config.n_ffs, 0);
        std::size_t built = 0;
        std::size_t chain_counter = 0;
        std::size_t ff_cursor = 0;
        while (built + 2 <= n_shallow) {
            // Build up to three chains feeding one XOR stage (an XOR is
            // sensitized on every input, so all of them stay live).
            std::vector<GateId> chain_ends;
            while (chain_ends.size() < 3 && built + 2 <= n_shallow) {
                const std::size_t len = std::min<std::size_t>(
                    1 + rng.next_below(3), n_shallow - built - 1);
                GateId prev = sources[rng.next_below(sources.size())];
                for (std::size_t k = 0; k < len; ++k) {
                    const double r = rng.next_double();
                    const std::string name = "sc" +
                                             std::to_string(chain_counter) +
                                             "_" + std::to_string(k);
                    GateId id = kNoGate;
                    if (r < 0.3) {
                        id = netlist.add_gate(CellType::Inv, name, {prev});
                    } else if (r < 0.45) {
                        id = netlist.add_gate(CellType::Buf, name, {prev});
                    } else if (r < 0.75) {
                        id = netlist.add_gate(
                            CellType::Nand, name,
                            {prev, sources[rng.next_below(sources.size())]});
                    } else {
                        id = netlist.add_gate(
                            CellType::Nor, name,
                            {prev, sources[rng.next_below(sources.size())]});
                    }
                    by_level[std::min(k + 1, depth)].push_back(id);
                    prev = id;
                    ++built;
                }
                chain_ends.push_back(prev);
                ++chain_counter;
            }
            // Merge slot: round-robin over the reserved flip-flops,
            // stacking at most three XOR stages to keep paths short.
            std::size_t tries = 0;
            while (stack_height[ff_cursor % n_slots] >= 3 &&
                   tries++ < n_slots) {
                ++ff_cursor;
            }
            const std::size_t slot = ff_cursor % n_slots;
            ++ff_cursor;
            if (stack_height[slot] >= 3) break;  // all slots saturated
            GateId deep = merged_driver[slot];
            if (deep == kNoGate) {
                const std::vector<GateId>& pool = by_level[depth];
                deep = pool[rng.next_below(pool.size())];
            }
            std::vector<GateId> xin{deep};
            xin.insert(xin.end(), chain_ends.begin(), chain_ends.end());
            const GateId x = netlist.add_gate(
                CellType::Xor, "mx" + std::to_string(chain_counter),
                std::move(xin));
            merged_driver[slot] = x;
            ++stack_height[slot];
            ++built;
        }
    }

    // Sinks.  Flip-flop D inputs and primary outputs tap gates with a
    // bias toward deeper levels (long path ends), as in placed designs.
    auto pick_sink_driver = [&]() -> GateId {
        for (;;) {
            // Quadratic bias toward deep levels.
            const double r = rng.next_double();
            const auto l = static_cast<std::size_t>(
                1 + std::floor(std::sqrt(r) * static_cast<double>(depth)));
            const std::size_t lv = std::min(l, depth);
            if (!by_level[lv].empty()) {
                return by_level[lv][rng.next_below(by_level[lv].size())];
            }
        }
    };
    for (std::size_t i = 0; i < config.n_ffs; ++i) {
        netlist.append_fanin(ffs[i], merged_driver[i] != kNoGate
                                         ? merged_driver[i]
                                         : pick_sink_driver());
    }
    for (std::size_t i = 0; i < config.n_outputs; ++i) {
        netlist.add_gate(CellType::Output, "po" + std::to_string(i) + "$po",
                         {pick_sink_driver()});
    }

    // Sink dangling gates: first try to absorb them as extra fanins of
    // compatible deeper gates, then fall back to extra output pads.
    std::vector<std::size_t> level_of(netlist.size(), 0);
    for (std::size_t l = 0; l <= depth; ++l) {
        for (GateId id : by_level[l]) level_of[id] = l;
    }
    std::vector<bool> has_fanout(netlist.size(), false);
    for (const Gate& g : netlist.gates()) {
        for (GateId f : g.fanin) has_fanout[f] = true;
    }
    std::size_t extra_pads = 0;
    for (std::size_t l = 0; l <= depth; ++l) {
        for (GateId id : by_level[l]) {
            if (has_fanout[id]) continue;
            bool absorbed = false;
            for (int attempt = 0; attempt < 8 && !absorbed; ++attempt) {
                if (l >= depth) break;
                const std::size_t tl = l + 1 + rng.next_below(depth - l);
                if (by_level[tl].empty()) continue;
                const GateId target =
                    by_level[tl][rng.next_below(by_level[tl].size())];
                const Gate& tg = netlist.gate(target);
                // Cap at 4 fanins: wider cells do not exist in mapped
                // NanGate designs and make justification needlessly hard.
                if (tg.fanin.size() <
                    std::min<std::uint32_t>(max_arity(tg.type), 4)) {
                    netlist.append_fanin(target, id);
                    absorbed = true;
                }
            }
            if (!absorbed) {
                netlist.add_gate(
                    CellType::Output,
                    "px" + std::to_string(extra_pads++) + "$po", {id});
            }
        }
    }

    netlist.finalize();
    return netlist;
}

const std::vector<CircuitProfile>& paper_profiles() {
    // Sizes from Table I.  Depth/spread are chosen per circuit to match
    // its qualitative regime: small conventional-vs-monitor gain for
    // narrow path histograms (s9234, s35932, p78k), large gain for wide
    // ones (s13207, s15850, p89k, p100k).
    static const std::vector<CircuitProfile> kProfiles = {
        {"s9234", 1766, 228, 36, 39, 24, 0.35, 9234},
        {"s13207", 2867, 669, 62, 152, 26, 0.80, 13207},
        {"s15850", 3324, 597, 77, 150, 28, 0.82, 15850},
        {"s35932", 11168, 1728, 35, 320, 12, 0.15, 35932},
        {"s38417", 9796, 1636, 28, 106, 22, 0.45, 38417},
        {"s38584", 12213, 1450, 38, 304, 24, 0.60, 38584},
        {"p35k", 23294, 2173, 120, 220, 30, 0.70, 35000},
        {"p45k", 25406, 2331, 150, 260, 28, 0.68, 45000},
        {"p78k", 70495, 2977, 220, 320, 14, 0.18, 78000},
        {"p89k", 58726, 4301, 200, 360, 32, 0.85, 89000},
        {"p100k", 60767, 5735, 220, 380, 30, 0.75, 100000},
        {"p141k", 107655, 10501, 280, 480, 30, 0.62, 141000},
    };
    return kProfiles;
}

const CircuitProfile& find_profile(const std::string& name) {
    for (const CircuitProfile& p : paper_profiles()) {
        if (p.name == name) return p;
    }
    throw std::runtime_error("unknown circuit profile: " + name);
}

GeneratorConfig profile_config(const CircuitProfile& profile, double scale) {
    auto scaled = [scale](std::size_t v, std::size_t lo) {
        return std::max<std::size_t>(
            lo, static_cast<std::size_t>(std::llround(
                    static_cast<double>(v) * scale)));
    };
    GeneratorConfig config;
    config.name = profile.name;
    config.n_gates = scaled(profile.gates, 50);
    config.n_ffs = scaled(profile.ffs, 8);
    config.n_inputs = scaled(profile.inputs, 4);
    config.n_outputs = scaled(profile.outputs, 4);
    config.depth = profile.depth;  // depth is structural; never scaled
    config.spread = profile.spread;
    config.seed = profile.seed;
    return config;
}

}  // namespace fastmon
