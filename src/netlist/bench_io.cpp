#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/diagnostic.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {

namespace {

std::string trim(std::string_view sv) {
    const auto* begin = sv.data();
    const auto* end = sv.data() + sv.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(*begin))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(end[-1]))) --end;
    return std::string(begin, end);
}

std::string upper(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return s;
}

std::optional<CellType> gate_type_from_name(const std::string& name) {
    static const std::map<std::string, CellType> kMap = {
        {"AND", CellType::And},   {"NAND", CellType::Nand},
        {"OR", CellType::Or},     {"NOR", CellType::Nor},
        {"XOR", CellType::Xor},   {"XNOR", CellType::Xnor},
        {"NOT", CellType::Inv},   {"INV", CellType::Inv},
        {"BUFF", CellType::Buf},  {"BUF", CellType::Buf},
        {"DFF", CellType::Dff},   {"MUX", CellType::Mux2},
        {"AOI21", CellType::Aoi21}, {"OAI21", CellType::Oai21},
    };
    auto it = kMap.find(name);
    if (it == kMap.end()) return std::nullopt;
    return it->second;
}

struct ParsedGate {
    std::string output;
    CellType type;
    std::vector<std::string> inputs;
    std::size_t line_no;
    std::string raw;  ///< stripped source line, for diagnostics
};

}  // namespace

Netlist read_bench(std::istream& is, std::string circuit_name,
                   const std::string& file_path) {
    FaultInjector::global().fire("parser.bench");
    const auto fail = [&file_path](std::size_t line_no,
                                   const std::string& msg,
                                   const std::string& excerpt =
                                       std::string()) -> void {
        throw Diagnostic("bench", file_path, line_no, 0, msg, excerpt);
    };

    std::vector<std::string> input_signals;
    std::vector<std::string> output_signals;
    std::vector<ParsedGate> parsed;

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        const std::string stripped = trim(line);
        if (stripped.empty()) continue;

        const auto open = stripped.find('(');
        const auto eq = stripped.find('=');
        if (eq == std::string::npos) {
            // INPUT(sig) or OUTPUT(sig)
            if (open == std::string::npos || stripped.back() != ')') {
                fail(line_no, "expected INPUT(...)/OUTPUT(...) or assignment",
                     stripped);
            }
            const std::string kw = upper(trim(stripped.substr(0, open)));
            const std::string sig =
                trim(stripped.substr(open + 1, stripped.size() - open - 2));
            if (sig.empty()) fail(line_no, "empty signal name", stripped);
            if (kw == "INPUT") {
                input_signals.push_back(sig);
            } else if (kw == "OUTPUT") {
                output_signals.push_back(sig);
            } else {
                fail(line_no, "unknown directive: " + kw, stripped);
            }
            continue;
        }

        // sig = GATE(a, b, ...)
        const std::string lhs = trim(stripped.substr(0, eq));
        const std::string rhs = trim(stripped.substr(eq + 1));
        const auto rhs_open = rhs.find('(');
        if (lhs.empty() || rhs_open == std::string::npos || rhs.back() != ')') {
            fail(line_no, "malformed assignment", stripped);
        }
        const std::string gate_name = upper(trim(rhs.substr(0, rhs_open)));
        const auto type = gate_type_from_name(gate_name);
        if (!type) fail(line_no, "unknown gate type: " + gate_name, stripped);

        std::vector<std::string> ins;
        std::string arg;
        std::istringstream args(rhs.substr(rhs_open + 1, rhs.size() - rhs_open - 2));
        while (std::getline(args, arg, ',')) {
            const std::string t = trim(arg);
            if (t.empty()) fail(line_no, "empty fanin name", stripped);
            ins.push_back(t);
        }
        if (ins.empty()) fail(line_no, "gate without fanins", stripped);
        parsed.push_back(
            ParsedGate{lhs, *type, std::move(ins), line_no, stripped});
    }

    Netlist netlist(std::move(circuit_name));
    std::map<std::string, GateId> signals;

    for (const std::string& sig : input_signals) {
        if (signals.contains(sig)) fail(0, "duplicate INPUT " + sig);
        signals.emplace(sig, netlist.add_gate(CellType::Input, sig, {}));
    }

    // Two passes: first create all defined signals (DFF outputs may be
    // referenced before their definition), then wire fanins.
    // Pass 1: declare.
    std::vector<GateId> ids(parsed.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        const ParsedGate& pg = parsed[i];
        if (signals.contains(pg.output)) {
            fail(pg.line_no, "signal defined twice: " + pg.output, pg.raw);
        }
        ids[i] = netlist.add_gate(pg.type, pg.output, {});
        signals.emplace(pg.output, ids[i]);
    }
    // Pass 2: wire.
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        const ParsedGate& pg = parsed[i];
        for (const std::string& in : pg.inputs) {
            auto it = signals.find(in);
            if (it == signals.end()) {
                fail(pg.line_no, "undefined signal: " + in, pg.raw);
            }
            netlist.append_fanin(ids[i], it->second);
        }
    }

    for (const std::string& sig : output_signals) {
        auto it = signals.find(sig);
        if (it == signals.end()) fail(0, "OUTPUT references undefined " + sig);
        netlist.add_gate(CellType::Output, sig + "$po", {it->second});
    }

    netlist.finalize();
    return netlist;
}

Netlist read_bench_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) {
        throw Diagnostic("bench", path, 0, 0, "cannot open file", "");
    }
    // Circuit name: basename without extension.
    auto slash = path.find_last_of('/');
    std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    if (auto dot = base.find_last_of('.'); dot != std::string::npos) {
        base.erase(dot);
    }
    return read_bench(is, base, path);
}

Netlist read_bench_string(const std::string& text, std::string circuit_name) {
    std::istringstream is(text);
    return read_bench(is, std::move(circuit_name));
}

void write_bench(std::ostream& os, const Netlist& netlist) {
    os << "# " << netlist.name() << " — written by fastmon\n";
    for (GateId id : netlist.primary_inputs()) {
        os << "INPUT(" << netlist.gate(id).name << ")\n";
    }
    for (GateId id : netlist.primary_outputs()) {
        const Gate& pad = netlist.gate(id);
        os << "OUTPUT(" << netlist.gate(pad.fanin[0]).name << ")\n";
    }
    for (const Gate& g : netlist.gates()) {
        if (g.type == CellType::Input || g.type == CellType::Output) continue;
        os << g.name << " = " << cell_type_name(g.type) << '(';
        for (std::size_t i = 0; i < g.fanin.size(); ++i) {
            if (i > 0) os << ", ";
            os << netlist.gate(g.fanin[i]).name;
        }
        os << ")\n";
    }
}

std::string write_bench_string(const Netlist& netlist) {
    std::ostringstream os;
    write_bench(os, netlist);
    return os.str();
}

}  // namespace fastmon
