// Gate-level netlist.
//
// A Netlist is a DAG of single-output nodes.  Sequential elements (DFF)
// cut the graph into a combinational core: a DFF's Q output acts as a
// pseudo primary input (PPI) and its D fanin as a pseudo primary output
// (PPO).  All analyses in this library (STA, waveform simulation, fault
// simulation, ATPG) operate on the combinational core between
// {PI, PPI} sources and {PO, PPO} sinks — the standard scan-test view.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell_library.hpp"

namespace fastmon {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = std::numeric_limits<GateId>::max();

struct Gate {
    std::string name;
    CellType type = CellType::Buf;
    std::vector<GateId> fanin;   ///< driver of each input pin, in pin order
    std::vector<GateId> fanout;  ///< consumers (filled by finalize())
};

/// An observation point of the combinational core: a primary output pad
/// or the D input of a flip-flop (pseudo primary output).
struct ObservePoint {
    GateId node = kNoGate;  ///< the Output or Dff node
    GateId signal = kNoGate;  ///< the driving gate (node's fanin[0])
    bool is_pseudo = false;   ///< true for DFF D inputs (monitor-eligible)
};

class Netlist {
public:
    explicit Netlist(std::string name) : name_(std::move(name)) {}

    /// Adds a node.  Fanin ids must already exist.  Names must be unique.
    GateId add_gate(CellType type, std::string name, std::vector<GateId> fanin);

    /// Appends one more fanin pin to an existing gate (used by the
    /// generator when sinking dangling nets).  Only valid before
    /// finalize() and only if the arity stays within the cell limits.
    void append_fanin(GateId gate, GateId driver);

    /// Builds fanout lists, the topological order of the combinational
    /// core and validates arities.  Throws std::runtime_error on
    /// combinational cycles or arity violations.
    void finalize();

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::size_t size() const { return gates_.size(); }
    [[nodiscard]] const Gate& gate(GateId id) const { return gates_[id]; }
    [[nodiscard]] std::span<const Gate> gates() const { return gates_; }

    /// Node lookup by name; returns kNoGate if absent.
    [[nodiscard]] GateId find(std::string_view name) const;

    [[nodiscard]] std::span<const GateId> primary_inputs() const { return inputs_; }
    [[nodiscard]] std::span<const GateId> primary_outputs() const { return outputs_; }
    [[nodiscard]] std::span<const GateId> flip_flops() const { return dffs_; }

    /// Number of combinational gates (excludes Input/Output/Dff nodes).
    [[nodiscard]] std::size_t num_comb_gates() const { return num_comb_; }

    /// Sources of the combinational core: PIs then DFF Q outputs, in a
    /// stable order.  Their count is the width of a test vector.
    [[nodiscard]] std::span<const GateId> comb_sources() const { return sources_; }

    /// Sinks of the combinational core: POs then DFF D inputs.
    [[nodiscard]] std::span<const ObservePoint> observe_points() const { return observes_; }

    /// Topological order over all nodes: sources first, Output/Dff sink
    /// nodes last; every gate appears after all its fanins (except the
    /// Dff nodes, whose Q-as-source role is represented by the Dff node
    /// itself appearing in comb_sources()).
    [[nodiscard]] std::span<const GateId> topo_order() const { return topo_; }

    /// Position of a node in topo_order().
    [[nodiscard]] std::uint32_t topo_rank(GateId id) const { return rank_[id]; }

    /// Logic level: 0 for sources, 1 + max(fanin level) otherwise.
    [[nodiscard]] std::uint32_t level(GateId id) const { return level_[id]; }
    [[nodiscard]] std::uint32_t depth() const { return depth_; }

    /// Index of `id` in comb_sources(), or UINT32_MAX if not a source.
    [[nodiscard]] std::uint32_t source_index(GateId id) const { return source_index_[id]; }

    [[nodiscard]] bool finalized() const { return finalized_; }

    /// All nodes in the transitive fanout of `from`, including `from`
    /// itself, in topological order.  DFF/Output sink nodes terminate
    /// the propagation (fanout does not wrap around a register).
    [[nodiscard]] std::vector<GateId> fanout_cone(GateId from) const;

private:
    std::string name_;
    std::vector<Gate> gates_;
    std::vector<GateId> inputs_;
    std::vector<GateId> outputs_;
    std::vector<GateId> dffs_;
    std::vector<GateId> sources_;
    std::vector<ObservePoint> observes_;
    std::vector<GateId> topo_;
    std::vector<std::uint32_t> rank_;
    std::vector<std::uint32_t> level_;
    std::vector<std::uint32_t> source_index_;
    std::unordered_map<std::string, GateId> by_name_;
    std::size_t num_comb_ = 0;
    std::uint32_t depth_ = 0;
    bool finalized_ = false;
};

}  // namespace fastmon
