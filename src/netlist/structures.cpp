#include "netlist/structures.hpp"

#include <stdexcept>

#include "netlist/builder.hpp"

namespace fastmon {

namespace {

std::string bit_name(const std::string& base, std::size_t i) {
    return base + std::to_string(i);
}

}  // namespace

std::vector<std::size_t> maximal_lfsr_taps(std::size_t width) {
    // Classic primitive-polynomial tap sets (XOR form, 1-based, the
    // highest tap == width is implicit in make_lfsr).
    switch (width) {
        case 4: return {3};            // x^4 + x^3 + 1
        case 8: return {6, 5, 4};      // x^8 + x^6 + x^5 + x^4 + 1
        case 16: return {15, 13, 4};   // x^16 + x^15 + x^13 + x^4 + 1
        default:
            throw std::invalid_argument(
                "maximal_lfsr_taps: unsupported width " +
                std::to_string(width));
    }
}

Netlist make_lfsr(std::size_t width, const std::vector<std::size_t>& taps,
                  const std::string& name) {
    if (width < 2) throw std::invalid_argument("make_lfsr: width < 2");
    for (std::size_t t : taps) {
        if (t == 0 || t >= width) {
            throw std::invalid_argument("make_lfsr: tap out of range");
        }
    }
    NetlistBuilder b(name);
    b.input("enable");
    for (std::size_t i = 0; i < width; ++i) b.dff_declare(bit_name("q", i));

    // Feedback: XOR of q[width-1] and the taps (bit positions are
    // 1-based over q[0..width-1], so tap t reads q[t-1]).
    std::string fb = bit_name("q", width - 1);
    std::size_t k = 0;
    for (std::size_t t : taps) {
        const std::string x = "fb" + std::to_string(k++);
        b.xor2(x, fb, bit_name("q", t - 1));
        fb = x;
    }
    // enable ? feedback : hold q0.
    b.gate(CellType::Mux2, "d0", {"enable", bit_name("q", 0), fb});
    b.dff_connect(bit_name("q", 0), "d0");
    for (std::size_t i = 1; i < width; ++i) {
        const std::string d = "d" + std::to_string(i);
        b.gate(CellType::Mux2, d,
               {"enable", bit_name("q", i), bit_name("q", i - 1)});
        b.dff_connect(bit_name("q", i), d);
    }
    for (std::size_t i = 0; i < width; ++i) b.output(bit_name("q", i));
    return b.build();
}

Netlist make_counter(std::size_t width, const std::string& name) {
    if (width < 1) throw std::invalid_argument("make_counter: width < 1");
    NetlistBuilder b(name);
    b.input("enable");
    for (std::size_t i = 0; i < width; ++i) b.dff_declare(bit_name("q", i));

    // carry[0] = enable; q[i]' = q[i] ^ carry[i]; carry[i+1] = q[i] & carry[i].
    std::string carry = "enable";
    for (std::size_t i = 0; i < width; ++i) {
        const std::string d = "d" + std::to_string(i);
        b.xor2(d, bit_name("q", i), carry);
        b.dff_connect(bit_name("q", i), d);
        if (i + 1 < width) {
            const std::string c = "c" + std::to_string(i + 1);
            b.and2(c, bit_name("q", i), carry);
            carry = c;
        }
    }
    for (std::size_t i = 0; i < width; ++i) b.output(bit_name("q", i));
    return b.build();
}

Netlist make_shift_register(std::size_t depth, const std::string& name) {
    if (depth < 1) throw std::invalid_argument("make_shift_register: depth < 1");
    NetlistBuilder b(name);
    b.input("sin");
    std::string prev = "sin";
    for (std::size_t i = 0; i < depth; ++i) {
        // A buffer between stages gives the combinational core at least
        // one gate per stage (and a fault site).
        const std::string stage = "s" + std::to_string(i);
        b.buf(stage, prev);
        b.dff(bit_name("q", i), stage);
        prev = bit_name("q", i);
    }
    b.output(prev);
    return b.build();
}

Netlist make_parity_tree(std::size_t levels, const std::string& name) {
    if (levels < 1 || levels > 10) {
        throw std::invalid_argument("make_parity_tree: levels out of range");
    }
    NetlistBuilder b(name);
    const std::size_t n = std::size_t{1} << levels;
    std::vector<std::string> layer;
    for (std::size_t i = 0; i < n; ++i) {
        const std::string in = bit_name("in", i);
        b.input(in);
        layer.push_back(in);
    }
    std::size_t counter = 0;
    while (layer.size() > 1) {
        std::vector<std::string> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
            const std::string x = "x" + std::to_string(counter++);
            b.xor2(x, layer[i], layer[i + 1]);
            next.push_back(x);
        }
        layer = std::move(next);
    }
    b.dff("parity", layer[0]);
    b.output("parity");
    return b.build();
}

}  // namespace fastmon
