#include "netlist/builder.hpp"

#include <stdexcept>

namespace fastmon {

GateId NetlistBuilder::resolve(const std::string& name) const {
    const GateId id = netlist_.find(name);
    if (id == kNoGate) {
        throw std::runtime_error("NetlistBuilder: undefined signal " + name);
    }
    return id;
}

NetlistBuilder& NetlistBuilder::input(const std::string& name) {
    netlist_.add_gate(CellType::Input, name, {});
    return *this;
}

NetlistBuilder& NetlistBuilder::gate(CellType type, const std::string& sig,
                                     const std::vector<std::string>& fanins) {
    std::vector<GateId> ids;
    ids.reserve(fanins.size());
    for (const std::string& f : fanins) ids.push_back(resolve(f));
    netlist_.add_gate(type, sig, std::move(ids));
    return *this;
}

NetlistBuilder& NetlistBuilder::dff(const std::string& q, const std::string& d) {
    netlist_.add_gate(CellType::Dff, q, {resolve(d)});
    return *this;
}

NetlistBuilder& NetlistBuilder::dff_declare(const std::string& q) {
    netlist_.add_gate(CellType::Dff, q, {});
    return *this;
}

NetlistBuilder& NetlistBuilder::dff_connect(const std::string& q,
                                            const std::string& d) {
    netlist_.append_fanin(resolve(q), resolve(d));
    return *this;
}

NetlistBuilder& NetlistBuilder::output(const std::string& sig) {
    netlist_.add_gate(CellType::Output, sig + "$po", {resolve(sig)});
    return *this;
}

Netlist NetlistBuilder::build() {
    netlist_.finalize();
    return std::move(netlist_);
}

}  // namespace fastmon
