// Reader/writer for the ISCAS'89 ".bench" netlist format.
//
// Supported constructs:
//   INPUT(sig)   OUTPUT(sig)
//   sig = GATE(a, b, ...)   with GATE in {AND, NAND, OR, NOR, XOR, XNOR,
//                                         NOT, BUFF, DFF, MUX, AOI21, OAI21}
//   '#' starts a comment.
//
// OUTPUT(sig) references a signal; the reader materializes it as an
// Output node named "<sig>$po" so that output pads are explicit nodes.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace fastmon {

/// Parses a .bench description.  Throws Diagnostic (a
/// std::runtime_error subclass carrying file/line/excerpt) on malformed
/// input.  `file_path` only labels diagnostics and may be empty.
Netlist read_bench(std::istream& is, std::string circuit_name,
                   const std::string& file_path = {});
Netlist read_bench_file(const std::string& path);
Netlist read_bench_string(const std::string& text, std::string circuit_name);

/// Writes `netlist` in .bench format (inverse of read_bench up to node
/// ordering and the "$po" pad suffix).
void write_bench(std::ostream& os, const Netlist& netlist);
std::string write_bench_string(const Netlist& netlist);

}  // namespace fastmon
