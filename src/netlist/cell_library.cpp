#include "netlist/cell_library.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fastmon {

std::string_view cell_type_name(CellType type) {
    switch (type) {
        case CellType::Input: return "INPUT";
        case CellType::Output: return "OUTPUT";
        case CellType::Dff: return "DFF";
        case CellType::Buf: return "BUFF";
        case CellType::Inv: return "NOT";
        case CellType::And: return "AND";
        case CellType::Nand: return "NAND";
        case CellType::Or: return "OR";
        case CellType::Nor: return "NOR";
        case CellType::Xor: return "XOR";
        case CellType::Xnor: return "XNOR";
        case CellType::Mux2: return "MUX";
        case CellType::Aoi21: return "AOI21";
        case CellType::Oai21: return "OAI21";
    }
    return "?";
}

bool is_interface(CellType type) {
    return type == CellType::Input || type == CellType::Output ||
           type == CellType::Dff;
}

bool is_combinational(CellType type) {
    return !is_interface(type);
}

std::uint32_t min_arity(CellType type) {
    switch (type) {
        case CellType::Input: return 0;
        case CellType::Output:
        case CellType::Dff:
        case CellType::Buf:
        case CellType::Inv: return 1;
        case CellType::Mux2:
        case CellType::Aoi21:
        case CellType::Oai21: return 3;
        default: return 2;
    }
}

std::uint32_t max_arity(CellType type) {
    switch (type) {
        case CellType::Input: return 0;
        case CellType::Output:
        case CellType::Dff:
        case CellType::Buf:
        case CellType::Inv: return 1;
        case CellType::Mux2:
        case CellType::Aoi21:
        case CellType::Oai21: return 3;
        case CellType::And:
        case CellType::Nand:
        case CellType::Or:
        case CellType::Nor: return 8;
        case CellType::Xor:
        case CellType::Xnor: return 4;
    }
    return 0;
}

bool eval_cell(CellType type, std::span<const bool> inputs) {
    switch (type) {
        case CellType::Input:
            throw std::logic_error("eval_cell: Input node has no function");
        case CellType::Output:
        case CellType::Dff:
        case CellType::Buf:
            return inputs[0];
        case CellType::Inv:
            return !inputs[0];
        case CellType::And: {
            for (bool v : inputs)
                if (!v) return false;
            return true;
        }
        case CellType::Nand: {
            for (bool v : inputs)
                if (!v) return true;
            return false;
        }
        case CellType::Or: {
            for (bool v : inputs)
                if (v) return true;
            return false;
        }
        case CellType::Nor: {
            for (bool v : inputs)
                if (v) return false;
            return true;
        }
        case CellType::Xor: {
            bool acc = false;
            for (bool v : inputs) acc ^= v;
            return acc;
        }
        case CellType::Xnor: {
            bool acc = true;
            for (bool v : inputs) acc ^= v;
            return acc;
        }
        case CellType::Mux2:
            return inputs[0] ? inputs[2] : inputs[1];
        case CellType::Aoi21:
            return !((inputs[0] && inputs[1]) || inputs[2]);
        case CellType::Oai21:
            return !((inputs[0] || inputs[1]) && inputs[2]);
    }
    return false;
}

std::uint64_t eval_cell64(CellType type, std::span<const std::uint64_t> inputs) {
    switch (type) {
        case CellType::Input:
            throw std::logic_error("eval_cell64: Input node has no function");
        case CellType::Output:
        case CellType::Dff:
        case CellType::Buf:
            return inputs[0];
        case CellType::Inv:
            return ~inputs[0];
        case CellType::And: {
            std::uint64_t acc = ~0ULL;
            for (std::uint64_t v : inputs) acc &= v;
            return acc;
        }
        case CellType::Nand: {
            std::uint64_t acc = ~0ULL;
            for (std::uint64_t v : inputs) acc &= v;
            return ~acc;
        }
        case CellType::Or: {
            std::uint64_t acc = 0;
            for (std::uint64_t v : inputs) acc |= v;
            return acc;
        }
        case CellType::Nor: {
            std::uint64_t acc = 0;
            for (std::uint64_t v : inputs) acc |= v;
            return ~acc;
        }
        case CellType::Xor: {
            std::uint64_t acc = 0;
            for (std::uint64_t v : inputs) acc ^= v;
            return acc;
        }
        case CellType::Xnor: {
            std::uint64_t acc = 0;
            for (std::uint64_t v : inputs) acc ^= v;
            return ~acc;
        }
        case CellType::Mux2:
            return (inputs[0] & inputs[2]) | (~inputs[0] & inputs[1]);
        case CellType::Aoi21:
            return ~((inputs[0] & inputs[1]) | inputs[2]);
        case CellType::Oai21:
            return ~((inputs[0] | inputs[1]) & inputs[2]);
    }
    return 0;
}

void eval_cell64_ternary(CellType type, std::span<const std::uint64_t> can0,
                         std::span<const std::uint64_t> can1,
                         std::uint64_t& out0, std::uint64_t& out1) {
    // Possible-value propagation: the output may be b iff some choice
    // of attainable input values produces b.  For the monotone gates
    // this reduces to AND/OR folds of the masks; XOR-family gates fold
    // pairwise.
    switch (type) {
        case CellType::Input:
            throw std::logic_error(
                "eval_cell64_ternary: Input node has no function");
        case CellType::Output:
        case CellType::Dff:
        case CellType::Buf:
            out0 = can0[0];
            out1 = can1[0];
            return;
        case CellType::Inv:
            out0 = can1[0];
            out1 = can0[0];
            return;
        case CellType::And: {
            std::uint64_t all1 = ~0ULL;
            std::uint64_t any0 = 0;
            for (std::size_t i = 0; i < can1.size(); ++i) {
                all1 &= can1[i];
                any0 |= can0[i];
            }
            out1 = all1;
            out0 = any0;
            return;
        }
        case CellType::Nand: {
            std::uint64_t all1 = ~0ULL;
            std::uint64_t any0 = 0;
            for (std::size_t i = 0; i < can1.size(); ++i) {
                all1 &= can1[i];
                any0 |= can0[i];
            }
            out1 = any0;
            out0 = all1;
            return;
        }
        case CellType::Or: {
            std::uint64_t any1 = 0;
            std::uint64_t all0 = ~0ULL;
            for (std::size_t i = 0; i < can1.size(); ++i) {
                any1 |= can1[i];
                all0 &= can0[i];
            }
            out1 = any1;
            out0 = all0;
            return;
        }
        case CellType::Nor: {
            std::uint64_t any1 = 0;
            std::uint64_t all0 = ~0ULL;
            for (std::size_t i = 0; i < can1.size(); ++i) {
                any1 |= can1[i];
                all0 &= can0[i];
            }
            out1 = all0;
            out0 = any1;
            return;
        }
        case CellType::Xor:
        case CellType::Xnor: {
            std::uint64_t acc0 = can0[0];
            std::uint64_t acc1 = can1[0];
            for (std::size_t i = 1; i < can1.size(); ++i) {
                const std::uint64_t n1 =
                    (acc1 & can0[i]) | (acc0 & can1[i]);
                const std::uint64_t n0 =
                    (acc0 & can0[i]) | (acc1 & can1[i]);
                acc0 = n0;
                acc1 = n1;
            }
            if (type == CellType::Xnor) std::swap(acc0, acc1);
            out0 = acc0;
            out1 = acc1;
            return;
        }
        case CellType::Mux2:
            // fanin order: select, a (sel = 0), b (sel = 1)
            out1 = (can0[0] & can1[1]) | (can1[0] & can1[2]);
            out0 = (can0[0] & can0[1]) | (can1[0] & can0[2]);
            return;
        case CellType::Aoi21: {
            // !((a & b) | c)
            const std::uint64_t and1 = can1[0] & can1[1];
            const std::uint64_t and0 = can0[0] | can0[1];
            const std::uint64_t or1 = and1 | can1[2];
            const std::uint64_t or0 = and0 & can0[2];
            out1 = or0;
            out0 = or1;
            return;
        }
        case CellType::Oai21: {
            // !((a | b) & c)
            const std::uint64_t or1 = can1[0] | can1[1];
            const std::uint64_t or0 = can0[0] & can0[1];
            const std::uint64_t and1 = or1 & can1[2];
            const std::uint64_t and0 = or0 | can0[2];
            out1 = and0;
            out0 = and1;
            return;
        }
    }
    out0 = ~0ULL;
    out1 = ~0ULL;
}

namespace {

/// Base propagation delay of the cell family, in picoseconds.
Time base_delay(CellType type) {
    switch (type) {
        case CellType::Buf: return 22.0;
        case CellType::Inv: return 10.0;
        case CellType::And: return 24.0;
        case CellType::Nand: return 14.0;
        case CellType::Or: return 28.0;
        case CellType::Nor: return 17.0;
        case CellType::Xor: return 34.0;
        case CellType::Xnor: return 36.0;
        case CellType::Mux2: return 30.0;
        case CellType::Aoi21: return 20.0;
        case CellType::Oai21: return 22.0;
        case CellType::Output: return 0.0;
        default: return 0.0;
    }
}

/// Extra delay per fanin above two (wider stacks are slower).
Time arity_penalty(CellType type) {
    switch (type) {
        case CellType::And:
        case CellType::Nand: return 3.5;
        case CellType::Or:
        case CellType::Nor: return 4.5;
        case CellType::Xor:
        case CellType::Xnor: return 12.0;
        default: return 0.0;
    }
}

}  // namespace

const CellLibrary& CellLibrary::nangate45() {
    static const CellLibrary lib;
    return lib;
}

PinDelay CellLibrary::nominal_delay(CellType type, std::uint32_t arity,
                                    std::uint32_t pin) const {
    assert(pin < std::max(arity, 1u));
    Time base = base_delay(type);
    if (arity > 2) {
        base += arity_penalty(type) * static_cast<Time>(arity - 2);
    }
    // Stack-position effect: the pin closest to the output rail is a bit
    // faster; later pins up to ~15 % slower.
    const Time pin_factor =
        1.0 + 0.05 * static_cast<Time>(pin % 4);
    base *= pin_factor;
    // NAND/AND pull up slower than down; NOR/OR the opposite, mirroring
    // typical P/N strength ratios.
    Time rise_skew = 1.0;
    Time fall_skew = 1.0;
    switch (type) {
        case CellType::Nand:
        case CellType::And:
            rise_skew = 1.08;
            fall_skew = 0.92;
            break;
        case CellType::Nor:
        case CellType::Or:
            rise_skew = 0.94;
            fall_skew = 1.10;
            break;
        default:
            rise_skew = 1.02;
            fall_skew = 0.98;
            break;
    }
    return PinDelay{base * rise_skew, base * fall_skew};
}

Time CellLibrary::min_gate_delay() const {
    // The fastest arc in the library: first pin of an inverter, fall.
    const PinDelay d = nominal_delay(CellType::Inv, 1, 0);
    return std::min(d.rise, d.fall);
}

}  // namespace fastmon
