#include "netlist/netlist_io.hpp"

#include "netlist/aiger_io.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "util/diagnostic.hpp"

namespace fastmon {

std::string_view netlist_format_name(NetlistFormat format) {
    switch (format) {
        case NetlistFormat::Bench: return "bench";
        case NetlistFormat::Verilog: return "verilog";
        case NetlistFormat::Aiger: return "aiger";
    }
    return "?";
}

std::optional<NetlistFormat> netlist_format_from_path(std::string_view path) {
    const auto dot = path.find_last_of('.');
    if (dot == std::string_view::npos) return std::nullopt;
    const std::string_view ext = path.substr(dot + 1);
    if (ext == "bench") return NetlistFormat::Bench;
    if (ext == "v") return NetlistFormat::Verilog;
    if (ext == "aag" || ext == "aig") return NetlistFormat::Aiger;
    return std::nullopt;
}

Netlist read_netlist(const std::string& path, NetlistFormat format) {
    switch (format) {
        case NetlistFormat::Bench: return read_bench_file(path);
        case NetlistFormat::Verilog: return read_verilog_file(path);
        case NetlistFormat::Aiger: return read_aiger_file(path);
    }
    throw Diagnostic("netlist", path, 0, 0, "invalid netlist format", "");
}

Netlist read_netlist(const std::string& path) {
    const auto format = netlist_format_from_path(path);
    if (!format) {
        throw Diagnostic(
            "netlist", path, 0, 0,
            "unrecognized netlist extension (expected .bench, .v, .aag or .aig)",
            "");
    }
    return read_netlist(path, *format);
}

}  // namespace fastmon
