#include "netlist/netlist.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace fastmon {

GateId Netlist::add_gate(CellType type, std::string name,
                         std::vector<GateId> fanin) {
    if (finalized_) {
        throw std::logic_error("Netlist::add_gate after finalize()");
    }
    if (by_name_.contains(name)) {
        throw std::runtime_error("duplicate gate name: " + name);
    }
    for (GateId f : fanin) {
        if (f >= gates_.size()) {
            throw std::runtime_error("fanin id out of range for gate " + name);
        }
    }
    const auto id = static_cast<GateId>(gates_.size());
    by_name_.emplace(name, id);
    gates_.push_back(Gate{std::move(name), type, std::move(fanin), {}});
    switch (type) {
        case CellType::Input: inputs_.push_back(id); break;
        case CellType::Output: outputs_.push_back(id); break;
        case CellType::Dff: dffs_.push_back(id); break;
        default: ++num_comb_; break;
    }
    return id;
}

void Netlist::append_fanin(GateId gate, GateId driver) {
    if (finalized_) {
        throw std::logic_error("Netlist::append_fanin after finalize()");
    }
    Gate& g = gates_.at(gate);
    if (g.fanin.size() + 1 > max_arity(g.type)) {
        throw std::runtime_error("append_fanin: arity limit on " + g.name);
    }
    g.fanin.push_back(driver);
}

GateId Netlist::find(std::string_view name) const {
    auto it = by_name_.find(std::string(name));
    return it == by_name_.end() ? kNoGate : it->second;
}

void Netlist::finalize() {
    if (finalized_) return;
    const auto n = static_cast<GateId>(gates_.size());

    for (GateId id = 0; id < n; ++id) {
        const Gate& g = gates_[id];
        const auto arity = static_cast<std::uint32_t>(g.fanin.size());
        if (arity < min_arity(g.type) || arity > max_arity(g.type)) {
            throw std::runtime_error("invalid arity " + std::to_string(arity) +
                                     " for " + std::string(cell_type_name(g.type)) +
                                     " gate " + g.name);
        }
    }

    // Fanout lists.
    for (GateId id = 0; id < n; ++id) {
        for (GateId f : gates_[id].fanin) {
            gates_[f].fanout.push_back(id);
        }
    }

    // Kahn's algorithm on the combinational core.  Input and Dff nodes
    // are sources (a Dff consumes its D fanin but its Q output does not
    // depend on it within one clock cycle).
    std::vector<std::uint32_t> pending(n, 0);
    std::deque<GateId> ready;
    for (GateId id = 0; id < n; ++id) {
        const Gate& g = gates_[id];
        if (g.type == CellType::Input || g.type == CellType::Dff) {
            pending[id] = 0;
            ready.push_back(id);
        } else {
            pending[id] = static_cast<std::uint32_t>(g.fanin.size());
            if (pending[id] == 0) {
                throw std::runtime_error("combinational gate without fanin: " +
                                         g.name);
            }
        }
    }

    topo_.clear();
    topo_.reserve(n);
    level_.assign(n, 0);
    while (!ready.empty()) {
        const GateId id = ready.front();
        ready.pop_front();
        topo_.push_back(id);
        const Gate& g = gates_[id];
        for (GateId out : g.fanout) {
            const Gate& og = gates_[out];
            if (og.type == CellType::Input || og.type == CellType::Dff) {
                continue;  // sink side of a register: no intra-cycle dependency
            }
            level_[out] = std::max(level_[out], level_[id] + 1);
            if (--pending[out] == 0) ready.push_back(out);
        }
    }
    // Dff/Input sinks never entered `pending`; every other node must be
    // placed, else there is a combinational cycle.
    if (topo_.size() != n) {
        throw std::runtime_error("combinational cycle detected in " + name_);
    }
    depth_ = 0;
    for (std::uint32_t l : level_) depth_ = std::max(depth_, l);

    rank_.assign(n, 0);
    for (std::uint32_t i = 0; i < topo_.size(); ++i) rank_[topo_[i]] = i;

    // Core sources: PIs then DFF Qs.
    sources_.clear();
    sources_.insert(sources_.end(), inputs_.begin(), inputs_.end());
    sources_.insert(sources_.end(), dffs_.begin(), dffs_.end());
    source_index_.assign(n, std::numeric_limits<std::uint32_t>::max());
    for (std::uint32_t i = 0; i < sources_.size(); ++i) {
        source_index_[sources_[i]] = i;
    }

    // Observation points: POs then DFF D inputs.
    observes_.clear();
    for (GateId id : outputs_) {
        observes_.push_back(ObservePoint{id, gates_[id].fanin[0], false});
    }
    for (GateId id : dffs_) {
        observes_.push_back(ObservePoint{id, gates_[id].fanin[0], true});
    }

    finalized_ = true;
}

std::vector<GateId> Netlist::fanout_cone(GateId from) const {
    std::vector<GateId> cone;
    std::vector<bool> seen(gates_.size(), false);
    std::vector<GateId> stack{from};
    seen[from] = true;
    while (!stack.empty()) {
        const GateId id = stack.back();
        stack.pop_back();
        cone.push_back(id);
        const Gate& g = gates_[id];
        if (id != from &&
            (g.type == CellType::Dff || g.type == CellType::Output)) {
            continue;  // registers/pads terminate intra-cycle propagation
        }
        for (GateId out : g.fanout) {
            if (!seen[out]) {
                seen[out] = true;
                stack.push_back(out);
            }
        }
    }
    // Processing order: the root first, then combinational nodes and
    // pads by topological rank, register sinks last.  (A DFF node's
    // topological rank reflects its Q-as-source role — position 0 — not
    // its D-sink role, so rank alone would misplace it.)
    std::sort(cone.begin(), cone.end(), [this, from](GateId a, GateId b) {
        auto key = [this, from](GateId id) -> std::uint64_t {
            if (id == from) return 0;
            const bool sink = gates_[id].type == CellType::Dff;
            return (sink ? (1ULL << 33) : (1ULL << 32)) + rank_[id];
        };
        return key(a) < key(b);
    });
    return cone;
}

}  // namespace fastmon
