#include "netlist/verilog_io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/diagnostic.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg,
                       const std::string& excerpt = {}) {
    // The file name is attached by read_verilog_file, which re-throws
    // with the path filled in.
    throw Diagnostic("verilog", "", line, 0, msg, excerpt);
}

/// Widest bus a single declaration may expand to; beyond this the input
/// is treated as malformed rather than a request for gigabytes of
/// signal names.
constexpr long kMaxBusWidth = 1 << 16;

long parse_bus_index(std::string_view digits, std::size_t line,
                     const std::string& range_text) {
    long value = 0;
    const char* begin = digits.data();
    const char* end = digits.data() + digits.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || digits.empty()) {
        fail(line, "malformed bus range " + range_text);
    }
    return value;
}

/// Strips // and /* */ comments, tracking line numbers per character.
struct Source {
    std::string text;
    std::vector<std::size_t> line_of;
};

Source strip_comments(std::istream& is) {
    Source src;
    std::string raw((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    std::size_t line = 1;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '\n') ++line;
        if (raw[i] == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
            while (i < raw.size() && raw[i] != '\n') ++i;
            if (i < raw.size()) ++line;
            src.text.push_back('\n');
            src.line_of.push_back(line);
            continue;
        }
        if (raw[i] == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
            i += 2;
            while (i + 1 < raw.size() && !(raw[i] == '*' && raw[i + 1] == '/')) {
                if (raw[i] == '\n') ++line;
                ++i;
            }
            ++i;
            continue;
        }
        src.text.push_back(raw[i]);
        src.line_of.push_back(line);
    }
    return src;
}

/// A statement (text up to ';' / 'endmodule') with its starting line.
struct Statement {
    std::string text;
    std::size_t line;
};

std::vector<Statement> split_statements(const Source& src) {
    std::vector<Statement> out;
    std::string cur;
    std::size_t cur_line = 1;
    bool in_stmt = false;
    for (std::size_t i = 0; i < src.text.size(); ++i) {
        const char c = src.text[i];
        if (c == ';') {
            out.push_back(Statement{cur, cur_line});
            cur.clear();
            in_stmt = false;
            continue;
        }
        if (!in_stmt && !std::isspace(static_cast<unsigned char>(c))) {
            in_stmt = true;
            cur_line = src.line_of[i];
        }
        cur.push_back(c);
    }
    // Trailing text (e.g. "endmodule") as a last pseudo-statement.
    out.push_back(Statement{cur, cur_line});
    return out;
}

std::vector<std::string> tokens_of(const std::string& stmt) {
    std::vector<std::string> tok;
    std::string cur;
    bool escaped = false;  // inside a \escaped identifier
    auto flush = [&] {
        if (!cur.empty()) {
            tok.push_back(cur);
            cur.clear();
        }
        escaped = false;
    };
    for (char c : stmt) {
        if (escaped) {
            if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                flush();
            } else {
                cur.push_back(c);
            }
            continue;
        }
        if (c == '\\') {
            flush();
            escaped = true;
        } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                   c == '$' || c == '[' || c == ']' || c == ':') {
            cur.push_back(c);
        } else if (c == '(' || c == ')' || c == ',' || c == '=' || c == '~') {
            flush();
            tok.emplace_back(1, c);
        } else {
            flush();
        }
    }
    flush();
    return tok;
}

std::optional<CellType> primitive_type(const std::string& kw) {
    static const std::map<std::string, CellType> kMap = {
        {"and", CellType::And},     {"nand", CellType::Nand},
        {"or", CellType::Or},       {"nor", CellType::Nor},
        {"xor", CellType::Xor},     {"xnor", CellType::Xnor},
        {"not", CellType::Inv},     {"buf", CellType::Buf},
        {"dff", CellType::Dff},     {"mux2", CellType::Mux2},
        {"aoi21", CellType::Aoi21}, {"oai21", CellType::Oai21},
    };
    auto it = kMap.find(kw);
    if (it == kMap.end()) return std::nullopt;
    return it->second;
}

/// Expands "name" or a bus range decl into scalar signal names.
/// decl tokens after the keyword: optional [m:l] then comma list.
std::vector<std::string> expand_decl(const std::vector<std::string>& tok,
                                     std::size_t begin, std::size_t line) {
    std::vector<std::string> names;
    std::optional<std::pair<long, long>> range;
    std::size_t i = begin;
    if (i < tok.size() && tok[i].front() == '[') {
        const std::string& r = tok[i];
        const auto colon = r.find(':');
        if (colon == std::string::npos || r.back() != ']') {
            fail(line, "malformed bus range " + r);
        }
        const std::string_view rv = r;
        const long msb = parse_bus_index(rv.substr(1, colon - 1), line, r);
        const long lsb =
            parse_bus_index(rv.substr(colon + 1, r.size() - colon - 2),
                            line, r);
        if (std::abs(msb - lsb) >= kMaxBusWidth) {
            fail(line, "bus range too wide: " + r);
        }
        range = std::make_pair(msb, lsb);
        ++i;
    }
    for (; i < tok.size(); ++i) {
        if (tok[i] == ",") continue;
        if (!range) {
            names.push_back(tok[i]);
            continue;
        }
        long lo = range->second;
        long hi = range->first;
        if (lo > hi) std::swap(lo, hi);
        for (long b = lo; b <= hi; ++b) {
            names.push_back(tok[i] + "[" + std::to_string(b) + "]");
        }
    }
    return names;
}

}  // namespace

Netlist read_verilog(std::istream& is) {
    FaultInjector::global().fire("parser.verilog");
    const Source src = strip_comments(is);
    const std::vector<Statement> stmts = split_statements(src);

    std::string module_name = "verilog";
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    struct Inst {
        CellType type;
        std::vector<std::string> ports;  // output first (dff: q, d)
        std::size_t line;
    };
    std::vector<Inst> insts;
    struct Assign {
        std::string lhs;
        std::string rhs;
        bool invert;
        std::size_t line;
    };
    std::vector<Assign> assigns;

    for (const Statement& st : stmts) {
        const std::vector<std::string> tok = tokens_of(st.text);
        if (tok.empty()) continue;
        const std::string& kw = tok[0];
        if (kw == "module") {
            if (tok.size() < 2) fail(st.line, "module without a name");
            module_name = tok[1];
        } else if (kw == "endmodule") {
            break;
        } else if (kw == "input") {
            for (auto& n : expand_decl(tok, 1, st.line)) inputs.push_back(n);
        } else if (kw == "output") {
            for (auto& n : expand_decl(tok, 1, st.line)) outputs.push_back(n);
        } else if (kw == "wire" || kw == "reg") {
            // Declarations only; signals materialize at their driver.
        } else if (kw == "assign") {
            // assign lhs = [~] rhs
            std::size_t i = 1;
            if (i >= tok.size()) fail(st.line, "empty assign");
            Assign a;
            a.lhs = tok[i++];
            if (i >= tok.size() || tok[i] != "=") {
                fail(st.line, "assign without '='");
            }
            ++i;
            a.invert = i < tok.size() && tok[i] == "~";
            if (a.invert) ++i;
            if (i >= tok.size()) fail(st.line, "assign without source");
            a.rhs = tok[i];
            a.line = st.line;
            assigns.push_back(std::move(a));
        } else if (auto type = primitive_type(kw)) {
            // TYPE [inst_name] ( p0, p1, ... )
            std::size_t i = 1;
            if (i < tok.size() && tok[i] != "(") ++i;  // instance name
            if (i >= tok.size() || tok[i] != "(") {
                fail(st.line, "primitive without port list");
            }
            ++i;
            Inst inst;
            inst.type = *type;
            inst.line = st.line;
            for (; i < tok.size() && tok[i] != ")"; ++i) {
                if (tok[i] == ",") continue;
                inst.ports.push_back(tok[i]);
            }
            if (inst.ports.size() < 2) {
                fail(st.line, "primitive needs at least two ports");
            }
            // Benchmark-style 3-port flip-flop: (clk, q, d).
            if (inst.type == CellType::Dff && inst.ports.size() == 3) {
                inst.ports.erase(inst.ports.begin());
            }
            insts.push_back(std::move(inst));
        } else {
            fail(st.line, "unsupported construct: " + kw);
        }
    }

    Netlist netlist(module_name);
    std::map<std::string, GateId> signals;
    for (const std::string& in : inputs) {
        if (signals.contains(in)) fail(0, "duplicate input " + in);
        signals.emplace(in, netlist.add_gate(CellType::Input, in, {}));
    }
    // Declare every driven signal, then wire (forward refs through FFs).
    std::vector<GateId> inst_ids(insts.size());
    for (std::size_t k = 0; k < insts.size(); ++k) {
        const Inst& inst = insts[k];
        const std::string& out = inst.ports[0];
        if (signals.contains(out)) fail(inst.line, "signal driven twice: " + out);
        inst_ids[k] = netlist.add_gate(inst.type, out, {});
        signals.emplace(out, inst_ids[k]);
    }
    std::vector<GateId> assign_ids(assigns.size());
    for (std::size_t k = 0; k < assigns.size(); ++k) {
        const Assign& a = assigns[k];
        if (signals.contains(a.lhs)) fail(a.line, "signal driven twice: " + a.lhs);
        assign_ids[k] =
            netlist.add_gate(a.invert ? CellType::Inv : CellType::Buf,
                             a.lhs, {});
        signals.emplace(a.lhs, assign_ids[k]);
    }
    auto resolve = [&signals](const std::string& name, std::size_t line) {
        auto it = signals.find(name);
        if (it == signals.end()) fail(line, "undriven signal: " + name);
        return it->second;
    };
    for (std::size_t k = 0; k < insts.size(); ++k) {
        const Inst& inst = insts[k];
        for (std::size_t p = 1; p < inst.ports.size(); ++p) {
            netlist.append_fanin(inst_ids[k], resolve(inst.ports[p], inst.line));
        }
    }
    for (std::size_t k = 0; k < assigns.size(); ++k) {
        netlist.append_fanin(assign_ids[k],
                             resolve(assigns[k].rhs, assigns[k].line));
    }
    for (const std::string& out : outputs) {
        netlist.add_gate(CellType::Output, out + "$po",
                         {resolve(out, 0)});
    }
    netlist.finalize();
    return netlist;
}

Netlist read_verilog_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) {
        throw Diagnostic("verilog", path, 0, 0, "cannot open file", "");
    }
    try {
        return read_verilog(is);
    } catch (const Diagnostic& d) {
        // Attach the path the stream-level parser cannot know.
        throw Diagnostic(d.source(), path, d.line(), d.column(),
                         d.message(), d.excerpt());
    }
}

Netlist read_verilog_string(const std::string& text) {
    std::istringstream is(text);
    return read_verilog(is);
}

namespace {

const char* primitive_name(CellType type) {
    switch (type) {
        case CellType::And: return "and";
        case CellType::Nand: return "nand";
        case CellType::Or: return "or";
        case CellType::Nor: return "nor";
        case CellType::Xor: return "xor";
        case CellType::Xnor: return "xnor";
        case CellType::Inv: return "not";
        case CellType::Buf: return "buf";
        case CellType::Dff: return "dff";
        case CellType::Mux2: return "mux2";
        case CellType::Aoi21: return "aoi21";
        case CellType::Oai21: return "oai21";
        default: return "?";
    }
}

/// Verilog identifiers cannot contain '$' or '['; escape with '\ '.
std::string escape(const std::string& name) {
    const bool plain = std::all_of(name.begin(), name.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
    });
    if (plain && !name.empty() &&
        std::isdigit(static_cast<unsigned char>(name[0])) == 0) {
        return name;
    }
    return "\\" + name + " ";
}

}  // namespace

void write_verilog(std::ostream& os, const Netlist& netlist) {
    os << "// " << netlist.name() << " — written by fastmon\n";
    os << "module " << escape(netlist.name()) << " (";
    bool first = true;
    for (GateId id : netlist.primary_inputs()) {
        os << (first ? "" : ", ") << escape(netlist.gate(id).name);
        first = false;
    }
    for (GateId id : netlist.primary_outputs()) {
        const Gate& pad = netlist.gate(id);
        os << (first ? "" : ", ")
           << escape(netlist.gate(pad.fanin[0]).name);
        first = false;
    }
    os << ");\n";
    for (GateId id : netlist.primary_inputs()) {
        os << "  input " << escape(netlist.gate(id).name) << ";\n";
    }
    for (GateId id : netlist.primary_outputs()) {
        const Gate& pad = netlist.gate(id);
        os << "  output " << escape(netlist.gate(pad.fanin[0]).name) << ";\n";
    }
    std::size_t counter = 0;
    for (const Gate& g : netlist.gates()) {
        if (g.type == CellType::Input || g.type == CellType::Output) continue;
        os << "  " << primitive_name(g.type) << " g" << counter++ << " ("
           << escape(g.name);
        for (GateId f : g.fanin) {
            os << ", " << escape(netlist.gate(f).name);
        }
        os << ");\n";
    }
    os << "endmodule\n";
}

std::string write_verilog_string(const Netlist& netlist) {
    std::ostringstream os;
    write_verilog(os, netlist);
    return os.str();
}

}  // namespace fastmon
