// Synthetic sequential benchmark circuit generation.
//
// The paper evaluates on ISCAS'89 circuits and industrial "p"-designs
// synthesized with a commercial flow.  Neither the exact netlists nor
// the commercial ATPG are available here, so this generator produces
// deterministic ISCAS-like sequential circuits whose headline statistics
// (gate count, flip-flop count, interface width, logic depth and path
// depth *spread*) are matched per circuit.  The path-depth spread is the
// structural property the paper's results hinge on: circuits with many
// short paths relative to the clock have fault effects below the FAST
// window (monitors gain much coverage), while circuits with tightly
// distributed near-critical paths are mostly testable conventionally.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace fastmon {

struct GeneratorConfig {
    std::string name = "gen";
    std::size_t n_gates = 1000;   ///< combinational gates
    std::size_t n_ffs = 100;
    std::size_t n_inputs = 20;
    std::size_t n_outputs = 20;
    std::size_t depth = 20;       ///< target logic depth
    /// Path-depth spread in [0,1]: 0 places almost all logic close to the
    /// target depth (narrow path histogram), 1 mixes a large population
    /// of shallow logic under a thin deep tail.
    double spread = 0.5;
    std::uint64_t seed = 1;
};

/// Generates a connected, acyclic sequential circuit per `config`.
/// Deterministic for a fixed config.  The result is finalized.
Netlist generate_circuit(const GeneratorConfig& config);

/// One row of the paper's Table I, as generation parameters.
struct CircuitProfile {
    std::string name;
    std::size_t gates;
    std::size_t ffs;
    std::size_t inputs;
    std::size_t outputs;
    std::size_t depth;
    double spread;
    std::uint64_t seed;
};

/// The twelve benchmark profiles of the evaluation (s9234 ... p141k),
/// with sizes from Table I and spreads chosen to match each circuit's
/// qualitative coverage-gain regime.
const std::vector<CircuitProfile>& paper_profiles();

/// Profile lookup by name; throws if unknown.
const CircuitProfile& find_profile(const std::string& name);

/// Converts a profile to a GeneratorConfig, scaling gate/FF/interface
/// counts by `scale` (benches use scale < 1 to bound CPU fault-simulation
/// time; the scale used is always printed with the results).
GeneratorConfig profile_config(const CircuitProfile& profile, double scale = 1.0);

}  // namespace fastmon
