// Incremental static timing analysis.
//
// StaEngine replaces the free-function run_sta + throwaway-annotation
// pattern for workloads that evaluate many small perturbations of one
// base annotation (the lifetime campaign: N devices x Y years, each
// year only nudging aging factors and a handful of defect arcs).  The
// engine owns the flattened arc-delay arrays and the arrival /
// downstream result arenas, and exposes
//
//   analyze()       full from-scratch pass over the base annotation,
//   update(delta)   re-propagation restricted to the fanout cones of
//                   the arcs `delta` actually changes (bitwise change
//                   detection prunes cones early), and
//   rebase(base)    cheap retargeting to another device's annotation
//                   without reallocating the arenas.
//
// Bit-identity contract: update(delta) produces exactly the result of
// transforming the base annotation with `delta` and running the classic
// full pass — same arithmetic, same operation order, so equal bit
// patterns.  A delta that is a pure power-of-two uniform scale is
// applied as an O(n) exact rescale of the cached results without any
// re-propagation (multiplication by 2^k commutes with FP rounding);
// other uniform factors fall back to cone re-propagation seeded at
// every changed gate.
#pragma once

#include <cstdint>
#include <vector>

#include "timing/delay_delta.hpp"
#include "timing/delay_model.hpp"
#include "timing/sta.hpp"

namespace fastmon {

class StaEngine {
public:
    /// What update()/analyze() keep current.  Arrivals computes only
    /// max/min arrival times plus the critical path / clock period —
    /// the lifetime-monitor hot path; downstream and path_through stay
    /// zero.  Full additionally maintains the backward pass (required
    /// by fault classification and monitor placement).
    enum class Scope : std::uint8_t { Arrivals, Full };

    struct Stats {
        std::uint64_t full_passes = 0;
        std::uint64_t incremental_updates = 0;
        std::uint64_t dense_updates = 0;    ///< delta touched most gates
        std::uint64_t scaled_updates = 0;   ///< O(n) exact rescales
        std::uint64_t rebases = 0;
        std::uint64_t nodes_repropagated = 0;
        std::uint64_t nodes_pruned = 0;     ///< cone cut by bitwise equality
    };

    /// `base` must outlive the engine (or be replaced via rebase()).
    StaEngine(const Netlist& netlist, const DelayAnnotation& base,
              double clock_margin = 1.05, Scope scope = Scope::Full);

    StaEngine(const StaEngine&) = delete;
    StaEngine& operator=(const StaEngine&) = delete;
    /// Moves transfer the arenas and null the source's netlist_/base_
    /// pointers and valid_ flag (a defaulted move would leave them
    /// pointing at live objects next to empty arenas and a stale
    /// result_).  A moved-from engine may only be destroyed or
    /// assigned to; valid() reports false on it.
    StaEngine(StaEngine&& other) noexcept;
    StaEngine& operator=(StaEngine&& other) noexcept;

    /// Retargets the engine to another annotation of the *same* netlist,
    /// reusing every internal arena.  Invalidates the cached result; the
    /// next analyze()/update() runs a full pass.
    void rebase(const DelayAnnotation& base);

    /// Full from-scratch pass over the unmodified base annotation.
    const StaResult& analyze();

    /// Result of STA over base transformed by `delta` (deltas are
    /// absolute with respect to the base, not cumulative).  Bit-identical
    /// to `StaEngine(nl, base.transformed(delta), ...).analyze()`.
    const StaResult& update(const DelayDelta& delta);

    /// Last computed result.  Valid after analyze()/update() returned
    /// normally; a cancellation mid-pass leaves it stale until the next
    /// successful pass.
    [[nodiscard]] const StaResult& result() const { return result_; }

    /// Moves the result out (the compatibility path for code that wants
    /// an owned StaResult).  The engine needs a fresh analyze()/update()
    /// afterwards.
    [[nodiscard]] StaResult take_result();

    [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
    [[nodiscard]] double clock_margin() const { return margin_; }
    [[nodiscard]] Scope scope() const { return scope_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    /// False after construction-from / assignment-from this engine
    /// (moved-from state) and between a cancelled pass and the next
    /// successful one; result() is only meaningful when true.
    [[nodiscard]] bool valid() const { return valid_; }

private:
    void load_base(const DelayAnnotation& base);
    void reset_gate_arcs(GateId id);
    /// Applies `delta` on top of the base arrays.  When `seeds` is
    /// non-null the sparse path runs: only touched gates are rebuilt
    /// and the ones whose arc delays bitwise changed are appended.
    /// When null the rebuild is dense and unconditional (every arc
    /// reset from base, then the delta applied) — the caller follows
    /// up with full passes.
    void apply_delta(const DelayDelta& delta, std::vector<GateId>* seeds);
    void full_forward();
    void full_backward();
    void incremental_forward(const std::vector<GateId>& seeds);
    void incremental_backward(const std::vector<GateId>& seeds);
    void refresh_path_through();
    void refresh_clock();
    void poll_cancel();

    const Netlist* netlist_;
    const DelayAnnotation* base_;
    double margin_;
    Scope scope_;

    /// Flattened arc layout (same shape as DelayAnnotation): per-gate
    /// start offset into the max/min arrays.
    std::vector<std::uint32_t> offset_;
    /// Flattened traversal structure (the forward passes are the
    /// campaign's innermost loop; per-gate vector indirection through
    /// Netlist costs more than the arithmetic):
    std::vector<GateId> topo_;           ///< topological order copy
    std::vector<std::uint8_t> is_source_;  ///< Input or Dff (arrival 0)
    std::vector<GateId> fanin_flat_;     ///< arc-aligned driver ids
    std::vector<Time> base_max_, base_min_;  ///< per arc: max/min(rise, fall)
    std::vector<Time> cur_max_, cur_min_;    ///< base transformed by the delta
    double cur_uniform_ = 1.0;               ///< uniform factor currently applied
    std::vector<GateId> dirty_gates_;        ///< gates touched by the last delta

    /// Epoch-stamped scratch marks (no per-update clearing).
    std::vector<std::uint32_t> touch_stamp_;
    std::uint32_t touch_epoch_ = 0;
    std::vector<std::uint32_t> fwd_stamp_;
    std::uint32_t fwd_epoch_ = 0;
    std::vector<std::uint32_t> back_stamp_;
    std::uint32_t back_epoch_ = 0;
    std::vector<GateId> scratch_touched_;
    std::vector<Time> scratch_old_;
    std::vector<GateId> scratch_seeds_;
    std::vector<GateId> scratch_dirty_;

    StaResult result_;
    bool valid_ = false;
    Stats stats_;
    std::size_t poll_counter_ = 0;
};

}  // namespace fastmon
