#include "timing/sdf.hpp"

#include <charconv>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/diagnostic.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {

void write_sdf(std::ostream& os, const Netlist& netlist,
               const DelayAnnotation& delays) {
    os << "(DELAYFILE\n";
    os << "  (SDFVERSION \"3.0\")\n";
    os << "  (DESIGN \"" << netlist.name() << "\")\n";
    os << "  (TIMESCALE 1ps)\n";
    char buf[128];
    for (GateId id = 0; id < netlist.size(); ++id) {
        const Gate& g = netlist.gate(id);
        if (!is_combinational(g.type)) continue;
        os << "  (CELL\n";
        os << "    (CELLTYPE \"" << cell_type_name(g.type) << "\")\n";
        os << "    (INSTANCE " << g.name << ")\n";
        os << "    (DELAY (ABSOLUTE\n";
        for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
            const PinDelay d = delays.arc(id, pin);
            std::snprintf(buf, sizeof buf,
                          "      (IOPATH in%u out (%.4f) (%.4f))\n", pin,
                          d.rise, d.fall);
            os << buf;
        }
        os << "    ))\n";
        os << "  )\n";
    }
    os << ")\n";
}

std::string write_sdf_string(const Netlist& netlist,
                             const DelayAnnotation& delays) {
    std::ostringstream os;
    write_sdf(os, netlist, delays);
    return os.str();
}

namespace {

/// Tokenizer: parentheses are their own tokens; everything else is
/// whitespace-separated.  Quoted strings become single tokens (without
/// the quotes).  Each token remembers its 1-based source line for
/// diagnostics.
struct SdfTokens {
    std::vector<std::string> text;
    std::vector<std::size_t> line;
};

SdfTokens tokenize_sdf(std::istream& is) {
    SdfTokens tokens;
    std::string cur;
    std::size_t cur_line = 1;
    std::size_t line = 1;
    char c = 0;
    auto flush = [&] {
        if (!cur.empty()) {
            tokens.text.push_back(cur);
            tokens.line.push_back(cur_line);
            cur.clear();
        }
    };
    while (is.get(c)) {
        if (c == '\n') ++line;
        if (c == '(' || c == ')') {
            flush();
            tokens.text.emplace_back(1, c);
            tokens.line.push_back(line);
        } else if (c == '"') {
            flush();
            std::string s;
            const std::size_t open_line = line;
            while (is.get(c) && c != '"') {
                if (c == '\n') ++line;
                s.push_back(c);
            }
            tokens.text.push_back(s);
            tokens.line.push_back(open_line);
        } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            flush();
        } else {
            if (cur.empty()) cur_line = line;
            cur.push_back(c);
        }
    }
    flush();
    return tokens;
}

[[noreturn]] void sdf_fail(std::size_t line, const std::string& msg,
                           const std::string& excerpt = {}) {
    throw Diagnostic("sdf", "", line, 0, msg, excerpt);
}

double sdf_number(const std::string& token, std::size_t line) {
    double value = 0.0;
    const char* begin = token.c_str();
    const char* end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || token.empty()) {
        sdf_fail(line, "malformed delay value", token);
    }
    return value;
}

}  // namespace

DelayAnnotation read_sdf(std::istream& is, const Netlist& netlist) {
    FaultInjector::global().fire("parser.sdf");
    DelayAnnotation ann = DelayAnnotation::nominal(netlist);
    const SdfTokens tokens = tokenize_sdf(is);
    const std::vector<std::string>& tok = tokens.text;

    GateId current = kNoGate;
    for (std::size_t i = 0; i < tok.size(); ++i) {
        if (tok[i] == "INSTANCE" && i + 1 < tok.size()) {
            const GateId id = netlist.find(tok[i + 1]);
            if (id == kNoGate) {
                sdf_fail(tokens.line[i], "instance not in netlist",
                         tok[i + 1]);
            }
            current = id;
        } else if (tok[i] == "IOPATH") {
            // IOPATH in<pin> out ( rise ) ( fall )
            if (current == kNoGate || i + 8 >= tok.size()) {
                sdf_fail(tokens.line[i], "IOPATH outside CELL or truncated");
            }
            const std::string& pin_name = tok[i + 1];
            if (pin_name.rfind("in", 0) != 0) {
                sdf_fail(tokens.line[i], "unsupported IOPATH port",
                         pin_name);
            }
            std::uint32_t pin = 0;
            {
                const char* begin = pin_name.c_str() + 2;
                const char* end = pin_name.c_str() + pin_name.size();
                const auto [ptr, ec] = std::from_chars(begin, end, pin);
                if (ec != std::errc{} || ptr != end || begin == end) {
                    sdf_fail(tokens.line[i], "malformed IOPATH pin",
                             pin_name);
                }
            }
            if (pin >= netlist.gate(current).fanin.size()) {
                sdf_fail(tokens.line[i],
                         "pin out of range on " + netlist.gate(current).name,
                         pin_name);
            }
            // tok layout: IOPATH inN out ( R ) ( F )
            const double rise = sdf_number(tok[i + 4], tokens.line[i + 4]);
            const double fall = sdf_number(tok[i + 7], tokens.line[i + 7]);
            ann.set_arc(current, pin, PinDelay{rise, fall});
            i += 8;
        }
    }
    return ann;
}

DelayAnnotation read_sdf_string(const std::string& text, const Netlist& netlist) {
    std::istringstream is(text);
    return read_sdf(is, netlist);
}

}  // namespace fastmon
