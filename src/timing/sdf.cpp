#include "timing/sdf.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace fastmon {

void write_sdf(std::ostream& os, const Netlist& netlist,
               const DelayAnnotation& delays) {
    os << "(DELAYFILE\n";
    os << "  (SDFVERSION \"3.0\")\n";
    os << "  (DESIGN \"" << netlist.name() << "\")\n";
    os << "  (TIMESCALE 1ps)\n";
    char buf[128];
    for (GateId id = 0; id < netlist.size(); ++id) {
        const Gate& g = netlist.gate(id);
        if (!is_combinational(g.type)) continue;
        os << "  (CELL\n";
        os << "    (CELLTYPE \"" << cell_type_name(g.type) << "\")\n";
        os << "    (INSTANCE " << g.name << ")\n";
        os << "    (DELAY (ABSOLUTE\n";
        for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
            const PinDelay d = delays.arc(id, pin);
            std::snprintf(buf, sizeof buf,
                          "      (IOPATH in%u out (%.4f) (%.4f))\n", pin,
                          d.rise, d.fall);
            os << buf;
        }
        os << "    ))\n";
        os << "  )\n";
    }
    os << ")\n";
}

std::string write_sdf_string(const Netlist& netlist,
                             const DelayAnnotation& delays) {
    std::ostringstream os;
    write_sdf(os, netlist, delays);
    return os.str();
}

namespace {

/// Tokenizer: parentheses are their own tokens; everything else is
/// whitespace-separated.  Quoted strings become single tokens (without
/// the quotes).
std::vector<std::string> tokenize_sdf(std::istream& is) {
    std::vector<std::string> tokens;
    std::string cur;
    char c = 0;
    auto flush = [&] {
        if (!cur.empty()) {
            tokens.push_back(cur);
            cur.clear();
        }
    };
    while (is.get(c)) {
        if (c == '(' || c == ')') {
            flush();
            tokens.emplace_back(1, c);
        } else if (c == '"') {
            flush();
            std::string s;
            while (is.get(c) && c != '"') s.push_back(c);
            tokens.push_back(s);
        } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            flush();
        } else {
            cur.push_back(c);
        }
    }
    flush();
    return tokens;
}

}  // namespace

DelayAnnotation read_sdf(std::istream& is, const Netlist& netlist) {
    DelayAnnotation ann = DelayAnnotation::nominal(netlist);
    const std::vector<std::string> tok = tokenize_sdf(is);

    GateId current = kNoGate;
    for (std::size_t i = 0; i < tok.size(); ++i) {
        if (tok[i] == "INSTANCE" && i + 1 < tok.size()) {
            const GateId id = netlist.find(tok[i + 1]);
            if (id == kNoGate) {
                throw std::runtime_error("SDF instance not in netlist: " +
                                         tok[i + 1]);
            }
            current = id;
        } else if (tok[i] == "IOPATH") {
            // IOPATH in<pin> out ( rise ) ( fall )
            if (current == kNoGate || i + 8 >= tok.size()) {
                throw std::runtime_error("SDF: IOPATH outside CELL or truncated");
            }
            const std::string& pin_name = tok[i + 1];
            if (pin_name.rfind("in", 0) != 0) {
                throw std::runtime_error("SDF: unsupported IOPATH port " +
                                         pin_name);
            }
            const auto pin =
                static_cast<std::uint32_t>(std::stoul(pin_name.substr(2)));
            if (pin >= netlist.gate(current).fanin.size()) {
                throw std::runtime_error("SDF: pin out of range on " +
                                         netlist.gate(current).name);
            }
            // tok layout: IOPATH inN out ( R ) ( F )
            const double rise = std::stod(tok[i + 4]);
            const double fall = std::stod(tok[i + 7]);
            ann.set_arc(current, pin, PinDelay{rise, fall});
            i += 8;
        }
    }
    return ann;
}

DelayAnnotation read_sdf_string(const std::string& text, const Netlist& netlist) {
    std::istringstream is(text);
    return read_sdf(is, netlist);
}

}  // namespace fastmon
