// Static timing analysis of the combinational core.
//
// Computes, per node, earliest/latest signal arrival (from the launch
// clock edge) and the longest path *through* every node; derives the
// critical path length and the nominal clock period
// clk := 1.05 * cpl (Sec. V).  Used for:
//   * fault classification (at-speed detectable iff slack < delta),
//   * monitor placement (long path ends = pseudo-outputs with the
//     largest arrival times),
//   * timing-redundancy analysis.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "timing/delay_model.hpp"

namespace fastmon {

struct StaResult {
    /// Latest/earliest arrival time at each node's output.
    std::vector<Time> max_arrival;
    std::vector<Time> min_arrival;
    /// Longest combinational delay from each node's output to any
    /// observation point.
    std::vector<Time> downstream;
    /// Longest path through each node: max_arrival + downstream.
    std::vector<Time> path_through;
    /// Longest arrival over all observation points.
    Time critical_path_length = 0.0;
    /// Nominal clock period: margin * cpl.
    Time clock_period = 0.0;

    /// Positive slack of a node under the nominal clock.
    [[nodiscard]] Time slack(GateId id) const {
        return clock_period - path_through[id];
    }
};

/// Observation points sorted by decreasing arrival time ("long path
/// ends" [25]); the head of this order is where monitors are placed.
std::vector<ObservePoint> observe_points_by_path_length(
    const Netlist& netlist, const StaResult& sta);

}  // namespace fastmon
