#include "timing/delay_model.hpp"

#include <algorithm>
#include <cmath>

#include "timing/delay_delta.hpp"
#include "util/prng.hpp"

namespace fastmon {

DelayAnnotation DelayAnnotation::nominal(const Netlist& netlist,
                                         const CellLibrary& lib) {
    return build(netlist, lib, 0.0, 0);
}

DelayAnnotation DelayAnnotation::with_variation(const Netlist& netlist,
                                                double sigma_fraction,
                                                std::uint64_t seed,
                                                const CellLibrary& lib) {
    return build(netlist, lib, sigma_fraction, seed);
}

void DelayAnnotation::lognormal_variation_factors(
    const Netlist& netlist, double sigma_log, std::uint64_t seed,
    std::vector<double>& factors) {
    factors.assign(netlist.size(), 1.0);
    if (sigma_log <= 0.0) return;
    // One normal per combinational gate, ascending id: the draw order
    // is part of the campaign determinism contract — per-device
    // annotations are bit-identical across releases and engines.
    Prng rng = Prng::stream(seed, 0x10C'A15ULL);
    const double mu = -0.5 * sigma_log * sigma_log;  // E[factor] = 1
    for (GateId id = 0; id < netlist.size(); ++id) {
        if (!is_combinational(netlist.gate(id).type)) continue;
        factors[id] = std::exp(rng.normal(mu, sigma_log));
    }
}

DelayAnnotation DelayAnnotation::with_lognormal_variation(
    const Netlist& netlist, double sigma_log, std::uint64_t seed,
    const CellLibrary& lib) {
    DelayAnnotation ann = build(netlist, lib, 0.0, 0);
    if (sigma_log <= 0.0) return ann;
    // Expressed as a DelayDelta so the same composable path covers
    // process variation, aging, and defects.
    std::vector<double> factors;
    lognormal_variation_factors(netlist, sigma_log, seed, factors);
    DelayDelta delta;
    for (GateId id = 0; id < netlist.size(); ++id) {
        if (!is_combinational(netlist.gate(id).type)) continue;
        delta.scale(id, factors[id]);
    }
    ann.transform(delta);
    return ann;
}

DelayAnnotation DelayAnnotation::build(const Netlist& netlist,
                                       const CellLibrary& lib,
                                       double sigma_fraction,
                                       std::uint64_t seed) {
    DelayAnnotation ann;
    Prng rng(seed ^ 0xDE1A'F00DULL);
    const auto n = netlist.size();
    ann.offset_.resize(n);
    ann.nominal_mean_.assign(n, 0.0);

    std::uint32_t cursor = 0;
    for (GateId id = 0; id < n; ++id) {
        const Gate& g = netlist.gate(id);
        ann.offset_[id] = cursor;
        const auto arity = static_cast<std::uint32_t>(g.fanin.size());
        // One per-instance variation factor, correlated across the arcs
        // of the gate (intra-gate transistors share process corners).
        double factor = 1.0;
        if (sigma_fraction > 0.0 && is_combinational(g.type)) {
            factor = rng.normal(1.0, sigma_fraction);
            factor = std::clamp(factor, 1.0 - 3.0 * sigma_fraction,
                                1.0 + 3.0 * sigma_fraction);
            factor = std::max(factor, 0.05);
        }
        const Time load =
            g.fanout.size() > 1
                ? lib.load_delay_per_fanout() *
                      static_cast<Time>(g.fanout.size() - 1)
                : 0.0;
        Time nominal_sum = 0.0;
        for (std::uint32_t pin = 0; pin < arity; ++pin) {
            PinDelay d{0.0, 0.0};
            if (is_combinational(g.type)) {
                const PinDelay nom = lib.nominal_delay(g.type, arity, pin);
                nominal_sum += 0.5 * (nom.rise + nom.fall);
                d.rise = nom.rise * factor + load;
                d.fall = nom.fall * factor + load;
            }
            ann.arcs_.push_back(d);
            ++cursor;
        }
        if (arity > 0 && is_combinational(g.type)) {
            ann.nominal_mean_[id] = nominal_sum / static_cast<Time>(arity);
        }
    }
    ann.glitch_threshold_ = lib.min_gate_delay();
    return ann;
}

DelayAnnotation& DelayAnnotation::transform(const DelayDelta& delta) {
    if (delta.uniform_scale != 1.0) {
        for (PinDelay& d : arcs_) {
            d.rise *= delta.uniform_scale;
            d.fall *= delta.uniform_scale;
        }
    }
    for (const DelayDelta::GateScale& s : delta.scales) {
        scale_gate(s.gate, s.factor);
    }
    for (const DelayDelta::ArcExtra& e : delta.extras) {
        const std::uint32_t begin = offset_[e.gate];
        const std::uint32_t end = e.gate + 1 < offset_.size()
                                      ? offset_[e.gate + 1]
                                      : static_cast<std::uint32_t>(arcs_.size());
        const std::uint32_t first =
            e.pin == DelayDelta::kAllPins ? begin : begin + e.pin;
        const std::uint32_t last =
            e.pin == DelayDelta::kAllPins ? end : begin + e.pin + 1;
        for (std::uint32_t i = first; i < last; ++i) {
            arcs_[i].rise += e.extra;
            arcs_[i].fall += e.extra;
        }
    }
    return *this;
}

DelayAnnotation DelayAnnotation::transformed(const DelayDelta& delta) const {
    DelayAnnotation copy = *this;
    copy.transform(delta);
    return copy;
}

void DelayAnnotation::scale_gate(GateId gate, double factor) {
    const std::uint32_t begin = offset_[gate];
    const std::uint32_t end = gate + 1 < offset_.size()
                                  ? offset_[gate + 1]
                                  : static_cast<std::uint32_t>(arcs_.size());
    for (std::uint32_t i = begin; i < end; ++i) {
        arcs_[i].rise *= factor;
        arcs_[i].fall *= factor;
    }
}

}  // namespace fastmon
