#include "timing/batch_sta_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/cancel.hpp"

namespace fastmon {

namespace {

constexpr std::size_t kCancelStride = 4096;

// Same exactness test as the scalar engine: multiplying by 2^k shifts
// the exponent without touching the mantissa, so rescaling cached
// columns commutes with FP rounding.
bool is_power_of_two(double v) {
    if (!(v > 0.0) || !std::isfinite(v)) return false;
    int exp = 0;
    return std::frexp(v, &exp) == 0.5;
}

}  // namespace

BatchStaEngine::BatchStaEngine(const Netlist& netlist,
                               const DelayAnnotation& base,
                               double clock_margin, bool track_min)
    : netlist_(&netlist), margin_(clock_margin), track_min_(track_min) {
    assert(netlist.finalized());
    const std::size_t n = netlist.size();
    offset_.resize(n + 1);
    std::uint32_t cursor = 0;
    for (GateId id = 0; id < n; ++id) {
        offset_[id] = cursor;
        cursor += static_cast<std::uint32_t>(netlist.gate(id).fanin.size());
    }
    offset_[n] = cursor;
    const auto order = netlist.topo_order();
    topo_.assign(order.begin(), order.end());
    is_source_.resize(n);
    fanin_flat_.resize(cursor);
    base_max_.resize(cursor);
    if (track_min_) base_min_.resize(cursor);
    for (GateId id = 0; id < n; ++id) {
        const Gate& g = netlist.gate(id);
        is_source_[id] =
            g.type == CellType::Input || g.type == CellType::Dff ? 1 : 0;
        const std::uint32_t start = offset_[id];
        for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
            fanin_flat_[start + pin] = g.fanin[pin];
            const PinDelay d = base.arc(id, pin);
            base_max_[start + pin] = std::max(d.rise, d.fall);
            if (track_min_) {
                base_min_[start + pin] = std::min(d.rise, d.fall);
            }
        }
    }
    const std::size_t cols = static_cast<std::size_t>(cursor) * kBatchWidth;
    lane_base_max_.resize(cols);
    cur_max_.resize(cols);
    arr_max_.assign(n * kBatchWidth, 0.0);
    if (track_min_) {
        lane_base_min_.resize(cols);
        cur_min_.resize(cols);
        arr_min_.assign(n * kBatchWidth, 0.0);
    }
    // Every lane starts at the shared base, inactive.
    for (std::size_t i = 0; i < cursor; ++i) {
        for (std::size_t l = 0; l < kBatchWidth; ++l) {
            lane_base_max_[i * kBatchWidth + l] = base_max_[i];
            if (track_min_) {
                lane_base_min_[i * kBatchWidth + l] = base_min_[i];
            }
        }
    }
    lane_uniform_.fill(1.0);
}

void BatchStaEngine::load_lane(std::size_t lane,
                               std::span<const double> gate_factors) {
    assert(lane < kBatchWidth);
    assert(gate_factors.size() == netlist_->size());
    const std::size_t n = netlist_->size();
    // Per-gate scaling of the shared base.  Scaling by a positive
    // factor is weakly monotone, so max/min over (rise, fall) commute
    // with it bit-for-bit — the lane column equals what a scalar engine
    // would load from the materialized per-device annotation.
    for (GateId id = 0; id < n; ++id) {
        const double f = gate_factors[id];
        const std::uint32_t begin = offset_[id];
        const std::uint32_t end = offset_[id + 1];
        if (f == 1.0) {
            for (std::uint32_t i = begin; i < end; ++i) {
                lane_base_max_[i * kBatchWidth + lane] = base_max_[i];
                if (track_min_) {
                    lane_base_min_[i * kBatchWidth + lane] = base_min_[i];
                }
            }
        } else {
            for (std::uint32_t i = begin; i < end; ++i) {
                lane_base_max_[i * kBatchWidth + lane] = base_max_[i] * f;
                if (track_min_) {
                    lane_base_min_[i * kBatchWidth + lane] =
                        base_min_[i] * f;
                }
            }
        }
    }
    active_[lane] = 1;
    // NaN = "current columns unrelated to the new lane base": the next
    // update must rebuild densely before the rescale tier may trigger.
    lane_uniform_[lane] = std::numeric_limits<double>::quiet_NaN();
    ++stats_.lane_loads;
}

void BatchStaEngine::load_lane(std::size_t lane) {
    assert(lane < kBatchWidth);
    const std::size_t num_arcs = offset_[netlist_->size()];
    for (std::size_t i = 0; i < num_arcs; ++i) {
        lane_base_max_[i * kBatchWidth + lane] = base_max_[i];
        if (track_min_) {
            lane_base_min_[i * kBatchWidth + lane] = base_min_[i];
        }
    }
    active_[lane] = 1;
    lane_uniform_[lane] = std::numeric_limits<double>::quiet_NaN();
    ++stats_.lane_loads;
}

void BatchStaEngine::retire_lane(std::size_t lane) {
    assert(lane < kBatchWidth);
    if (active_[lane]) {
        active_[lane] = 0;
        ++stats_.lanes_retired;
    }
}

std::size_t BatchStaEngine::active_lanes() const {
    std::size_t count = 0;
    for (std::uint8_t a : active_) count += a;
    return count;
}

void BatchStaEngine::poll_cancel() {
    // Batched per update (the inner loops stay pure); the amortized
    // cadence matches the scalar engine's per-node stride.
    poll_counter_ += topo_.size();
    if (poll_counter_ >= kCancelStride) {
        poll_counter_ = 0;
        CancelToken::global().throw_if_cancelled();
    }
}

void BatchStaEngine::rescale(const BatchDelayDelta& batch) {
    std::array<double, kBatchWidth> ratio;
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        ratio[l] = 1.0;
        if (!active_[l] || !batch.lanes[l]) continue;
        const double u = batch.lanes[l]->uniform_scale;
        ratio[l] = u / lane_uniform_[l];
        lane_uniform_[l] = u;
    }
    const std::size_t num_arcs = offset_[netlist_->size()];
    for (std::size_t i = 0; i < num_arcs; ++i) {
        Time* const cmax = cur_max_.data() + i * kBatchWidth;
        for (std::size_t l = 0; l < kBatchWidth; ++l) cmax[l] *= ratio[l];
    }
    const std::size_t n = netlist_->size();
    for (std::size_t g = 0; g < n; ++g) {
        Time* const amax = arr_max_.data() + g * kBatchWidth;
        for (std::size_t l = 0; l < kBatchWidth; ++l) amax[l] *= ratio[l];
    }
    if (track_min_) {
        for (std::size_t i = 0; i < num_arcs; ++i) {
            Time* const cmin = cur_min_.data() + i * kBatchWidth;
            for (std::size_t l = 0; l < kBatchWidth; ++l) {
                cmin[l] *= ratio[l];
            }
        }
        for (std::size_t g = 0; g < n; ++g) {
            Time* const amin = arr_min_.data() + g * kBatchWidth;
            for (std::size_t l = 0; l < kBatchWidth; ++l) {
                amin[l] *= ratio[l];
            }
        }
    }
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        cpl_[l] *= ratio[l];
        clock_[l] = margin_ * cpl_[l];
    }
    ++stats_.scaled_updates;
}

void BatchStaEngine::apply(const BatchDelayDelta& batch) {
    const std::size_t num_arcs = offset_[netlist_->size()];
    // Stage 1: uniform scales.  Lanes without a delta (retired) revert
    // to their lane base — their columns keep computing, unread.
    std::array<double, kBatchWidth> uniform;
    bool all_one = true;
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        const DelayDelta* d = batch.lanes[l];
        uniform[l] = d ? d->uniform_scale : 1.0;
        all_one = all_one && uniform[l] == 1.0;
    }
    // Common-shape detection (campaign fast path): every lane's delta
    // scales the same gate sequence — the aging delta always does (all
    // combinational gates, ascending).  `ascending` additionally allows
    // fusing the base copy and the scale stage into one merge-walk.
    const DelayDelta* shape = nullptr;
    bool common_shape = true;
    bool ascending = true;
    if (batch.aligned) {
        // Caller-asserted shape (the campaign rollout fills every lane
        // from the same DeviceDegradation formula): skip detection.
        for (std::size_t l = 0; l < kBatchWidth && !shape; ++l) {
            shape = batch.lanes[l];
        }
#ifndef NDEBUG
        for (std::size_t l = 0; l < kBatchWidth; ++l) {
            const DelayDelta* d = batch.lanes[l];
            if (!d) continue;
            assert(d->scales.size() == shape->scales.size());
            for (std::size_t j = 0; j < shape->scales.size(); ++j) {
                assert(d->scales[j].gate == shape->scales[j].gate);
                assert(j == 0 ||
                       shape->scales[j].gate > shape->scales[j - 1].gate);
            }
        }
#endif
    } else {
        for (std::size_t l = 0; l < kBatchWidth && common_shape; ++l) {
            const DelayDelta* d = batch.lanes[l];
            if (!d) continue;
            if (!shape) {
                shape = d;
                for (std::size_t j = 1; j < shape->scales.size(); ++j) {
                    if (shape->scales[j].gate <= shape->scales[j - 1].gate) {
                        ascending = false;
                        break;
                    }
                }
                continue;
            }
            if (d->scales.size() != shape->scales.size()) {
                common_shape = false;
                break;
            }
            for (std::size_t j = 0; j < shape->scales.size(); ++j) {
                if (d->scales[j].gate != shape->scales[j].gate) {
                    common_shape = false;
                    break;
                }
            }
        }
    }

    if (all_one && common_shape && ascending && shape &&
        !shape->scales.empty()) {
        // Fused stage 1+2: cur = lane_base * factor in one pass (the
        // same product bits as copy-then-multiply), plain copies for
        // unscaled gates.  Entries are consumed in order, so each
        // lane's column still sees its factors in entry order.
        std::array<double, kBatchWidth> factor;
        const std::size_t n = netlist_->size();
        const std::size_t ns = shape->scales.size();
        std::size_t j = 0;
        for (GateId g = 0; g < n; ++g) {
            const std::uint32_t begin = offset_[g];
            const std::uint32_t end = offset_[g + 1];
            if (j < ns && shape->scales[j].gate == g) {
                for (std::size_t l = 0; l < kBatchWidth; ++l) {
                    const DelayDelta* d = batch.lanes[l];
                    factor[l] = d ? d->scales[j].factor : 1.0;
                }
                ++j;
                for (std::uint32_t i = begin; i < end; ++i) {
                    const Time* const bmax =
                        lane_base_max_.data() + i * kBatchWidth;
                    Time* const cmax = cur_max_.data() + i * kBatchWidth;
                    for (std::size_t l = 0; l < kBatchWidth; ++l) {
                        cmax[l] = bmax[l] * factor[l];
                    }
                }
                if (track_min_) {
                    for (std::uint32_t i = begin; i < end; ++i) {
                        const Time* const bmin =
                            lane_base_min_.data() + i * kBatchWidth;
                        Time* const cmin =
                            cur_min_.data() + i * kBatchWidth;
                        for (std::size_t l = 0; l < kBatchWidth; ++l) {
                            cmin[l] = bmin[l] * factor[l];
                        }
                    }
                }
            } else {
                const std::size_t first = begin * kBatchWidth;
                const std::size_t count =
                    (end - begin) * kBatchWidth;
                std::copy_n(lane_base_max_.data() + first, count,
                            cur_max_.data() + first);
                if (track_min_) {
                    std::copy_n(lane_base_min_.data() + first, count,
                                cur_min_.data() + first);
                }
            }
        }
        assert(j == ns);
        finish_apply(batch);
        return;
    }

    if (all_one) {
        std::copy(lane_base_max_.begin(), lane_base_max_.end(),
                  cur_max_.begin());
        if (track_min_) {
            std::copy(lane_base_min_.begin(), lane_base_min_.end(),
                      cur_min_.begin());
        }
    } else {
        // x * 1.0 is bitwise x, so unchanged lanes stay exact.
        for (std::size_t i = 0; i < num_arcs; ++i) {
            const Time* const bmax = lane_base_max_.data() + i * kBatchWidth;
            Time* const cmax = cur_max_.data() + i * kBatchWidth;
            for (std::size_t l = 0; l < kBatchWidth; ++l) {
                cmax[l] = bmax[l] * uniform[l];
            }
        }
        if (track_min_) {
            for (std::size_t i = 0; i < num_arcs; ++i) {
                const Time* const bmin =
                    lane_base_min_.data() + i * kBatchWidth;
                Time* const cmin = cur_min_.data() + i * kBatchWidth;
                for (std::size_t l = 0; l < kBatchWidth; ++l) {
                    cmin[l] = bmin[l] * uniform[l];
                }
            }
        }
    }
    // Stage 2: per-gate scales in entry order.  With a common shape the
    // entry loop runs lane-innermost — a contiguous fixed-trip-count
    // multiply the compiler vectorizes.  Each lane's column still sees
    // its own factors in entry order, so the arithmetic sequence per
    // lane is unchanged (null lanes multiply by 1.0: bitwise identity
    // on an unread column).
    if (common_shape && shape && !shape->scales.empty()) {
        std::array<double, kBatchWidth> factor;
        for (std::size_t j = 0; j < shape->scales.size(); ++j) {
            for (std::size_t l = 0; l < kBatchWidth; ++l) {
                const DelayDelta* d = batch.lanes[l];
                factor[l] = d ? d->scales[j].factor : 1.0;
            }
            const GateId gate = shape->scales[j].gate;
            const std::uint32_t begin = offset_[gate];
            const std::uint32_t end = offset_[gate + 1];
            for (std::uint32_t i = begin; i < end; ++i) {
                Time* const cmax = cur_max_.data() + i * kBatchWidth;
                for (std::size_t l = 0; l < kBatchWidth; ++l) {
                    cmax[l] *= factor[l];
                }
            }
            if (track_min_) {
                for (std::uint32_t i = begin; i < end; ++i) {
                    Time* const cmin = cur_min_.data() + i * kBatchWidth;
                    for (std::size_t l = 0; l < kBatchWidth; ++l) {
                        cmin[l] *= factor[l];
                    }
                }
            }
        }
    } else {
        for (std::size_t l = 0; l < kBatchWidth; ++l) {
            const DelayDelta* d = batch.lanes[l];
            if (!d) continue;
            for (const DelayDelta::GateScale& s : d->scales) {
                for (std::uint32_t i = offset_[s.gate];
                     i < offset_[s.gate + 1]; ++i) {
                    cur_max_[i * kBatchWidth + l] *= s.factor;
                    if (track_min_) {
                        cur_min_[i * kBatchWidth + l] *= s.factor;
                    }
                }
            }
        }
    }
    finish_apply(batch);
}

// Stage 3: additive extras in entry order (defect structure differs
// per device, so this stays per lane; the entry counts are small),
// plus the per-lane uniform-state bookkeeping for the rescale tier.
void BatchStaEngine::finish_apply(const BatchDelayDelta& batch) {
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        const DelayDelta* d = batch.lanes[l];
        if (!d) {
            lane_uniform_[l] = 1.0;
            continue;
        }
        for (const DelayDelta::ArcExtra& e : d->extras) {
            const std::uint32_t begin = offset_[e.gate];
            const std::uint32_t first =
                e.pin == DelayDelta::kAllPins ? begin : begin + e.pin;
            const std::uint32_t last = e.pin == DelayDelta::kAllPins
                                           ? offset_[e.gate + 1]
                                           : begin + e.pin + 1;
            for (std::uint32_t i = first; i < last; ++i) {
                cur_max_[i * kBatchWidth + l] += e.extra;
                if (track_min_) {
                    cur_min_[i * kBatchWidth + l] += e.extra;
                }
            }
        }
        lane_uniform_[l] = d->scales.empty() && d->extras.empty()
                               ? d->uniform_scale
                               : std::numeric_limits<double>::quiet_NaN();
    }
}

void BatchStaEngine::forward() {
    if (track_min_) {
        forward_impl<true>();
    } else {
        forward_impl<false>();
    }
}

template <bool TrackMin>
void BatchStaEngine::forward_impl() {
    Time* const arr_max = arr_max_.data();
    Time* const arr_min = TrackMin ? arr_min_.data() : nullptr;
    const Time* const dly_max = cur_max_.data();
    const Time* const dly_min = TrackMin ? cur_min_.data() : nullptr;
    const GateId* const fanin = fanin_flat_.data();
    const std::uint32_t* const offset = offset_.data();
    constexpr Time kUnset = std::numeric_limits<Time>::max();
    for (const GateId id : topo_) {
        Time* const out_max = arr_max + static_cast<std::size_t>(id) * kBatchWidth;
        if (is_source_[id]) {
            for (std::size_t l = 0; l < kBatchWidth; ++l) out_max[l] = 0.0;
            if constexpr (TrackMin) {
                Time* const out_min =
                    arr_min + static_cast<std::size_t>(id) * kBatchWidth;
                for (std::size_t l = 0; l < kBatchWidth; ++l) {
                    out_min[l] = 0.0;
                }
            }
            continue;
        }
        // Pin loop outer, lane loop inner: each lane sees the arcs in
        // the scalar engine's order, and the inner loop is a
        // fixed-trip-count add/max the compiler turns into vector code.
        Time amax[kBatchWidth];
        Time amin[kBatchWidth];
        for (std::size_t l = 0; l < kBatchWidth; ++l) {
            amax[l] = 0.0;
            amin[l] = kUnset;
        }
        const std::uint32_t start = offset[id];
        const std::uint32_t end = offset[id + 1];
        for (std::uint32_t i = start; i < end; ++i) {
            const Time* const f_max =
                arr_max + static_cast<std::size_t>(fanin[i]) * kBatchWidth;
            const Time* const d_max = dly_max + static_cast<std::size_t>(i) * kBatchWidth;
            if constexpr (TrackMin) {
                const Time* const f_min =
                    arr_min +
                    static_cast<std::size_t>(fanin[i]) * kBatchWidth;
                const Time* const d_min =
                    dly_min + static_cast<std::size_t>(i) * kBatchWidth;
                for (std::size_t l = 0; l < kBatchWidth; ++l) {
                    amax[l] = std::max(amax[l], f_max[l] + d_max[l]);
                    amin[l] = std::min(amin[l], f_min[l] + d_min[l]);
                }
            } else {
                for (std::size_t l = 0; l < kBatchWidth; ++l) {
                    amax[l] = std::max(amax[l], f_max[l] + d_max[l]);
                }
            }
        }
        for (std::size_t l = 0; l < kBatchWidth; ++l) out_max[l] = amax[l];
        if constexpr (TrackMin) {
            Time* const out_min =
                arr_min + static_cast<std::size_t>(id) * kBatchWidth;
            for (std::size_t l = 0; l < kBatchWidth; ++l) {
                out_min[l] = amin[l] == kUnset ? 0.0 : amin[l];
            }
        }
    }
}

void BatchStaEngine::refresh_clock() {
    std::array<Time, kBatchWidth> cpl{};
    for (const ObservePoint& op : netlist_->observe_points()) {
        const Time* const row =
            arr_max_.data() + static_cast<std::size_t>(op.signal) * kBatchWidth;
        for (std::size_t l = 0; l < kBatchWidth; ++l) {
            cpl[l] = std::max(cpl[l], row[l]);
        }
    }
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        cpl_[l] = cpl[l];
        clock_[l] = margin_ * cpl[l];
    }
}

void BatchStaEngine::update(const BatchDelayDelta& batch) {
    std::size_t active = 0;
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        if (!active_[l]) continue;
        // Every active lane must carry a delta (BatchDelayDelta doc).
        assert(batch.lanes[l] != nullptr);
        ++active;
    }
    if (active == 0) return;
    poll_cancel();

    // Rescale tier: all active lanes request pure uniform scales over
    // pure-uniform lane states, and every factor pair is a power of
    // two (or unchanged).  Exact per lane; see the scalar engine.
    if (has_result_) {
        bool rescalable = true;
        bool any_change = false;
        for (std::size_t l = 0; l < kBatchWidth && rescalable; ++l) {
            if (!active_[l]) continue;
            const DelayDelta* d = batch.lanes[l];
            if (!d->scales.empty() || !d->extras.empty() ||
                std::isnan(lane_uniform_[l])) {
                rescalable = false;
                break;
            }
            if (d->uniform_scale == lane_uniform_[l]) continue;
            if (!is_power_of_two(d->uniform_scale) ||
                !is_power_of_two(lane_uniform_[l])) {
                rescalable = false;
                break;
            }
            any_change = true;
        }
        if (rescalable) {
            stats_.lane_updates += active;
            if (any_change) {
                rescale(batch);
            } else {
                ++stats_.scaled_updates;  // cached: every lane unchanged
            }
            return;
        }
    }

    apply(batch);
    forward();
    refresh_clock();
    has_result_ = true;
    ++stats_.batch_passes;
    stats_.lane_updates += active;
}

}  // namespace fastmon
