// Minimal Standard Delay Format (SDF 3.0 subset) export/import.
//
// The paper's flow performs "a topological analysis of the circuit using
// timing information from standard delay format files" — this module is
// that interchange point.  Only the constructs the library produces are
// supported: one CELL per gate instance with ABSOLUTE IOPATH entries
// (one per input pin, rise/fall), TIMESCALE fixed to 1ps.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "timing/delay_model.hpp"

namespace fastmon {

/// Writes `delays` for `netlist` as SDF.
void write_sdf(std::ostream& os, const Netlist& netlist,
               const DelayAnnotation& delays);
std::string write_sdf_string(const Netlist& netlist,
                             const DelayAnnotation& delays);

/// Reads an SDF file previously produced by write_sdf (or a compatible
/// subset) back into an annotation for `netlist`.  Instances are matched
/// by gate name; unknown instances raise std::runtime_error.  Arcs not
/// mentioned in the file keep nominal delays.
DelayAnnotation read_sdf(std::istream& is, const Netlist& netlist);
DelayAnnotation read_sdf_string(const std::string& text, const Netlist& netlist);

}  // namespace fastmon
