// Batched structure-of-arrays static timing analysis.
//
// The incremental StaEngine made the lifetime campaign fast per
// *device*; BatchStaEngine makes it fast per *population*.  One engine
// propagates kBatchWidth devices ("lanes") per topological pass: the
// flattened traversal structure (topo order, fanin ids, arc offsets)
// is shared once per netlist, while arc delays and arrival times are
// stored as [arc][lane] / [gate][lane] columns — kBatchWidth
// contiguous doubles per arc — so the innermost max/add reduction is a
// fixed-trip-count lane loop the compiler auto-vectorizes (AVX2 on
// x86, plain scalar code elsewhere; no intrinsics).
//
// Bit-identity contract: the per-lane operation order is exactly the
// scalar StaEngine's — lanes are independent columns, the pin loop
// stays outermost, and max/min reductions run in the same order — so a
// lane's arrivals are bit-for-bit equal to a scalar engine evaluating
// that device alone.  Campaign outcomes therefore match the scalar
// reference exactly; the documented <= 4 ulp tolerance of the
// full-vs-batched differential is headroom for platforms whose
// vectorizer contracts a+b*c into FMA (none of the supported
// -ffp-contract=off / default GCC x86 configurations do for this
// code), not an accepted slack on this implementation.
//
// Lane lifecycle: load_lane() points a lane at one device (shared base
// arcs scaled by per-gate process-variation factors, without
// materializing a per-device DelayAnnotation), update() advances every
// active lane by its own DelayDelta, and retire_lane() parks a
// finished/failed device — the column keeps computing (the lane loop
// stays branch-free) but its values are no longer meaningful and its
// delta slot may stay null.  A retired lane can be re-loaded for the
// next device without draining the rest of the batch.
//
// The engine maintains arrival times only (the campaign hot path);
// monitor placement and fault classification keep using the scalar
// Scope::Full engine.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "timing/delay_delta.hpp"
#include "timing/delay_model.hpp"

// Column width (devices per topological pass).  A CMake cache knob
// (-DFASTMON_BATCH_WIDTH=N) overrides it tree-wide; 1 compiles the
// batch engine down to scalar code (the no-SIMD fallback CI keeps
// green).  Runtime batch sizes smaller than the compiled width simply
// leave the trailing lanes retired.
#ifndef FASTMON_BATCH_WIDTH
#define FASTMON_BATCH_WIDTH 8
#endif

namespace fastmon {

inline constexpr std::size_t kBatchWidth = FASTMON_BATCH_WIDTH;
static_assert(kBatchWidth >= 1 && kBatchWidth <= 64,
              "FASTMON_BATCH_WIDTH must be in [1, 64]");

/// Per-lane deltas of one batched update.  A null slot means "no
/// change requested" and is only legal for retired lanes; every active
/// lane must carry a delta (possibly empty, meaning "revert to the
/// lane base").  Deltas are absolute with respect to each lane's base,
/// exactly like StaEngine::update.
struct BatchDelayDelta {
    std::array<const DelayDelta*, kBatchWidth> lanes{};
    /// Caller's promise that every non-null lane scales the same gate
    /// sequence, strictly ascending (the shape DeviceDegradation always
    /// produces: all combinational gates in id order).  Lets apply()
    /// skip the per-update shape detection; verified by asserts in
    /// debug builds, trusted in release.
    bool aligned = false;

    void clear() {
        lanes.fill(nullptr);
        aligned = false;
    }
    void set(std::size_t lane, const DelayDelta* delta) {
        assert(lane < kBatchWidth);
        lanes[lane] = delta;
    }
};

class BatchStaEngine {
public:
    struct Stats {
        std::uint64_t batch_passes = 0;   ///< full SoA forward passes
        std::uint64_t scaled_updates = 0; ///< exact pow2 per-lane rescales
        std::uint64_t lane_updates = 0;   ///< active lanes summed over updates
        std::uint64_t lane_loads = 0;
        std::uint64_t lanes_retired = 0;
    };

    /// `base` is the *shared* base annotation (the campaign's nominal
    /// delays); per-device silicon is loaded per lane via load_lane().
    /// `base` must outlive the engine.  `track_min` = false drops the
    /// min-arrival columns entirely (allocation and arithmetic): the
    /// campaign rollout only reads max arrivals, and halving the
    /// per-arc work is most of the batch speedup on small circuits.
    /// Max arrivals are bit-identical either way.
    BatchStaEngine(const Netlist& netlist, const DelayAnnotation& base,
                   double clock_margin = 1.0, bool track_min = true);

    BatchStaEngine(const BatchStaEngine&) = delete;
    BatchStaEngine& operator=(const BatchStaEngine&) = delete;

    [[nodiscard]] static constexpr std::size_t width() { return kBatchWidth; }

    /// Points `lane` at a device whose arc delays are the shared base
    /// scaled by a per-gate factor (factors[gate] applies to every arc
    /// of the gate; 1.0 leaves it at base).  This is the columnar
    /// equivalent of DelayAnnotation::with_lognormal_variation + rebase
    /// without materializing the annotation: max/min over (rise, fall)
    /// commute bit-for-bit with the positive per-gate scaling.
    /// (Re)activates the lane; the next update() rebuilds it densely.
    void load_lane(std::size_t lane, std::span<const double> gate_factors);

    /// Lane at the unmodified shared base (all factors 1.0).
    void load_lane(std::size_t lane);

    /// Parks a lane: it stops accepting deltas (its BatchDelayDelta
    /// slot may be null) and its results become meaningless until the
    /// next load_lane.  The batch keeps running full-width.
    void retire_lane(std::size_t lane);

    [[nodiscard]] bool lane_active(std::size_t lane) const {
        assert(lane < kBatchWidth);
        return active_[lane] != 0;
    }
    [[nodiscard]] std::size_t active_lanes() const;

    /// Advances every active lane to base-transformed-by-its-delta and
    /// recomputes arrivals for the whole batch in one topological
    /// pass.  When every active lane requests a pure power-of-two
    /// uniform rescale of an already-uniform state, the update is an
    /// exact O(n) per-lane rescale of the cached columns instead (the
    /// same tier-1 exactness argument as the scalar engine: scaling by
    /// 2^k commutes with FP rounding).
    void update(const BatchDelayDelta& batch);

    /// Latest arrival of `gate` in `lane` after the last update().
    [[nodiscard]] Time max_arrival(GateId gate, std::size_t lane) const {
        return arr_max_[static_cast<std::size_t>(gate) * kBatchWidth + lane];
    }
    /// Only meaningful when constructed with track_min = true.
    [[nodiscard]] Time min_arrival(GateId gate, std::size_t lane) const {
        assert(track_min_);
        return arr_min_[static_cast<std::size_t>(gate) * kBatchWidth + lane];
    }
    /// Raw column storage, indexed [gate * width() + lane] — the
    /// evaluation loops of the batch rollout read rows of this.
    [[nodiscard]] const Time* max_arrival_data() const {
        return arr_max_.data();
    }
    [[nodiscard]] Time critical_path_length(std::size_t lane) const {
        return cpl_[lane];
    }
    [[nodiscard]] Time clock_period(std::size_t lane) const {
        return clock_[lane];
    }

    [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
    [[nodiscard]] double clock_margin() const { return margin_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    void apply(const BatchDelayDelta& batch);
    void finish_apply(const BatchDelayDelta& batch);
    void forward();
    template <bool TrackMin>
    void forward_impl();
    void rescale(const BatchDelayDelta& batch);
    void refresh_clock();
    void poll_cancel();

    const Netlist* netlist_;
    double margin_;
    bool track_min_;

    /// Shared flattened traversal structure (one copy per netlist,
    /// amortized over every lane and every year).
    std::vector<std::uint32_t> offset_;
    std::vector<GateId> topo_;
    std::vector<std::uint8_t> is_source_;
    std::vector<GateId> fanin_flat_;

    /// Shared base arc delays (max/min over rise/fall), one per arc.
    std::vector<Time> base_max_, base_min_;
    /// Columnar per-lane state: [arc * kBatchWidth + lane].
    std::vector<Time> lane_base_max_, lane_base_min_;
    std::vector<Time> cur_max_, cur_min_;
    /// Columnar arrivals: [gate * kBatchWidth + lane].
    std::vector<Time> arr_max_, arr_min_;
    std::array<Time, kBatchWidth> cpl_{};
    std::array<Time, kBatchWidth> clock_{};

    std::array<std::uint8_t, kBatchWidth> active_{};
    /// Uniform factor of the lane's current state when that state is a
    /// pure uniform transform of the lane base; NaN once per-gate
    /// scales or extras made it general (disables the rescale tier).
    std::array<double, kBatchWidth> lane_uniform_{};

    bool has_result_ = false;
    Stats stats_;
    std::size_t poll_counter_ = 0;
};

}  // namespace fastmon
