// Composable description of a delay-annotation mutation.
//
// A DelayDelta captures everything the flow ever does to a base
// annotation — a global (aging) scale factor, per-gate degradation
// factors, and additive extras at defect sites — as data instead of as
// ad-hoc copy-and-mutate loops.  It is applied either eagerly
// (DelayAnnotation::transform) or lazily by the incremental StaEngine,
// which re-propagates arrival times only through the fanout cones of
// the arcs the delta actually changes.
//
// Application order is fixed and part of the bit-identity contract:
//   1. uniform_scale multiplies every arc,
//   2. per-gate scales multiply the gate's arcs, in entry order,
//   3. extras add to the selected arc(s), in entry order.
// Because every step is a monotone map applied to both the rise and the
// fall delay of an arc, max/min over (rise, fall) commute with the
// transformation bit-for-bit — the property StaEngine relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fastmon {

struct DelayDelta {
    /// Pin selector meaning "every fanin arc of the gate" (the shape of
    /// an output-side defect, FaultSite::kOutputPin).
    static constexpr std::uint32_t kAllPins = 0xFFFFFFFF;

    struct GateScale {
        GateId gate = kNoGate;
        double factor = 1.0;
    };
    struct ArcExtra {
        GateId gate = kNoGate;
        std::uint32_t pin = kAllPins;
        Time extra = 0.0;
    };

    /// Global factor applied to every arc first (1.0 = untouched).
    double uniform_scale = 1.0;
    /// Per-gate multiplicative degradation, applied in entry order.
    std::vector<GateScale> scales;
    /// Additive per-arc extras (defect deltas), applied in entry order.
    std::vector<ArcExtra> extras;

    DelayDelta& scale(GateId gate, double factor) {
        scales.push_back(GateScale{gate, factor});
        return *this;
    }

    DelayDelta& add(GateId gate, std::uint32_t pin, Time extra) {
        extras.push_back(ArcExtra{gate, pin, extra});
        return *this;
    }

    void clear() {
        uniform_scale = 1.0;
        scales.clear();
        extras.clear();
    }

    [[nodiscard]] bool empty() const {
        return uniform_scale == 1.0 && scales.empty() && extras.empty();
    }
};

}  // namespace fastmon
