// Per-instance delay annotation.
//
// Each input-pin-to-output arc of every gate carries a rise/fall delay:
// the library's nominal value, scaled by a per-instance process-variation
// factor (sigma = 20 % of nominal in the paper, Sec. III) plus a load
// term per fanout branch.  The annotation is the single timing source
// for STA, waveform simulation and fault sizing; it can be exported to
// and re-imported from (a subset of) SDF, mirroring the paper's flow
// which reads "standard delay format" files.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fastmon {

struct DelayDelta;

class DelayAnnotation {
public:
    /// Library-nominal delays (no variation).
    static DelayAnnotation nominal(const Netlist& netlist,
                                   const CellLibrary& lib = CellLibrary::nangate45());

    /// Delays with a per-gate Gaussian variation factor
    /// N(1, sigma_fraction), clipped to [1-3*sigma, 1+3*sigma].
    static DelayAnnotation with_variation(const Netlist& netlist,
                                          double sigma_fraction,
                                          std::uint64_t seed,
                                          const CellLibrary& lib = CellLibrary::nangate45());

    /// Delays with a per-gate mean-one lognormal variation factor
    /// exp(N(-s^2/2, s)), s = sigma_log — strictly positive and
    /// right-skewed, the shape device-population studies fit to
    /// manufacturing spread.  The campaign engine samples one such
    /// annotation per simulated device (one seed per device stream).
    static DelayAnnotation with_lognormal_variation(
        const Netlist& netlist, double sigma_log, std::uint64_t seed,
        const CellLibrary& lib = CellLibrary::nangate45());

    /// The per-gate factors with_lognormal_variation() would apply,
    /// written into `factors` (resized to netlist.size(); 1.0 for
    /// non-combinational gates).  Same Prng stream and draw order, so
    /// scaling a nominal annotation's arcs by factors[gate] reproduces
    /// the per-device annotation — the batched campaign engine loads
    /// its lanes from these without materializing the annotation.
    static void lognormal_variation_factors(const Netlist& netlist,
                                            double sigma_log,
                                            std::uint64_t seed,
                                            std::vector<double>& factors);

    /// Annotated delay of the arc from fanin pin `pin` to the output of
    /// gate `gate`.  Interface nodes (Output pads, DFF D pins) have zero
    /// delay arcs.
    [[nodiscard]] PinDelay arc(GateId gate, std::uint32_t pin) const {
        return arcs_[offset_[gate] + pin];
    }

    /// Mean nominal (pre-variation, pre-load) delay of the gate; the
    /// reference for fault sizing: delta = 6 sigma = 6 * 0.2 * this.
    [[nodiscard]] Time nominal_gate_delay(GateId gate) const {
        return nominal_mean_[gate];
    }

    /// Glitch-filtering threshold used in pulse filtering (Sec. II-A):
    /// pulses shorter than this are assumed filtered by CMOS stages.
    [[nodiscard]] Time glitch_threshold() const { return glitch_threshold_; }
    void set_glitch_threshold(Time t) { glitch_threshold_ = t; }

    /// Mutable arc access (used by the SDF reader and the aging model,
    /// which degrades arcs over lifetime).
    void set_arc(GateId gate, std::uint32_t pin, PinDelay d) {
        arcs_[offset_[gate] + pin] = d;
    }

    /// Scales every arc of `gate` by `factor` (aging degradation).
    void scale_gate(GateId gate, double factor);

    /// Applies a composable mutation in place: the delta's uniform
    /// scale, then its per-gate scales, then its additive extras, each
    /// in entry order (the order the bit-identity contract of the
    /// incremental StaEngine is defined against).
    DelayAnnotation& transform(const DelayDelta& delta);

    /// Copying variant of transform() for callers that keep the base.
    [[nodiscard]] DelayAnnotation transformed(const DelayDelta& delta) const;

    [[nodiscard]] std::size_t num_gates() const { return offset_.size(); }

private:
    DelayAnnotation() = default;
    static DelayAnnotation build(const Netlist& netlist, const CellLibrary& lib,
                                 double sigma_fraction, std::uint64_t seed);

    std::vector<std::uint32_t> offset_;   ///< per gate: start index into arcs_
    std::vector<PinDelay> arcs_;          ///< flattened arc delays
    std::vector<Time> nominal_mean_;      ///< per gate: mean nominal delay
    Time glitch_threshold_ = 0.0;
};

}  // namespace fastmon
