#include "timing/sta_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "util/cancel.hpp"

namespace fastmon {

namespace {

// Arrival times admit no partial result, so a cancelled pass throws
// CancelledError; the flow records the phase as skipped.  Polling at a
// stride keeps even the relaxed load off the per-gate path.
constexpr std::size_t kCancelStride = 4096;

// Exactly representable power of two?  Multiplying every delay by 2^k
// commutes with FP rounding, so a pure uniform scale by such a factor
// can rescale the cached result arrays instead of re-propagating.
bool is_power_of_two(double v) {
    if (!(v > 0.0) || !std::isfinite(v)) return false;
    int exp = 0;
    return std::frexp(v, &exp) == 0.5;
}

}  // namespace

StaEngine::StaEngine(const Netlist& netlist, const DelayAnnotation& base,
                     double clock_margin, Scope scope)
    : netlist_(&netlist), base_(&base), margin_(clock_margin), scope_(scope) {
    assert(netlist.finalized());
    const std::size_t n = netlist.size();
    offset_.resize(n + 1);
    std::uint32_t cursor = 0;
    for (GateId id = 0; id < n; ++id) {
        offset_[id] = cursor;
        cursor += static_cast<std::uint32_t>(netlist.gate(id).fanin.size());
    }
    offset_[n] = cursor;
    base_max_.resize(cursor);
    base_min_.resize(cursor);
    cur_max_.resize(cursor);
    cur_min_.resize(cursor);
    const auto order = netlist.topo_order();
    topo_.assign(order.begin(), order.end());
    is_source_.resize(n);
    fanin_flat_.resize(cursor);
    for (GateId id = 0; id < n; ++id) {
        const Gate& g = netlist.gate(id);
        is_source_[id] =
            g.type == CellType::Input || g.type == CellType::Dff ? 1 : 0;
        for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
            fanin_flat_[offset_[id] + pin] = g.fanin[pin];
        }
    }
    touch_stamp_.assign(n, 0);
    fwd_stamp_.assign(n, 0);
    back_stamp_.assign(n, 0);
    result_.max_arrival.assign(n, 0.0);
    result_.min_arrival.assign(n, 0.0);
    result_.downstream.assign(n, 0.0);
    result_.path_through.assign(n, 0.0);
    load_base(base);
}

StaEngine::StaEngine(StaEngine&& other) noexcept
    : netlist_(std::exchange(other.netlist_, nullptr)),
      base_(std::exchange(other.base_, nullptr)),
      margin_(other.margin_),
      scope_(other.scope_),
      offset_(std::move(other.offset_)),
      topo_(std::move(other.topo_)),
      is_source_(std::move(other.is_source_)),
      fanin_flat_(std::move(other.fanin_flat_)),
      base_max_(std::move(other.base_max_)),
      base_min_(std::move(other.base_min_)),
      cur_max_(std::move(other.cur_max_)),
      cur_min_(std::move(other.cur_min_)),
      cur_uniform_(other.cur_uniform_),
      dirty_gates_(std::move(other.dirty_gates_)),
      touch_stamp_(std::move(other.touch_stamp_)),
      touch_epoch_(other.touch_epoch_),
      fwd_stamp_(std::move(other.fwd_stamp_)),
      fwd_epoch_(other.fwd_epoch_),
      back_stamp_(std::move(other.back_stamp_)),
      back_epoch_(other.back_epoch_),
      scratch_touched_(std::move(other.scratch_touched_)),
      scratch_old_(std::move(other.scratch_old_)),
      scratch_seeds_(std::move(other.scratch_seeds_)),
      scratch_dirty_(std::move(other.scratch_dirty_)),
      result_(std::move(other.result_)),
      valid_(std::exchange(other.valid_, false)),
      stats_(other.stats_),
      poll_counter_(other.poll_counter_) {}

StaEngine& StaEngine::operator=(StaEngine&& other) noexcept {
    if (this == &other) return *this;
    netlist_ = std::exchange(other.netlist_, nullptr);
    base_ = std::exchange(other.base_, nullptr);
    margin_ = other.margin_;
    scope_ = other.scope_;
    offset_ = std::move(other.offset_);
    topo_ = std::move(other.topo_);
    is_source_ = std::move(other.is_source_);
    fanin_flat_ = std::move(other.fanin_flat_);
    base_max_ = std::move(other.base_max_);
    base_min_ = std::move(other.base_min_);
    cur_max_ = std::move(other.cur_max_);
    cur_min_ = std::move(other.cur_min_);
    cur_uniform_ = other.cur_uniform_;
    dirty_gates_ = std::move(other.dirty_gates_);
    touch_stamp_ = std::move(other.touch_stamp_);
    touch_epoch_ = other.touch_epoch_;
    fwd_stamp_ = std::move(other.fwd_stamp_);
    fwd_epoch_ = other.fwd_epoch_;
    back_stamp_ = std::move(other.back_stamp_);
    back_epoch_ = other.back_epoch_;
    scratch_touched_ = std::move(other.scratch_touched_);
    scratch_old_ = std::move(other.scratch_old_);
    scratch_seeds_ = std::move(other.scratch_seeds_);
    scratch_dirty_ = std::move(other.scratch_dirty_);
    result_ = std::move(other.result_);
    valid_ = std::exchange(other.valid_, false);
    stats_ = other.stats_;
    poll_counter_ = other.poll_counter_;
    return *this;
}

void StaEngine::load_base(const DelayAnnotation& base) {
    assert(base.num_gates() == netlist_->size());
    base_ = &base;
    for (GateId id = 0; id < netlist_->size(); ++id) {
        const Gate& g = netlist_->gate(id);
        const std::uint32_t start = offset_[id];
        for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
            const PinDelay d = base.arc(id, pin);
            base_max_[start + pin] = std::max(d.rise, d.fall);
            base_min_[start + pin] = std::min(d.rise, d.fall);
        }
    }
    cur_uniform_ = 1.0;
    dirty_gates_.clear();
    valid_ = false;
}

void StaEngine::rebase(const DelayAnnotation& base) {
    load_base(base);
    ++stats_.rebases;
}

void StaEngine::reset_gate_arcs(GateId id) {
    const std::uint32_t begin = offset_[id];
    const std::uint32_t end = offset_[id + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
        cur_max_[i] = base_max_[i];
        cur_min_[i] = base_min_[i];
    }
}

void StaEngine::apply_delta(const DelayDelta& delta,
                            std::vector<GateId>* seeds) {
    const std::size_t num_arcs = offset_[netlist_->size()];
    const bool dense = seeds == nullptr;

    // The gates the new delta touches become the new dirty set.
    // Duplicates (a gate in several entries) are fine: the sparse
    // path's epoch stamps dedupe, and the dense-tier heuristic only
    // overcounts conservatively.
    scratch_dirty_.clear();
    for (const DelayDelta::GateScale& s : delta.scales) {
        scratch_dirty_.push_back(s.gate);
    }
    for (const DelayDelta::ArcExtra& e : delta.extras) {
        scratch_dirty_.push_back(e.gate);
    }

    if (dense) {
        // Wholesale rebuild; the caller re-runs full passes, so no
        // snapshot or change detection is needed.
        if (delta.uniform_scale != 1.0) {
            for (std::size_t i = 0; i < num_arcs; ++i) {
                cur_max_[i] = base_max_[i] * delta.uniform_scale;
                cur_min_[i] = base_min_[i] * delta.uniform_scale;
            }
        } else {
            std::copy(base_max_.begin(), base_max_.end(), cur_max_.begin());
            std::copy(base_min_.begin(), base_min_.end(), cur_min_.begin());
        }
    } else {
        // Sparse path: touched = new dirty gates plus the previously
        // dirty gates that must revert to base.
        ++touch_epoch_;
        scratch_touched_.clear();
        const auto touch = [&](GateId g) {
            if (touch_stamp_[g] != touch_epoch_) {
                touch_stamp_[g] = touch_epoch_;
                scratch_touched_.push_back(g);
            }
        };
        for (GateId g : scratch_dirty_) touch(g);
        for (GateId g : dirty_gates_) touch(g);
        // Snapshot the touched gates' arcs (aligned with the iteration
        // order of scratch_touched_) for bitwise change detection.
        scratch_old_.clear();
        for (GateId g : scratch_touched_) {
            for (std::uint32_t i = offset_[g]; i < offset_[g + 1]; ++i) {
                scratch_old_.push_back(cur_max_[i]);
                scratch_old_.push_back(cur_min_[i]);
            }
        }
        for (GateId g : scratch_touched_) reset_gate_arcs(g);
    }

    // Entry-order application.  Entries of distinct gates are
    // independent, so per-entry processing preserves the order that
    // matters (multiple entries on one gate).
    for (const DelayDelta::GateScale& s : delta.scales) {
        for (std::uint32_t i = offset_[s.gate]; i < offset_[s.gate + 1]; ++i) {
            cur_max_[i] *= s.factor;
            cur_min_[i] *= s.factor;
        }
    }
    for (const DelayDelta::ArcExtra& e : delta.extras) {
        if (e.pin == DelayDelta::kAllPins) {
            for (std::uint32_t i = offset_[e.gate]; i < offset_[e.gate + 1];
                 ++i) {
                cur_max_[i] += e.extra;
                cur_min_[i] += e.extra;
            }
        } else {
            const std::uint32_t i = offset_[e.gate] + e.pin;
            cur_max_[i] += e.extra;
            cur_min_[i] += e.extra;
        }
    }

    if (seeds) {
        seeds->clear();
        std::size_t cursor = 0;
        for (GateId g : scratch_touched_) {
            bool changed = false;
            for (std::uint32_t i = offset_[g]; i < offset_[g + 1]; ++i) {
                if (cur_max_[i] != scratch_old_[cursor] ||
                    cur_min_[i] != scratch_old_[cursor + 1]) {
                    changed = true;
                }
                cursor += 2;
            }
            if (changed) seeds->push_back(g);
        }
    }

    cur_uniform_ = delta.uniform_scale;
    dirty_gates_.swap(scratch_dirty_);
}

void StaEngine::poll_cancel() {
    if (++poll_counter_ % kCancelStride == 0) {
        CancelToken::global().throw_if_cancelled();
    }
}

void StaEngine::full_forward() {
    const std::size_t n = netlist_->size();
    // resize, not assign: the loop writes every entry.
    result_.max_arrival.resize(n);
    result_.min_arrival.resize(n);
    Time* const arr_max = result_.max_arrival.data();
    Time* const arr_min = result_.min_arrival.data();
    const Time* const dly_max = cur_max_.data();
    const Time* const dly_min = cur_min_.data();
    const GateId* const fanin = fanin_flat_.data();
    const std::uint32_t* const offset = offset_.data();
    // Cancellation poll batched per pass (the tight loop stays pure);
    // the amortized cadence matches the per-node stride.
    poll_counter_ += topo_.size();
    if (poll_counter_ >= kCancelStride) {
        poll_counter_ = 0;
        CancelToken::global().throw_if_cancelled();
    }
    for (const GateId id : topo_) {
        if (is_source_[id]) {
            // Launch edge: sources switch at t = 0.
            arr_max[id] = 0.0;
            arr_min[id] = 0.0;
            continue;
        }
        Time amax = 0.0;
        Time amin = std::numeric_limits<Time>::max();
        const std::uint32_t start = offset[id];
        const std::uint32_t end = offset[id + 1];
        for (std::uint32_t i = start; i < end; ++i) {
            const GateId f = fanin[i];
            amax = std::max(amax, arr_max[f] + dly_max[i]);
            amin = std::min(amin, arr_min[f] + dly_min[i]);
        }
        arr_max[id] = amax;
        arr_min[id] = amin == std::numeric_limits<Time>::max() ? 0.0 : amin;
    }
}

void StaEngine::full_backward() {
    const std::size_t n = netlist_->size();
    result_.downstream.resize(n);
    const auto order = netlist_->topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        poll_cancel();
        const GateId id = *it;
        const Gate& g = netlist_->gate(id);
        Time best = std::numeric_limits<Time>::lowest();
        bool observed = false;
        for (GateId out : g.fanout) {
            const Gate& og = netlist_->gate(out);
            if (og.type == CellType::Output || og.type == CellType::Dff) {
                best = std::max(best, 0.0);
                observed = true;
                continue;
            }
            // Which pin of `out` does `id` drive?  (A gate may appear on
            // several pins; take the slowest arc.)
            const std::uint32_t start = offset_[out];
            for (std::uint32_t pin = 0; pin < og.fanin.size(); ++pin) {
                if (og.fanin[pin] != id) continue;
                best = std::max(best,
                                cur_max_[start + pin] + result_.downstream[out]);
                observed = true;
            }
        }
        result_.downstream[id] = observed ? best : 0.0;
    }
}

void StaEngine::incremental_forward(const std::vector<GateId>& seeds) {
    if (seeds.empty()) return;
    ++fwd_epoch_;
    const auto topo = netlist_->topo_order();
    std::uint32_t min_rank = std::numeric_limits<std::uint32_t>::max();
    for (GateId g : seeds) {
        fwd_stamp_[g] = fwd_epoch_;
        min_rank = std::min(min_rank, netlist_->topo_rank(g));
    }
    for (std::size_t i = min_rank; i < topo.size(); ++i) {
        const GateId id = topo[i];
        if (fwd_stamp_[id] != fwd_epoch_) continue;
        poll_cancel();
        const Gate& g = netlist_->gate(id);
        Time amax = 0.0;
        Time amin = 0.0;
        if (g.type != CellType::Input && g.type != CellType::Dff) {
            Time lo = std::numeric_limits<Time>::max();
            const std::uint32_t start = offset_[id];
            for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
                const GateId f = g.fanin[pin];
                amax = std::max(amax,
                                result_.max_arrival[f] + cur_max_[start + pin]);
                lo = std::min(lo, result_.min_arrival[f] + cur_min_[start + pin]);
            }
            amin = lo == std::numeric_limits<Time>::max() ? 0.0 : lo;
        }
        if (amax != result_.max_arrival[id] || amin != result_.min_arrival[id]) {
            result_.max_arrival[id] = amax;
            result_.min_arrival[id] = amin;
            ++stats_.nodes_repropagated;
            for (GateId out : g.fanout) fwd_stamp_[out] = fwd_epoch_;
        } else {
            ++stats_.nodes_pruned;
        }
    }
}

void StaEngine::incremental_backward(const std::vector<GateId>& seeds) {
    if (seeds.empty()) return;
    ++back_epoch_;
    const auto topo = netlist_->topo_order();
    // downstream[f] depends on the arcs *into* each changed gate, so the
    // fanins of the seeds are where re-evaluation starts.
    std::int64_t max_rank = -1;
    for (GateId g : seeds) {
        for (GateId f : netlist_->gate(g).fanin) {
            back_stamp_[f] = back_epoch_;
            max_rank = std::max(
                max_rank, static_cast<std::int64_t>(netlist_->topo_rank(f)));
        }
    }
    for (std::int64_t i = max_rank; i >= 0; --i) {
        const GateId id = topo[static_cast<std::size_t>(i)];
        if (back_stamp_[id] != back_epoch_) continue;
        poll_cancel();
        const Gate& g = netlist_->gate(id);
        Time best = std::numeric_limits<Time>::lowest();
        bool observed = false;
        for (GateId out : g.fanout) {
            const Gate& og = netlist_->gate(out);
            if (og.type == CellType::Output || og.type == CellType::Dff) {
                best = std::max(best, 0.0);
                observed = true;
                continue;
            }
            const std::uint32_t start = offset_[out];
            for (std::uint32_t pin = 0; pin < og.fanin.size(); ++pin) {
                if (og.fanin[pin] != id) continue;
                best = std::max(best,
                                cur_max_[start + pin] + result_.downstream[out]);
                observed = true;
            }
        }
        const Time next = observed ? best : 0.0;
        if (next != result_.downstream[id]) {
            result_.downstream[id] = next;
            ++stats_.nodes_repropagated;
            for (GateId f : g.fanin) back_stamp_[f] = back_epoch_;
        } else {
            ++stats_.nodes_pruned;
        }
    }
}

void StaEngine::refresh_path_through() {
    const std::size_t n = netlist_->size();
    result_.path_through.resize(n);
    for (GateId id = 0; id < n; ++id) {
        result_.path_through[id] =
            result_.max_arrival[id] + result_.downstream[id];
    }
}

void StaEngine::refresh_clock() {
    Time cpl = 0.0;
    for (const ObservePoint& op : netlist_->observe_points()) {
        cpl = std::max(cpl, result_.max_arrival[op.signal]);
    }
    result_.critical_path_length = cpl;
    result_.clock_period = margin_ * cpl;
}

const StaResult& StaEngine::analyze() {
    valid_ = false;
    poll_counter_ = 0;
    std::copy(base_max_.begin(), base_max_.end(), cur_max_.begin());
    std::copy(base_min_.begin(), base_min_.end(), cur_min_.begin());
    cur_uniform_ = 1.0;
    dirty_gates_.clear();
    full_forward();
    if (scope_ == Scope::Full) {
        full_backward();
        refresh_path_through();
    } else {
        result_.downstream.assign(netlist_->size(), 0.0);
        result_.path_through.assign(netlist_->size(), 0.0);
    }
    refresh_clock();
    ++stats_.full_passes;
    valid_ = true;
    return result_;
}

const StaResult& StaEngine::update(const DelayDelta& delta) {
    // Tier 1: pure uniform rescale of an unperturbed valid engine —
    // O(1) cached return, or an exact O(n) array rescale when both
    // factors are powers of two (2^k multiplication commutes with FP
    // rounding, so the rescaled results match a from-scratch pass
    // bit-for-bit).
    if (valid_ && delta.scales.empty() && delta.extras.empty() &&
        dirty_gates_.empty()) {
        if (delta.uniform_scale == cur_uniform_) {
            ++stats_.scaled_updates;
            return result_;
        }
        if (is_power_of_two(delta.uniform_scale) &&
            is_power_of_two(cur_uniform_)) {
            const double ratio = delta.uniform_scale / cur_uniform_;
            for (Time& v : cur_max_) v *= ratio;
            for (Time& v : cur_min_) v *= ratio;
            for (Time& v : result_.max_arrival) v *= ratio;
            for (Time& v : result_.min_arrival) v *= ratio;
            if (scope_ == Scope::Full) {
                for (Time& v : result_.downstream) v *= ratio;
                for (Time& v : result_.path_through) v *= ratio;
            }
            result_.critical_path_length *= ratio;
            result_.clock_period = margin_ * result_.critical_path_length;
            cur_uniform_ = delta.uniform_scale;
            ++stats_.scaled_updates;
            return result_;
        }
    }

    // Tier 2: dense rebuild.  Taken on the first pass / recovery, when
    // a uniform factor is involved (it touches every arc anyway), or
    // when the delta plus the reverting dirty set covers most of the
    // netlist (the campaign's aging delta scales every combinational
    // gate every year) — there the sparse machinery (snapshots, seed
    // detection, stamps) costs more than it prunes.  Plain full passes
    // over the rebuilt arc arrays: same formulas in the same order, so
    // still bit-identical to the from-scratch reference.
    const std::size_t touched =
        delta.scales.size() + delta.extras.size() + dirty_gates_.size();
    const bool uniform_involved =
        delta.uniform_scale != 1.0 || cur_uniform_ != 1.0;
    if (!valid_ || uniform_involved || 2 * touched >= netlist_->size()) {
        const bool recovery = !valid_;
        valid_ = false;
        if (recovery) poll_counter_ = 0;
        apply_delta(delta, nullptr);
        full_forward();
        if (scope_ == Scope::Full) {
            full_backward();
            refresh_path_through();
        } else {
            // No-ops unless take_result() emptied the arenas.
            result_.downstream.resize(netlist_->size());
            result_.path_through.resize(netlist_->size());
        }
        refresh_clock();
        if (recovery) {
            ++stats_.full_passes;
        } else {
            ++stats_.dense_updates;
        }
        valid_ = true;
        return result_;
    }

    // Tier 3: sparse cone re-propagation from the bitwise-changed arcs.
    valid_ = false;
    apply_delta(delta, &scratch_seeds_);
    incremental_forward(scratch_seeds_);
    if (scope_ == Scope::Full) {
        incremental_backward(scratch_seeds_);
        if (!scratch_seeds_.empty()) refresh_path_through();
    }
    refresh_clock();
    ++stats_.incremental_updates;
    valid_ = true;
    return result_;
}

StaResult StaEngine::take_result() {
    StaResult out = std::move(result_);
    result_ = StaResult{};
    valid_ = false;
    return out;
}

}  // namespace fastmon
