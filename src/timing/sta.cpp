#include "timing/sta.hpp"

#include <algorithm>

namespace fastmon {

std::vector<ObservePoint> observe_points_by_path_length(
    const Netlist& netlist, const StaResult& sta) {
    std::vector<ObservePoint> ops(netlist.observe_points().begin(),
                                  netlist.observe_points().end());
    std::stable_sort(ops.begin(), ops.end(),
                     [&sta](const ObservePoint& a, const ObservePoint& b) {
                         return sta.max_arrival[a.signal] >
                                sta.max_arrival[b.signal];
                     });
    return ops;
}

}  // namespace fastmon
