#include "timing/sta.hpp"

#include <algorithm>
#include <cassert>

#include "util/cancel.hpp"

namespace fastmon {

namespace {

// Arrival times admit no partial result, so a cancelled STA throws
// CancelledError; the flow records the phase as skipped.  Polling at a
// stride keeps even the relaxed load off the per-gate path.
constexpr std::size_t kCancelStride = 4096;

}  // namespace

StaResult run_sta(const Netlist& netlist, const DelayAnnotation& delays,
                  double clock_margin) {
    assert(netlist.finalized());
    const std::size_t n = netlist.size();
    StaResult r;
    r.max_arrival.assign(n, 0.0);
    r.min_arrival.assign(n, 0.0);
    r.downstream.assign(n, 0.0);
    r.path_through.assign(n, 0.0);

    // Forward pass in topological order.
    std::size_t visited = 0;
    for (GateId id : netlist.topo_order()) {
        if (++visited % kCancelStride == 0) {
            CancelToken::global().throw_if_cancelled();
        }
        const Gate& g = netlist.gate(id);
        if (g.type == CellType::Input || g.type == CellType::Dff) {
            // Launch edge: sources switch at t = 0.
            r.max_arrival[id] = 0.0;
            r.min_arrival[id] = 0.0;
            continue;
        }
        Time amax = 0.0;
        Time amin = std::numeric_limits<Time>::max();
        for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
            const GateId f = g.fanin[pin];
            const PinDelay d = delays.arc(id, pin);
            amax = std::max(amax, r.max_arrival[f] + std::max(d.rise, d.fall));
            amin = std::min(amin, r.min_arrival[f] + std::min(d.rise, d.fall));
        }
        r.max_arrival[id] = amax;
        r.min_arrival[id] = amin == std::numeric_limits<Time>::max() ? 0.0 : amin;
    }

    // Backward pass: longest delay from each node to an observation
    // point.  Observation happens at the fanin signal of Output/Dff
    // nodes, so those sink nodes contribute 0 downstream to their driver.
    const auto order = netlist.topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if (++visited % kCancelStride == 0) {
            CancelToken::global().throw_if_cancelled();
        }
        const GateId id = *it;
        const Gate& g = netlist.gate(id);
        Time best = std::numeric_limits<Time>::lowest();
        bool observed = false;
        for (GateId out : g.fanout) {
            const Gate& og = netlist.gate(out);
            if (og.type == CellType::Output || og.type == CellType::Dff) {
                best = std::max(best, 0.0);
                observed = true;
                continue;
            }
            // Which pin of `out` does `id` drive?  (A gate may appear on
            // several pins; take the slowest arc.)
            for (std::uint32_t pin = 0; pin < og.fanin.size(); ++pin) {
                if (og.fanin[pin] != id) continue;
                const PinDelay d = delays.arc(out, pin);
                best = std::max(best,
                                std::max(d.rise, d.fall) + r.downstream[out]);
                observed = true;
            }
        }
        r.downstream[id] = observed ? best : 0.0;
    }

    for (GateId id = 0; id < n; ++id) {
        r.path_through[id] = r.max_arrival[id] + r.downstream[id];
    }

    Time cpl = 0.0;
    for (const ObservePoint& op : netlist.observe_points()) {
        cpl = std::max(cpl, r.max_arrival[op.signal]);
    }
    r.critical_path_length = cpl;
    r.clock_period = clock_margin * cpl;
    return r;
}

std::vector<ObservePoint> observe_points_by_path_length(
    const Netlist& netlist, const StaResult& sta) {
    std::vector<ObservePoint> ops(netlist.observe_points().begin(),
                                  netlist.observe_points().end());
    std::stable_sort(ops.begin(), ops.end(),
                     [&sta](const ObservePoint& a, const ObservePoint& b) {
                         return sta.max_arrival[a.signal] >
                                sta.max_arrival[b.signal];
                     });
    return ops;
}

}  // namespace fastmon
