#include "timing/sta.hpp"

#include <algorithm>

#include "timing/sta_engine.hpp"

namespace fastmon {

// Deprecated compatibility shim: one full engine pass, result moved out.
// Bit-identical to the pre-engine implementation (same arithmetic, same
// operation order, same cancellation cadence).
StaResult run_sta(const Netlist& netlist, const DelayAnnotation& delays,
                  double clock_margin) {
    StaEngine engine(netlist, delays, clock_margin, StaEngine::Scope::Full);
    engine.analyze();
    return engine.take_result();
}

std::vector<ObservePoint> observe_points_by_path_length(
    const Netlist& netlist, const StaResult& sta) {
    std::vector<ObservePoint> ops(netlist.observe_points().begin(),
                                  netlist.observe_points().end());
    std::stable_sort(ops.begin(), ops.end(),
                     [&sta](const ObservePoint& a, const ObservePoint& b) {
                         return sta.max_arrival[a.signal] >
                                sta.max_arrival[b.signal];
                     });
    return ops;
}

}  // namespace fastmon
