// Small running-statistics helpers used by the benches and the aging model.
#pragma once

#include <cstddef>
#include <vector>

namespace fastmon {

/// Welford online mean/variance accumulator.
class RunningStats {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return mean_; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation); p in [0, 100].
/// The input is copied and sorted; empty input returns 0.
double percentile(std::vector<double> values, double p);

}  // namespace fastmon
