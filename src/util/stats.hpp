// Small running-statistics helpers used by the benches, the aging model
// and the campaign aggregator (percentiles, binary-classifier quality).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fastmon {

/// Welford online mean/variance accumulator.
class RunningStats {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return mean_; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation); p in [0, 100].
/// The input is copied and sorted; NaN entries are rejected before
/// ranking.  An empty (or all-NaN) input returns 0.
double percentile(std::vector<double> values, double p);

/// One scored example of a binary classifier: the predictor's score
/// (higher = "more positive") and the ground-truth label.
struct ClassifierSample {
    double score = 0.0;
    bool positive = false;
};

/// Area under the ROC curve via the rank-sum (Mann-Whitney U)
/// statistic, with midrank tie handling — equivalent to trapezoidal
/// integration of the ROC curve.  Returns 0.5 when either class is
/// empty (a degenerate population carries no ranking information).
double roc_auc(std::span<const ClassifierSample> samples);

/// One operating point of the precision-recall curve: every example
/// with score >= threshold is predicted positive.
struct PrPoint {
    double threshold = 0.0;
    double precision = 0.0;
    double recall = 0.0;
};

/// Precision-recall curve over the distinct score thresholds, in
/// decreasing-threshold (increasing-recall) order.  Empty when the
/// sample has no positives.
std::vector<PrPoint> precision_recall_curve(
    std::span<const ClassifierSample> samples);

/// Average precision: the step-wise integral sum((R_i - R_{i-1}) * P_i)
/// over the precision-recall curve.  0 when the sample has no
/// positives.
double average_precision(std::span<const ClassifierSample> samples);

}  // namespace fastmon
