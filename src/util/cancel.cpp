#include "util/cancel.hpp"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <thread>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace fastmon {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
}

// Watchdog machinery lives outside the token so the token itself stays
// a plain bundle of lock-free atomics (the signal handler touches only
// those).  The watchdog thread is detached and parks on a CV; mutex and
// CV are leaked because destroying a condition_variable with a live
// waiter (the watchdog, at process exit) is UB that can hang exit().
std::mutex& watchdog_mutex() {
    static std::mutex* m = new std::mutex();
    return *m;
}

std::condition_variable& watchdog_cv() {
    static std::condition_variable* cv = new std::condition_variable();
    return *cv;
}

bool g_watchdog_started = false;

// Signal bookkeeping; handlers may only touch lock-free atomics.
std::atomic<int> g_signals_seen{0};
volatile std::sig_atomic_t g_handlers_installed = 0;

void signal_handler(int signo) {
    const int seen = g_signals_seen.fetch_add(1, std::memory_order_relaxed);
    if (seen > 0) {
        // Second signal: the cooperative path is evidently stuck, honor
        // the conventional 128+signo exit immediately.
        std::_Exit(128 + signo);
    }
    CancelToken::global().cancel(CancelCause::Signal);
}

void watchdog_loop() {
    CancelToken& token = CancelToken::global();
    std::unique_lock<std::mutex> lock(watchdog_mutex());
    for (;;) {
        const double remaining = token.deadline_remaining();
        if (token.cancelled()) {
            // Nothing left to time; park until a reset()/re-arm pokes us.
            watchdog_cv().wait(lock);
            continue;
        }
        if (remaining <= 0.0) {
            // Disarmed (or fired exactly now with no pending deadline):
            // wait for the next arm_deadline() notification.
            watchdog_cv().wait(lock);
            continue;
        }
        watchdog_cv().wait_for(
            lock, std::chrono::duration<double>(remaining));
        // Re-read under the lock: arm_deadline may have moved the target.
        const double left = token.deadline_remaining();
        if (!token.cancelled() && left <= 0.0 &&
            token.deadline_armed()) {
            token.cancel(CancelCause::Deadline);
        }
    }
}

}  // namespace

const char* cancel_cause_name(CancelCause cause) {
    switch (cause) {
        case CancelCause::None: return "none";
        case CancelCause::Deadline: return "deadline";
        case CancelCause::Signal: return "signal";
        case CancelCause::Test: return "test";
    }
    return "unknown";
}

CancelledError::CancelledError(CancelCause cause)
    : std::runtime_error(std::string("cancelled (") +
                         cancel_cause_name(cause) + ")"),
      cause_(cause) {}

CancelToken& CancelToken::global() {
    // Leaked, like the Tracer/MetricsRegistry singletons: the signal
    // handler and detached watchdog may outlive static destructors.
    static CancelToken* token = [] {
        auto* t = new CancelToken();
        if (const char* env = std::getenv("FASTMON_DEADLINE")) {
            char* end = nullptr;
            const double sec = std::strtod(env, &end);
            if (end != env && sec > 0.0) t->arm_deadline(sec);
        }
        return t;
    }();
    return *token;
}

void CancelToken::cancel(CancelCause cause) {
    // First cause wins: only the transition false->true records it.
    bool expected = false;
    if (cancelled_.compare_exchange_strong(expected, true,
                                           std::memory_order_relaxed)) {
        cause_.store(static_cast<std::uint8_t>(cause),
                     std::memory_order_relaxed);
    }
}

void CancelToken::arm_deadline(double seconds) {
    if (seconds <= 0.0) {
        deadline_ns_.store(0, std::memory_order_relaxed);
        watchdog_cv().notify_all();
        return;
    }
    const auto delta = static_cast<std::uint64_t>(seconds * 1e9);
    {
        std::lock_guard<std::mutex> lock(watchdog_mutex());
        deadline_ns_.store(now_ns() + delta, std::memory_order_relaxed);
        if (!g_watchdog_started) {
            g_watchdog_started = true;
            std::thread(watchdog_loop).detach();
        }
    }
    watchdog_cv().notify_all();
}

bool CancelToken::deadline_armed() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
}

double CancelToken::deadline_remaining() const {
    const std::uint64_t target = deadline_ns_.load(std::memory_order_relaxed);
    if (target == 0) return 0.0;
    const std::uint64_t now = now_ns();
    if (now >= target) return 0.0;
    return static_cast<double>(target - now) * 1e-9;
}

void CancelToken::install_signal_handlers() {
    if (g_handlers_installed) return;
    g_handlers_installed = 1;
    std::signal(SIGINT, signal_handler);
    std::signal(SIGTERM, signal_handler);
}

void CancelToken::reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    cause_.store(static_cast<std::uint8_t>(CancelCause::None),
                 std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
    g_signals_seen.store(0, std::memory_order_relaxed);
    watchdog_cv().notify_all();
}

}  // namespace fastmon
