#include "util/manifest.hpp"

#include <chrono>
#include <ctime>
#include "util/atomic_file.hpp"
#include <fstream>

namespace fastmon {

namespace {

std::uint64_t wall_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

PhaseStopwatch::PhaseStopwatch()
    : wall_start_ns_(wall_now_ns()), cpu_start_(process_cpu_seconds()) {}

PhaseTime PhaseStopwatch::elapsed(std::string name) const {
    PhaseTime p;
    p.name = std::move(name);
    p.wall_seconds =
        static_cast<double>(wall_now_ns() - wall_start_ns_) * 1e-9;
    p.cpu_seconds = process_cpu_seconds() - cpu_start_;
    return p;
}

double PhaseStopwatch::process_cpu_seconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

const char* build_git_describe() {
#ifdef FASTMON_GIT_DESCRIBE
    return FASTMON_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

RunManifest::RunManifest() {
    tool_ = Json::object();
    tool_.set("name", "fastmon");
    tool_.set("git", build_git_describe());
    config_ = Json::object();
    circuit_ = Json::object();
    metrics_ = Json::object();
}

void RunManifest::set_config(const std::string& key, Json value) {
    config_.set(key, std::move(value));
}

void RunManifest::set_circuit(const std::string& key, Json value) {
    circuit_.set(key, std::move(value));
}

void RunManifest::add_phase(PhaseTime phase) {
    phases_.push_back(std::move(phase));
}

void RunManifest::set_metrics(Json metrics) { metrics_ = std::move(metrics); }

void RunManifest::set_status(Json status) { status_ = std::move(status); }

void RunManifest::set_total_wall_seconds(double seconds) {
    total_wall_ = seconds;
}

double RunManifest::total_phase_wall_seconds() const {
    double total = 0.0;
    for (const PhaseTime& p : phases_) total += p.wall_seconds;
    return total;
}

Json RunManifest::to_json() const {
    Json phases = Json::array();
    for (const PhaseTime& p : phases_) {
        Json j = Json::object();
        j.set("name", p.name);
        j.set("wall_seconds", p.wall_seconds);
        j.set("cpu_seconds", p.cpu_seconds);
        phases.push_back(std::move(j));
    }
    Json doc = Json::object();
    doc.set("tool", tool_);
    doc.set("config", config_);
    doc.set("circuit", circuit_);
    doc.set("total_wall_seconds", total_wall_);
    doc.set("phases", std::move(phases));
    doc.set("metrics", metrics_);
    if (!status_.is_null()) doc.set("status", status_);
    return doc;
}

std::optional<RunManifest> RunManifest::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* tool = j.find("tool");
    const Json* phases = j.find("phases");
    if (tool == nullptr || !tool->is_object() || phases == nullptr ||
        !phases->is_array()) {
        return std::nullopt;
    }
    RunManifest m;
    m.tool_ = *tool;
    if (const Json* c = j.find("config"); c != nullptr && c->is_object()) {
        m.config_ = *c;
    }
    if (const Json* c = j.find("circuit"); c != nullptr && c->is_object()) {
        m.circuit_ = *c;
    }
    if (const Json* t = j.find("total_wall_seconds");
        t != nullptr && t->is_number()) {
        m.total_wall_ = t->as_number();
    }
    if (const Json* mx = j.find("metrics"); mx != nullptr && mx->is_object()) {
        m.metrics_ = *mx;
    }
    if (const Json* st = j.find("status"); st != nullptr && st->is_object()) {
        m.status_ = *st;
    }
    for (const Json& pj : phases->as_array()) {
        const Json* name = pj.find("name");
        const Json* wall = pj.find("wall_seconds");
        const Json* cpu = pj.find("cpu_seconds");
        if (name == nullptr || !name->is_string() || wall == nullptr ||
            !wall->is_number() || cpu == nullptr || !cpu->is_number()) {
            return std::nullopt;
        }
        m.phases_.push_back(
            PhaseTime{name->as_string(), wall->as_number(), cpu->as_number()});
    }
    return m;
}

bool RunManifest::write(const std::string& path) const {
    // Atomic replace: phase-boundary flushes overwrite the previous
    // snapshot, and an interrupted run keeps the last complete one.
    return atomic_write_file(path, to_json().dump(1) + '\n');
}

bool operator==(const RunManifest& a, const RunManifest& b) {
    return a.tool_ == b.tool_ && a.config_ == b.config_ &&
           a.circuit_ == b.circuit_ && a.phases_ == b.phases_ &&
           a.metrics_ == b.metrics_ && a.status_ == b.status_ &&
           a.total_wall_ == b.total_wall_;
}

}  // namespace fastmon
