// Minimal self-contained JSON value: writer + recursive-descent parser.
//
// The observability layer (trace export, metrics registry, run
// manifests) needs machine-readable artifacts that external tools
// (Perfetto, jq, CI scripts) can load, and the tests need to parse
// those artifacts back for round-trip checks.  This is deliberately
// small: no streaming, no SAX, object keys keep insertion order so
// output is deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace fastmon {

class Json;

/// Structured parse-failure report (1-based line/column).
struct JsonParseError {
    std::size_t offset = 0;
    std::size_t line = 0;
    std::size_t column = 0;
    std::string message;
};

using JsonArray = std::vector<Json>;
/// Insertion-ordered object (duplicate keys keep the last value on
/// set(), the first on parse, mirroring common JSON library behavior).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
public:
    enum class Type : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;  // null
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double v) : type_(Type::Number), num_(v) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(std::int64_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(std::uint64_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
                 !std::is_same_v<T, int> && !std::is_same_v<T, std::int64_t> &&
                 !std::is_same_v<T, std::uint64_t>)
    Json(T v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(const char* s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(JsonArray a) : type_(Type::Array), arr_(std::move(a)) {}
    Json(JsonObject o) : type_(Type::Object), obj_(std::move(o)) {}

    static Json array() { return Json(JsonArray{}); }
    static Json object() { return Json(JsonObject{}); }

    [[nodiscard]] Type type() const { return type_; }
    [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
    [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
    [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
    [[nodiscard]] bool is_string() const { return type_ == Type::String; }
    [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
    [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

    [[nodiscard]] bool as_bool() const { return bool_; }
    [[nodiscard]] double as_number() const { return num_; }
    [[nodiscard]] const std::string& as_string() const { return str_; }
    [[nodiscard]] const JsonArray& as_array() const { return arr_; }
    [[nodiscard]] JsonArray& as_array() { return arr_; }
    [[nodiscard]] const JsonObject& as_object() const { return obj_; }
    [[nodiscard]] JsonObject& as_object() { return obj_; }

    /// Object access; returns nullptr when absent or not an object.
    [[nodiscard]] const Json* find(std::string_view key) const;
    /// Sets (or replaces) an object key; converts a null value to an
    /// empty object first so building up manifests reads naturally.
    Json& set(std::string_view key, Json value);
    /// Appends to an array (converts null to an empty array first).
    Json& push_back(Json value);

    /// Deep structural equality; numbers compare exactly.
    friend bool operator==(const Json& a, const Json& b);

    /// Serializes; indent > 0 pretty-prints with that many spaces.
    [[nodiscard]] std::string dump(int indent = 0) const;

    /// Parses `text`; returns std::nullopt (and a message in `error`,
    /// if given) on malformed input.  Trailing non-whitespace is an
    /// error.  Nesting deeper than kMaxParseDepth is rejected (the
    /// recursive-descent parser must not be an attacker-controlled
    /// stack).
    static std::optional<Json> parse(std::string_view text,
                                     std::string* error = nullptr);

    /// Same, with a structured error (offset + 1-based line/column).
    /// Takes a reference so `parse(text, nullptr)` stays unambiguous.
    static std::optional<Json> parse(std::string_view text,
                                     JsonParseError& error);

    /// Maximum array/object nesting accepted by parse().
    static constexpr std::size_t kMaxParseDepth = 192;

private:
    void dump_to(std::string& out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    JsonArray arr_;
    JsonObject obj_;
};

}  // namespace fastmon
