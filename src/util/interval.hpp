// Interval arithmetic on the observation-time axis.
//
// Detection ranges of small delay faults (Sec. II-A of the paper) are
// unions of disjoint time intervals.  IntervalSet is the canonical
// representation used throughout the library: fault simulation produces
// raw intervals from waveform XOR, pulse filtering removes glitch-sized
// intervals, monitors shift interval sets right by their delay, and the
// scheduler discretizes their endpoints into test-period candidates.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

namespace fastmon {

/// Time unit used across the library: picoseconds, carried in double.
using Time = double;

/// Tolerance for interval-boundary comparisons (sub-femtosecond; delay
/// values in this library are O(1)..O(1e6) ps).
inline constexpr Time kTimeEps = 1e-9;

/// A half-open interval [lo, hi) on the time axis.  Empty iff hi <= lo.
struct Interval {
    Time lo = 0.0;
    Time hi = 0.0;

    [[nodiscard]] bool empty() const { return hi - lo <= kTimeEps; }
    [[nodiscard]] Time length() const { return empty() ? 0.0 : hi - lo; }
    [[nodiscard]] bool contains(Time t) const { return t >= lo && t < hi; }
    [[nodiscard]] Time midpoint() const { return 0.5 * (lo + hi); }

    friend bool operator==(const Interval& a, const Interval& b) = default;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

/// A union of disjoint, sorted, non-empty half-open intervals.
///
/// Invariant: for consecutive stored intervals a, b it holds that
/// a.hi < b.lo - kTimeEps (touching or overlapping intervals are merged
/// on insertion).
class IntervalSet {
public:
    IntervalSet() = default;
    explicit IntervalSet(Interval iv) { add(iv); }
    IntervalSet(std::initializer_list<Interval> ivs) {
        for (const Interval& iv : ivs) add(iv);
    }

    /// Inserts an interval, merging with overlapping/touching neighbours.
    void add(Interval iv);
    void add(Time lo, Time hi) { add(Interval{lo, hi}); }

    /// Set union with another interval set.
    void unite(const IntervalSet& other);

    /// Intersects this set with [lo, hi).
    void clip(Time lo, Time hi);

    /// Shifts every interval right by d (d may be negative).
    /// Models detection-range shifting by a monitor delay element:
    /// I_SR(phi, o) = I_FF(phi, o) + d  (Sec. III-B).
    void shift(Time d);

    /// Removes all intervals shorter than min_width.
    ///
    /// This is the pessimistic pulse filtering of Sec. II-A: an interval
    /// below the glitch threshold is assumed to be filtered by the CMOS
    /// stage and is *dropped*; the surviving neighbours deliberately stay
    /// disjoint (gaps are never bridged).
    void filter_glitches(Time min_width);

    [[nodiscard]] bool empty() const { return ivals_.empty(); }
    [[nodiscard]] std::size_t size() const { return ivals_.size(); }
    [[nodiscard]] const Interval& operator[](std::size_t i) const { return ivals_[i]; }
    [[nodiscard]] std::span<const Interval> intervals() const { return ivals_; }

    /// Total measure (sum of interval lengths).
    [[nodiscard]] Time measure() const;

    /// True iff t lies inside some interval.
    [[nodiscard]] bool contains(Time t) const;

    /// True iff the sets share at least one point.
    [[nodiscard]] bool intersects(const IntervalSet& other) const;

    /// Earliest / latest covered time.  Precondition: !empty().
    [[nodiscard]] Time min() const { return ivals_.front().lo; }
    [[nodiscard]] Time max() const { return ivals_.back().hi; }

    void clear() { ivals_.clear(); }

    friend bool operator==(const IntervalSet& a, const IntervalSet& b) = default;

    /// Set union as a value.
    [[nodiscard]] static IntervalSet united(const IntervalSet& a, const IntervalSet& b);

    /// Set intersection as a value.
    [[nodiscard]] static IntervalSet intersected(const IntervalSet& a, const IntervalSet& b);

private:
    std::vector<Interval> ivals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

}  // namespace fastmon
