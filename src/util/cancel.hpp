// Cooperative cancellation for the whole HDF flow.
//
// Long-running engines (fault simulation, ATPG, the set-cover and ILP
// solvers, STA) poll one process-wide CancelToken at their existing
// loop boundaries.  Polling costs a single relaxed atomic load, so the
// checks can live in hot paths permanently — the same discipline the
// tracer uses for disabled spans.
//
// Cancellation sources:
//   * a wall-clock deadline, armed from FASTMON_DEADLINE=<seconds> (a
//     watchdog thread sleeps until the deadline and sets the flag);
//   * SIGINT/SIGTERM, once install_signal_handlers() ran (benches and
//     examples call it; a second signal force-exits);
//   * tests and the fault-injection harness via cancel(CancelCause).
//
// Cancellation is a *request*: engines stop at the next safe boundary
// and return the work finished so far, and HdfFlow turns that into a
// degraded-but-valid result with an honest status block.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fastmon {

enum class CancelCause : std::uint8_t {
    None = 0,
    Deadline,  ///< FASTMON_DEADLINE elapsed
    Signal,    ///< SIGINT or SIGTERM
    Test,      ///< requested programmatically (tests, fault injection)
};

/// Human-readable cause ("none", "deadline", "signal", "test").
[[nodiscard]] const char* cancel_cause_name(CancelCause cause);

/// Thrown by engines that cannot produce a partial result when they
/// observe a cancellation request (e.g. STA mid-pass).  Derives from
/// std::runtime_error so untouched call sites keep compiling.
class CancelledError : public std::runtime_error {
public:
    explicit CancelledError(CancelCause cause);
    [[nodiscard]] CancelCause cause() const { return cause_; }

private:
    CancelCause cause_;
};

class CancelToken {
public:
    /// Process-wide token; reads $FASTMON_DEADLINE on first access and
    /// arms the deadline watchdog when set.
    static CancelToken& global();

    /// One relaxed atomic load; safe (and intended) for hot loops.
    [[nodiscard]] bool cancelled() const {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /// First cause wins; later requests keep the original cause.
    void cancel(CancelCause cause);

    [[nodiscard]] CancelCause cause() const {
        return static_cast<CancelCause>(
            cause_.load(std::memory_order_relaxed));
    }

    /// Throws CancelledError when a cancellation was requested.
    void throw_if_cancelled() const {
        if (cancelled()) throw CancelledError(cause());
    }

    /// Arms (or re-arms) the deadline watchdog `seconds` from now.
    /// A non-positive value disarms the pending deadline.
    void arm_deadline(double seconds);

    /// Seconds until the armed deadline fires (<= 0: none pending).
    [[nodiscard]] double deadline_remaining() const;

    /// True while a deadline is armed (fired or not).
    [[nodiscard]] bool deadline_armed() const;

    /// Installs SIGINT/SIGTERM handlers that request cancellation (the
    /// handler only stores to lock-free atomics).  A second signal
    /// force-exits with the conventional 128+signo status.  Idempotent.
    void install_signal_handlers();

    /// Clears the flag, cause, and pending deadline.  Tests only — a
    /// production run that was cancelled stays cancelled.
    void reset();

private:
    CancelToken() = default;
    ~CancelToken() = default;
    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    std::atomic<bool> cancelled_{false};
    std::atomic<std::uint8_t> cause_{
        static_cast<std::uint8_t>(CancelCause::None)};
    /// steady_clock deadline in ns since epoch; 0 = disarmed.
    std::atomic<std::uint64_t> deadline_ns_{0};
};

}  // namespace fastmon
