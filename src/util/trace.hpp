// Flow-wide tracing with RAII spans, exported as Chrome trace-event
// JSON (loadable in chrome://tracing or https://ui.perfetto.dev).
//
// Every phase of the HDF pipeline (STA, ATPG, fault simulation chunks,
// discretization, both ILP steps) opens a TraceSpan; spans nest freely
// and may be created from any thread (worker lanes get stable small
// thread ids).  When tracing is disabled — the default — constructing
// a span costs one relaxed atomic load, so instrumentation can stay in
// hot paths permanently.
//
// Enable either programmatically (Tracer::global().start()) or by
// setting FASTMON_TRACE=<path>: collection starts at first use and the
// file is written at process exit (or at an explicit write()).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fastmon {

class Json;

/// One completed span ("ph":"X" in the trace-event format) or counter
/// sample ("ph":"C").
struct TraceEvent {
    std::string name;
    std::string category;
    std::uint64_t start_ns = 0;  ///< since tracer epoch
    std::uint64_t duration_ns = 0;
    std::uint32_t thread_id = 0;
    double counter_value = 0.0;
    bool is_counter = false;
};

class Tracer {
public:
    /// Process-wide tracer; reads $FASTMON_TRACE on first access.
    static Tracer& global();

    /// True while events are being collected.  Hot paths gate on this
    /// (relaxed load) before doing any work.
    [[nodiscard]] bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    void start();
    void stop();
    void clear();

    /// Nanoseconds since the tracer epoch (process start).
    [[nodiscard]] std::uint64_t now_ns() const;

    /// Small stable id of the calling thread (0 = first thread seen).
    [[nodiscard]] static std::uint32_t thread_id();

    /// Records a completed span; called by ~TraceSpan.
    void record(std::string name, const char* category,
                std::uint64_t start_ns, std::uint64_t duration_ns);

    /// Records an instantaneous counter sample (rendered as a track).
    void counter(std::string name, double value);

    [[nodiscard]] std::size_t num_events() const;

    /// Events as a Chrome trace-event JSON document.
    [[nodiscard]] Json to_json() const;

    /// Writes to_json() to `path`; returns false on I/O failure.
    bool write(const std::string& path) const;

    /// Path written at process exit (empty = none); set from
    /// $FASTMON_TRACE or explicitly.
    void set_output_path(std::string path);
    [[nodiscard]] std::string output_path() const;

private:
    Tracer();
    ~Tracer();
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    std::atomic<bool> enabled_{false};
    std::uint64_t epoch_ns_ = 0;  ///< steady_clock at construction
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::string output_path_;
};

/// RAII span: measures construction-to-destruction (or end()) and
/// records it into Tracer::global().  `name` is copied only when
/// tracing is enabled at construction.
class TraceSpan {
public:
    explicit TraceSpan(const char* name, const char* category = "flow")
        : category_(category) {
        Tracer& t = Tracer::global();
        if (t.enabled()) {
            name_ = name;
            start_ns_ = t.now_ns();
            active_ = true;
        }
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    ~TraceSpan() { end(); }

    /// Ends the span early (idempotent).
    void end() {
        if (!active_) return;
        active_ = false;
        Tracer& t = Tracer::global();
        t.record(std::move(name_), category_, start_ns_,
                 t.now_ns() - start_ns_);
    }

private:
    std::string name_;
    const char* category_;
    std::uint64_t start_ns_ = 0;
    bool active_ = false;
};

}  // namespace fastmon
