#include "util/interval.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace fastmon {

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
    return os << '[' << iv.lo << ", " << iv.hi << ')';
}

void IntervalSet::add(Interval iv) {
    if (iv.empty()) return;
    // Locate the first stored interval whose end reaches iv.lo (candidates
    // for merging), then absorb every overlapping/touching interval.
    auto first = std::lower_bound(
        ivals_.begin(), ivals_.end(), iv.lo,
        [](const Interval& a, Time lo) { return a.hi < lo - kTimeEps; });
    auto last = first;
    while (last != ivals_.end() && last->lo <= iv.hi + kTimeEps) {
        iv.lo = std::min(iv.lo, last->lo);
        iv.hi = std::max(iv.hi, last->hi);
        ++last;
    }
    if (first == last) {
        ivals_.insert(first, iv);
    } else {
        *first = iv;
        ivals_.erase(first + 1, last);
    }
}

void IntervalSet::unite(const IntervalSet& other) {
    if (other.ivals_.empty()) return;
    if (ivals_.empty()) {
        ivals_ = other.ivals_;
        return;
    }
    // Linear merge of two sorted disjoint lists.
    std::vector<Interval> merged;
    merged.reserve(ivals_.size() + other.ivals_.size());
    std::size_t i = 0;
    std::size_t j = 0;
    auto push = [&merged](Interval iv) {
        if (!merged.empty() && merged.back().hi >= iv.lo - kTimeEps) {
            merged.back().hi = std::max(merged.back().hi, iv.hi);
        } else {
            merged.push_back(iv);
        }
    };
    while (i < ivals_.size() || j < other.ivals_.size()) {
        if (j == other.ivals_.size() ||
            (i < ivals_.size() && ivals_[i].lo <= other.ivals_[j].lo)) {
            push(ivals_[i++]);
        } else {
            push(other.ivals_[j++]);
        }
    }
    ivals_ = std::move(merged);
}

void IntervalSet::clip(Time lo, Time hi) {
    std::vector<Interval> clipped;
    clipped.reserve(ivals_.size());
    for (Interval iv : ivals_) {
        iv.lo = std::max(iv.lo, lo);
        iv.hi = std::min(iv.hi, hi);
        if (!iv.empty()) clipped.push_back(iv);
    }
    ivals_ = std::move(clipped);
}

void IntervalSet::shift(Time d) {
    for (Interval& iv : ivals_) {
        iv.lo += d;
        iv.hi += d;
    }
}

void IntervalSet::filter_glitches(Time min_width) {
    std::erase_if(ivals_, [min_width](const Interval& iv) {
        return iv.length() < min_width - kTimeEps;
    });
}

Time IntervalSet::measure() const {
    Time total = 0.0;
    for (const Interval& iv : ivals_) total += iv.length();
    return total;
}

bool IntervalSet::contains(Time t) const {
    auto it = std::lower_bound(
        ivals_.begin(), ivals_.end(), t,
        [](const Interval& a, Time v) { return a.hi <= v; });
    return it != ivals_.end() && it->contains(t);
}

bool IntervalSet::intersects(const IntervalSet& other) const {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ivals_.size() && j < other.ivals_.size()) {
        const Interval& a = ivals_[i];
        const Interval& b = other.ivals_[j];
        const Time lo = std::max(a.lo, b.lo);
        const Time hi = std::min(a.hi, b.hi);
        if (hi - lo > kTimeEps) return true;
        if (a.hi < b.hi) {
            ++i;
        } else {
            ++j;
        }
    }
    return false;
}

IntervalSet IntervalSet::united(const IntervalSet& a, const IntervalSet& b) {
    IntervalSet r = a;
    r.unite(b);
    return r;
}

IntervalSet IntervalSet::intersected(const IntervalSet& a, const IntervalSet& b) {
    IntervalSet r;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        const Interval& x = a[i];
        const Interval& y = b[j];
        const Time lo = std::max(x.lo, y.lo);
        const Time hi = std::min(x.hi, y.hi);
        if (hi - lo > kTimeEps) r.add(lo, hi);
        if (x.hi < y.hi) {
            ++i;
        } else {
            ++j;
        }
    }
    return r;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
    os << '{';
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i > 0) os << ", ";
        os << s[i];
    }
    return os << '}';
}

}  // namespace fastmon
