#include "util/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fastmon {

QuantileSketch::QuantileSketch(double alpha) {
    if (!std::isfinite(alpha) || alpha <= 0.0 || alpha >= 1.0) {
        throw std::invalid_argument(
            "QuantileSketch: alpha must be in (0, 1)");
    }
    alpha_ = alpha;
    gamma_ = (1.0 + alpha) / (1.0 - alpha);
    inv_log_gamma_ = 1.0 / std::log(gamma_);
}

std::int32_t QuantileSketch::bucket_index(double magnitude) const {
    // Bucket i covers (gamma^(i-1), gamma^i]; ceil() puts exact powers
    // of gamma on their lower bucket so the representative stays within
    // the alpha band.
    return static_cast<std::int32_t>(
        std::ceil(std::log(magnitude) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(std::int32_t index) const {
    // Midpoint (harmonic) representative of (gamma^(i-1), gamma^i]:
    // 2 * gamma^i / (gamma + 1), relative error <= alpha for every
    // value in the bucket.
    return 2.0 * std::pow(gamma_, static_cast<double>(index)) /
           (gamma_ + 1.0);
}

void QuantileSketch::record(double x, std::uint64_t n) {
    if (n == 0 || !std::isfinite(x)) return;
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    count_ += n;
    sum_ += x * static_cast<double>(n);
    if (x == 0.0) {
        zero_count_ += n;
    } else if (x > 0.0) {
        positive_[bucket_index(x)] += n;
    } else {
        negative_[bucket_index(-x)] += n;
    }
}

void QuantileSketch::merge(const QuantileSketch& other) {
    if (alpha_ != other.alpha_) {
        throw std::invalid_argument(
            "QuantileSketch::merge: relative accuracies differ");
    }
    if (other.count_ == 0) return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    zero_count_ += other.zero_count_;
    for (const auto& [index, n] : other.positive_) positive_[index] += n;
    for (const auto& [index, n] : other.negative_) negative_[index] += n;
}

double QuantileSketch::quantile(double p) const {
    if (count_ == 0) return 0.0;
    if (p <= 0.0) return min_;
    if (p >= 100.0) return max_;
    // Target rank in [0, count): the sample a non-interpolating
    // order-statistic query would return.
    const auto rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    // Ascending value order: negatives from largest |x| bucket down,
    // then zero, then positives from the smallest bucket up.
    for (auto it = negative_.rbegin(); it != negative_.rend(); ++it) {
        seen += it->second;
        if (seen > rank) {
            return std::clamp(-bucket_value(it->first), min_, max_);
        }
    }
    seen += zero_count_;
    if (seen > rank) return std::clamp(0.0, min_, max_);
    for (const auto& [index, n] : positive_) {
        seen += n;
        if (seen > rank) {
            return std::clamp(bucket_value(index), min_, max_);
        }
    }
    return max_;  // unreachable unless counts desynchronize
}

void QuantileSketch::reset() {
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    zero_count_ = 0;
    positive_.clear();
    negative_.clear();
}

namespace {

Json buckets_to_json(const std::map<std::int32_t, std::uint64_t>& buckets) {
    // [[index, count], ...] in ascending index order (std::map order),
    // so serialization is deterministic.
    Json out = Json::array();
    for (const auto& [index, n] : buckets) {
        Json pair = Json::array();
        pair.push_back(index);
        pair.push_back(n);
        out.push_back(std::move(pair));
    }
    return out;
}

bool buckets_from_json(const Json* j,
                       std::map<std::int32_t, std::uint64_t>& out) {
    if (j == nullptr || !j->is_array()) return false;
    for (const Json& pair : j->as_array()) {
        if (!pair.is_array() || pair.as_array().size() != 2 ||
            !pair.as_array()[0].is_number() ||
            !pair.as_array()[1].is_number()) {
            return false;
        }
        const auto index =
            static_cast<std::int32_t>(pair.as_array()[0].as_number());
        const auto n =
            static_cast<std::uint64_t>(pair.as_array()[1].as_number());
        out[index] += n;
    }
    return true;
}

}  // namespace

Json QuantileSketch::to_json() const {
    Json j = Json::object();
    j.set("alpha", alpha_);
    j.set("count", count_);
    j.set("sum", sum_);
    j.set("min", min_);
    j.set("max", max_);
    j.set("zero_count", zero_count_);
    j.set("positive", buckets_to_json(positive_));
    j.set("negative", buckets_to_json(negative_));
    return j;
}

std::optional<QuantileSketch> QuantileSketch::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* alpha = j.find("alpha");
    const Json* count = j.find("count");
    const Json* sum = j.find("sum");
    const Json* min = j.find("min");
    const Json* max = j.find("max");
    const Json* zero = j.find("zero_count");
    if (!alpha || !alpha->is_number() || !count || !count->is_number() ||
        !sum || !sum->is_number() || !min || !min->is_number() || !max ||
        !max->is_number() || !zero || !zero->is_number()) {
        return std::nullopt;
    }
    const double a = alpha->as_number();
    if (!std::isfinite(a) || a <= 0.0 || a >= 1.0) return std::nullopt;
    QuantileSketch sketch(a);
    sketch.count_ = static_cast<std::uint64_t>(count->as_number());
    sketch.sum_ = sum->as_number();
    sketch.min_ = min->as_number();
    sketch.max_ = max->as_number();
    sketch.zero_count_ = static_cast<std::uint64_t>(zero->as_number());
    if (!buckets_from_json(j.find("positive"), sketch.positive_) ||
        !buckets_from_json(j.find("negative"), sketch.negative_)) {
        return std::nullopt;
    }
    return sketch;
}

Json QuantileSketch::summary() const {
    Json j = Json::object();
    j.set("count", count_);
    j.set("sum", sum_);
    j.set("min", min());
    j.set("max", max());
    j.set("mean", mean());
    j.set("p50", quantile(50.0));
    j.set("p90", quantile(90.0));
    j.set("p99", quantile(99.0));
    return j;
}

bool operator==(const QuantileSketch& a, const QuantileSketch& b) {
    return a.alpha_ == b.alpha_ && a.count_ == b.count_ &&
           a.sum_ == b.sum_ && a.min_ == b.min_ && a.max_ == b.max_ &&
           a.zero_count_ == b.zero_count_ && a.positive_ == b.positive_ &&
           a.negative_ == b.negative_;
}

}  // namespace fastmon
