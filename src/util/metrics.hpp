// Process-wide registry of named counters, gauges, and histograms.
//
// Absorbs the role the engine-local DetectionCounters played in PR 1
// and extends it to every phase of the flow: STA, ATPG (backtracks,
// aborts), monitor shifting, discretization, both ILP set-cover steps
// (rows/cols, branch-and-bound nodes, LP iterations, gap), and the
// thread pool (per-worker busy time, queue depth, steals).  Metric
// handles are stable references — look them up once, then update
// lock-free (counters/gauges are atomics; histograms take a short
// lock per sample).
//
// Snapshots serialize to JSON (name-sorted, deterministic) for the
// RunManifest; FASTMON_METRICS=<path> dumps the global registry at
// process exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/sketch.hpp"

namespace fastmon {

/// Monotone event count.
class Counter {
public:
    void add(std::uint64_t delta = 1) {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (e.g. queue depth, optimality gap).
class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void max(double v) {
        double cur = value_.load(std::memory_order_relaxed);
        while (v > cur && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] double value() const {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Sample distribution with exact count/sum/min/max and percentile
/// queries, backed by a mergeable QuantileSketch.  The earlier
/// decimating reservoir dropped tail samples once the cap was hit, so
/// p99-style summaries silently degraded on long streams; the
/// log-bucketed sketch bounds memory while keeping every quantile
/// within a fixed relative error — and lets worker-local sketches fold
/// straight into a registry histogram via merge().
class Histogram {
public:
    void record(double x);

    /// Folds a worker-local sketch into this histogram (same relative
    /// accuracy required; campaign telemetry uses the shared default).
    void merge(const QuantileSketch& sketch);

    [[nodiscard]] std::uint64_t count() const;
    [[nodiscard]] double sum() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;
    /// p in [0, 100]; relative error bounded by the sketch alpha.
    [[nodiscard]] double percentile(double p) const;
    void reset();

    /// Copy of the backing sketch (tests, exports).
    [[nodiscard]] QuantileSketch snapshot() const;

    /// Same keys as the pre-sketch backend: {count, sum, min, max,
    /// mean, p50, p90, p99}.
    [[nodiscard]] Json to_json() const;

private:
    mutable std::mutex mutex_;
    QuantileSketch sketch_;
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;

    /// Process-wide registry; reads $FASTMON_METRICS on first access
    /// and dumps to that path at exit when set.
    static MetricsRegistry& global();

    /// Finds or creates; returned references stay valid for the
    /// registry's lifetime.
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// Name-sorted snapshot: counters/gauges as numbers, histograms as
    /// {count, sum, min, max, mean, p50, p90, p99}.
    [[nodiscard]] Json to_json() const;

    /// Zeroes every metric (handles stay valid).  Tests only.
    void reset();

    [[nodiscard]] std::size_t size() const;

private:
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fastmon
