#include "util/progress.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/atomic_file.hpp"
#include "util/log.hpp"

namespace fastmon {

namespace {

std::uint64_t steady_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

ProgressReporter::ProgressReporter(ProgressConfig config)
    : config_(std::move(config)), epoch_ns_(steady_now_ns()) {
    config_.interval_seconds = std::max(config_.interval_seconds, 1e-3);
}

ProgressReporter::~ProgressReporter() { stop("finished"); }

ProgressReporter::WorkerSlot& ProgressReporter::slot_for_this_thread() {
    const std::thread::id id = std::this_thread::get_id();
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    auto [it, inserted] = slot_of_thread_.try_emplace(id, slots_.size());
    if (inserted) slots_.push_back(std::make_unique<WorkerSlot>());
    return *slots_[it->second];
}

std::uint64_t ProgressReporter::devices_done() const {
    std::uint64_t done = resumed_.load(std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const auto& slot : slots_) {
        done += slot->devices.load(std::memory_order_relaxed);
    }
    return done;
}

Json ProgressReporter::snapshot(const std::string& state) {
    const std::uint64_t now_ns = steady_now_ns();
    const double elapsed =
        static_cast<double>(now_ns - epoch_ns_) * 1e-9;
    const std::uint64_t resumed = resumed_.load(std::memory_order_relaxed);

    std::uint64_t rolled = 0;
    std::uint64_t lane_years = 0;
    std::uint64_t settled = 0;
    std::uint64_t batches = 0;
    Json workers = Json::array();
    {
        const std::lock_guard<std::mutex> lock(slots_mutex_);
        for (const auto& slot : slots_) {
            const std::uint64_t d =
                slot->devices.load(std::memory_order_relaxed);
            const std::uint64_t ly =
                slot->lane_years.load(std::memory_order_relaxed);
            const std::uint64_t se =
                slot->settled_early.load(std::memory_order_relaxed);
            const std::uint64_t b =
                slot->batches.load(std::memory_order_relaxed);
            const double busy =
                static_cast<double>(
                    slot->busy_ns.load(std::memory_order_relaxed)) *
                1e-9;
            rolled += d;
            lane_years += ly;
            settled += se;
            batches += b;
            Json w = Json::object();
            w.set("devices", d);
            w.set("lane_years", ly);
            w.set("batches", b);
            w.set("busy_seconds", busy);
            w.set("utilization",
                  elapsed > 0.0 ? std::min(busy / elapsed, 1.0) : 0.0);
            workers.push_back(std::move(w));
        }
    }
    const std::uint64_t done = resumed + rolled;

    // Windowed throughput between consecutive snapshots; the first
    // sample (and stalls) fall back to the cumulative rate.
    double throughput = elapsed > 0.0
                            ? static_cast<double>(rolled) / elapsed
                            : 0.0;
    if (last_ns_ != 0 && now_ns > last_ns_ && done >= last_done_) {
        const double window =
            static_cast<double>(now_ns - last_ns_) * 1e-9;
        if (window > 0.0) {
            throughput =
                static_cast<double>(done - last_done_) / window;
        }
    }
    last_ns_ = now_ns;
    last_done_ = done;

    // ETA from the cumulative rolled rate (windowed rates gyrate too
    // much to steer by); -1 = unknown, matching the repo's "never"
    // sentinel convention.
    double eta = -1.0;
    if (rolled > 0 && elapsed > 0.0 && config_.devices_total >= done) {
        eta = static_cast<double>(config_.devices_total - done) *
              elapsed / static_cast<double>(rolled);
    }

    Json j = Json::object();
    j.set("schema", "fastmon-heartbeat-v1");
    j.set("label", config_.label);
    j.set("state", state);
    j.set("sequence", sequence_.fetch_add(1, std::memory_order_relaxed));
    j.set("interval_seconds", config_.interval_seconds);
    j.set("elapsed_seconds", elapsed);
    j.set("devices_total", config_.devices_total);
    j.set("devices_done", done);
    j.set("devices_resumed", resumed);
    j.set("devices_rolled", rolled);
    j.set("grid_points", config_.grid_points);
    j.set("lane_years_done", lane_years);
    j.set("lane_years_budget",
          config_.devices_total * config_.grid_points);
    j.set("lanes_settled_early", settled);
    j.set("batches", batches);
    j.set("throughput_devices_per_sec", throughput);
    j.set("eta_seconds", eta);
    j.set("workers", std::move(workers));
    return j;
}

bool ProgressReporter::write_snapshot(const std::string& state) {
    const Json j = snapshot(state);
    bool ok = true;
    if (!config_.path.empty()) {
        ok = atomic_write_file(config_.path, j.dump(1) + '\n');
        if (!ok) {
            log_warn() << "progress: failed to write heartbeat "
                       << config_.path;
        }
    }
    if (config_.stderr_line) {
        const double done = j.find("devices_done")->as_number();
        const double total = j.find("devices_total")->as_number();
        const double rate =
            j.find("throughput_devices_per_sec")->as_number();
        const double eta = j.find("eta_seconds")->as_number();
        const double pct = total > 0.0 ? 100.0 * done / total : 0.0;
        const bool tty = isatty(fileno(stderr)) != 0;
        std::fprintf(stderr,
                     "%scampaign %s: %s, %.0f/%.0f devices (%.1f%%), "
                     "%.0f dev/s, eta %.1f s%s",
                     tty ? "\r" : "", config_.label.c_str(),
                     state.c_str(), done, total, pct, rate, eta,
                     tty && state == "running" ? "   " : "\n");
        std::fflush(stderr);
    }
    return ok;
}

void ProgressReporter::start() {
    const std::lock_guard<std::mutex> lock(sampler_mutex_);
    if (sampler_.joinable() || stopped_) return;
    sampler_ = std::thread([this] { sampler_loop(); });
}

void ProgressReporter::sampler_loop() {
    std::unique_lock<std::mutex> lock(sampler_mutex_);
    const auto interval = std::chrono::duration<double>(
        config_.interval_seconds);
    while (!stop_requested_) {
        sampler_cv_.wait_for(lock, interval,
                             [this] { return stop_requested_; });
        if (stop_requested_) break;
        lock.unlock();
        write_snapshot("running");
        lock.lock();
    }
}

void ProgressReporter::stop(const std::string& final_state) {
    {
        const std::lock_guard<std::mutex> lock(sampler_mutex_);
        if (stopped_) return;
        stopped_ = true;
        stop_requested_ = true;
    }
    sampler_cv_.notify_all();
    if (sampler_.joinable()) sampler_.join();
    write_snapshot(final_state);
}

}  // namespace fastmon
