#include "util/metrics.hpp"

#include <cstdlib>

#include "util/atomic_file.hpp"
#include "util/log.hpp"

namespace fastmon {

void Histogram::record(double x) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sketch_.record(x);
}

void Histogram::merge(const QuantileSketch& sketch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sketch_.merge(sketch);
}

std::uint64_t Histogram::count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sketch_.count();
}

double Histogram::sum() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sketch_.sum();
}

double Histogram::min() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sketch_.min();
}

double Histogram::max() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sketch_.max();
}

double Histogram::mean() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sketch_.mean();
}

double Histogram::percentile(double p) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sketch_.quantile(p);
}

void Histogram::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    sketch_.reset();
}

QuantileSketch Histogram::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sketch_;
}

Json Histogram::to_json() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sketch_.summary();
}

namespace {

void dump_at_exit() {
    const char* env = std::getenv("FASTMON_METRICS");
    if (env == nullptr || *env == '\0') return;
    const std::string doc =
        MetricsRegistry::global().to_json().dump(1) + '\n';
    if (!atomic_write_file(env, doc)) {
        log_warn() << "metrics: failed to write " << env;
        return;
    }
    log_info() << "metrics: wrote registry to " << env;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
    // Leaked singleton (see Tracer::global): metrics may be touched
    // during static destruction; the exit dump runs via atexit.
    static MetricsRegistry* instance = [] {
        auto* r = new MetricsRegistry();
        if (const char* env = std::getenv("FASTMON_METRICS");
            env != nullptr && *env != '\0') {
            std::atexit(dump_at_exit);
        }
        return r;
    }();
    return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

Json MetricsRegistry::to_json() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    Json counters = Json::object();
    for (const auto& [name, c] : counters_) {
        counters.set(name, c->value());
    }
    Json gauges = Json::object();
    for (const auto& [name, g] : gauges_) {
        gauges.set(name, g->value());
    }
    Json histograms = Json::object();
    for (const auto& [name, h] : histograms_) {
        histograms.set(name, h->to_json());
    }
    Json j = Json::object();
    j.set("counters", std::move(counters));
    j.set("gauges", std::move(gauges));
    j.set("histograms", std::move(histograms));
    return j;
}

void MetricsRegistry::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

std::size_t MetricsRegistry::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace fastmon
