#include "util/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "util/atomic_file.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace fastmon {

void Histogram::record(double x) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    if ((count_ & ((1ULL << keep_shift_) - 1)) != 0) return;
    if (samples_.size() >= kMaxSamples) {
        // Decimate 2:1; from here on only every 2^(k+1)-th sample is
        // retained, so the reservoir stays uniform over the stream.
        std::vector<double> kept;
        kept.reserve(samples_.size() / 2);
        for (std::size_t i = 0; i < samples_.size(); i += 2) {
            kept.push_back(samples_[i]);
        }
        samples_ = std::move(kept);
        ++keep_shift_;
    }
    samples_.push_back(x);
}

std::uint64_t Histogram::count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double Histogram::sum() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double Histogram::min() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double Histogram::max() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double Histogram::mean() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
    std::vector<double> copy;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        copy = samples_;
    }
    return fastmon::percentile(std::move(copy), p);
}

void Histogram::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    keep_shift_ = 0;
}

Json Histogram::to_json() const {
    Json j = Json::object();
    std::vector<double> copy;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        j.set("count", count_);
        j.set("sum", sum_);
        j.set("min", min_);
        j.set("max", max_);
        j.set("mean", count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_));
        copy = samples_;
    }
    j.set("p50", fastmon::percentile(copy, 50.0));
    j.set("p90", fastmon::percentile(copy, 90.0));
    j.set("p99", fastmon::percentile(std::move(copy), 99.0));
    return j;
}

namespace {

void dump_at_exit() {
    const char* env = std::getenv("FASTMON_METRICS");
    if (env == nullptr || *env == '\0') return;
    const std::string doc =
        MetricsRegistry::global().to_json().dump(1) + '\n';
    if (!atomic_write_file(env, doc)) {
        log_warn() << "metrics: failed to write " << env;
        return;
    }
    log_info() << "metrics: wrote registry to " << env;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
    // Leaked singleton (see Tracer::global): metrics may be touched
    // during static destruction; the exit dump runs via atexit.
    static MetricsRegistry* instance = [] {
        auto* r = new MetricsRegistry();
        if (const char* env = std::getenv("FASTMON_METRICS");
            env != nullptr && *env != '\0') {
            std::atexit(dump_at_exit);
        }
        return r;
    }();
    return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

Json MetricsRegistry::to_json() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    Json counters = Json::object();
    for (const auto& [name, c] : counters_) {
        counters.set(name, c->value());
    }
    Json gauges = Json::object();
    for (const auto& [name, g] : gauges_) {
        gauges.set(name, g->value());
    }
    Json histograms = Json::object();
    for (const auto& [name, h] : histograms_) {
        histograms.set(name, h->to_json());
    }
    Json j = Json::object();
    j.set("counters", std::move(counters));
    j.set("gauges", std::move(gauges));
    j.set("histograms", std::move(histograms));
    return j;
}

void MetricsRegistry::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

std::size_t MetricsRegistry::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace fastmon
