#include "util/prng.hpp"

#include <cmath>
#include <numbers>

namespace fastmon {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Prng::Prng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
}

Prng Prng::stream(std::uint64_t seed, std::uint64_t stream_id) {
    // Mix both words through SplitMix64 before combining so that
    // (seed, id) and (seed + 1, id - 1) land on unrelated states.
    std::uint64_t a = seed;
    std::uint64_t b = stream_id ^ 0x5851F42D4C957F2DULL;
    return Prng(splitmix64(a) ^ splitmix64(b));
}

std::uint64_t Prng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Prng::next_below(std::uint64_t bound) {
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return r % bound;
    }
}

double Prng::next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
}

double Prng::normal() {
    // Box–Muller; u1 is kept away from 0 to avoid log(0).
    double u1 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

double Prng::normal(double mean, double sigma) {
    return mean + sigma * normal();
}

bool Prng::chance(double p) {
    return next_double() < p;
}

}  // namespace fastmon
