// ASCII table rendering for the bench binaries.
//
// Each bench that reproduces a paper table prints the same rows/columns
// as the paper; TextTable keeps alignment and separators uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fastmon {

class TextTable {
public:
    /// Creates a table with the given column headers.
    explicit TextTable(std::vector<std::string> headers);

    /// Starts a new row; subsequent cell() calls fill it left to right.
    void begin_row();

    void cell(std::string value);
    void cell(long long value);
    void cell(std::size_t value);
    void cell(int value);
    /// Fixed-point value with the given number of decimals.
    void cell(double value, int decimals = 2);
    /// Percentage rendered like the paper: "(+12.2%)".
    void cell_percent(double percent, int decimals = 1);

    /// Renders the table with a header separator.
    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace fastmon
