// Fault-injection harness for resilience testing.
//
// Named injection points are compiled into the pipeline permanently
// (they cost one relaxed load when the injector is idle, the same
// pattern as trace spans).  Tests and CI arm them either through
// FASTMON_FAULT_INJECT or programmatically:
//
//   FASTMON_FAULT_INJECT=parser.bench            fail on 1st hit
//   FASTMON_FAULT_INJECT=solver.budget@3         fail on 3rd hit
//   FASTMON_FAULT_INJECT=parser.sdf,pool.task@2  comma-separated specs
//
// Known points (grep for fault_injection_point to enumerate):
//   parser.bench / parser.verilog / parser.sdf / parser.pattern /
//   parser.json                  -> forced Diagnostic from the parser
//   solver.budget                -> set-cover/ILP budget exhaustion
//   pool.task                    -> exception from inside a pool task
//   cancel.<phase>               -> cancellation request at phase entry
//   cancel.fault_sim_mid         -> cancellation mid fault-simulation
//   shard.crash                  -> hard process exit (code 70) at a
//                                   campaign device boundary
//   shard.hang                   -> infinite stall at a device boundary
//                                   (the supervisor must detect + kill)
//   shard.corrupt_artifact       -> one flipped digit in the shard
//                                   artifact (checksum must catch it)
//
// `fire()` throws InjectedFault at the armed hit; `trip()` reports the
// hit without throwing, for points that model state (e.g. budget
// exhaustion or a cancellation request) rather than an error path.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fastmon {

/// Thrown by an armed injection point.  Derives from std::runtime_error
/// so it flows through the same recovery paths as organic failures.
class InjectedFault : public std::runtime_error {
public:
    explicit InjectedFault(std::string_view point);
    [[nodiscard]] const std::string& point() const { return point_; }

private:
    std::string point_;
};

class FaultInjector {
public:
    /// Process-wide injector; parses $FASTMON_FAULT_INJECT on first use.
    static FaultInjector& global();

    /// Arms `point` to trip on its `hit`-th visit (1-based).
    void arm(std::string_view point, std::uint64_t hit = 1);

    /// Parses a FASTMON_FAULT_INJECT-style spec ("a,b@3").  Returns
    /// false (and arms nothing from the bad element) on a malformed
    /// element; well-formed elements before it are still armed.
    bool arm_spec(std::string_view spec);

    /// Disarms everything and resets hit counters.  Tests only.
    void reset();

    /// Visit `point`; throws InjectedFault when it trips.
    void fire(std::string_view point) {
        if (!enabled_.load(std::memory_order_relaxed)) return;
        fire_slow(point);
    }

    /// Visit `point`; returns true (once) when it trips, for callers
    /// that degrade state instead of throwing.
    [[nodiscard]] bool trip(std::string_view point) {
        if (!enabled_.load(std::memory_order_relaxed)) return false;
        return trip_slow(point);
    }

    /// True if `point` is armed (does not count as a visit).
    [[nodiscard]] bool armed(std::string_view point) const;

private:
    FaultInjector() = default;

    struct Point {
        std::string name;
        std::uint64_t trip_at = 1;  ///< 1-based hit index that trips
        std::uint64_t hits = 0;
        bool tripped = false;
    };

    void fire_slow(std::string_view point);
    bool trip_slow(std::string_view point);
    Point* find_locked(std::string_view point);

    mutable std::mutex mutex_;
    std::vector<Point> points_;
    std::atomic<bool> enabled_{false};
};

}  // namespace fastmon
