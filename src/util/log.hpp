// Minimal leveled logging to stderr.
//
// The flow and the benches emit progress at Info level; set the level to
// Warn (or use the FASTMON_LOG environment variable: quiet|warn|info|debug)
// to silence them in tests.
#pragma once

#include <sstream>
#include <string_view>

namespace fastmon {

enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/// Global log level; initialized from $FASTMON_LOG on first use.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, std::string_view msg);
}

/// Streams a single log line if `level` is enabled.
class LogLine {
public:
    explicit LogLine(LogLevel level) : level_(level), enabled_(level <= log_level()) {}
    ~LogLine() {
        if (enabled_) detail::log_emit(level_, os_.str());
    }
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine& operator<<(const T& v) {
        if (enabled_) os_ << v;
        return *this;
    }

private:
    LogLevel level_;
    bool enabled_;
    std::ostringstream os_;
};

inline LogLine log_info() { return LogLine(LogLevel::Info); }
inline LogLine log_warn() { return LogLine(LogLevel::Warn); }
inline LogLine log_debug() { return LogLine(LogLevel::Debug); }

}  // namespace fastmon
