#include "util/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "util/atomic_file.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace fastmon {

namespace {

std::uint64_t steady_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::atomic<std::uint32_t> g_next_thread_id{0};

std::uint32_t this_thread_id() {
    thread_local const std::uint32_t id =
        g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void write_at_exit() {
    Tracer& t = Tracer::global();
    const std::string path = t.output_path();
    if (path.empty() || t.num_events() == 0) return;
    if (t.write(path)) {
        log_info() << "trace: wrote " << t.num_events() << " events to "
                   << path;
    } else {
        log_warn() << "trace: failed to write " << path;
    }
}

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_ns()) {
    if (const char* env = std::getenv("FASTMON_TRACE");
        env != nullptr && *env != '\0') {
        output_path_ = env;
        enabled_.store(true, std::memory_order_relaxed);
        std::atexit(write_at_exit);
    }
}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
    // Leaked singleton: spans may end during static destruction of
    // other objects, which must not observe a destroyed tracer.  The
    // exit-time file write runs via atexit instead.
    static Tracer* instance = new Tracer();
    return *instance;
}

void Tracer::start() { enabled_.store(true, std::memory_order_relaxed); }

void Tracer::stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::uint64_t Tracer::now_ns() const { return steady_ns() - epoch_ns_; }

std::uint32_t Tracer::thread_id() { return this_thread_id(); }

void Tracer::record(std::string name, const char* category,
                    std::uint64_t start_ns, std::uint64_t duration_ns) {
    if (!enabled()) return;
    TraceEvent e;
    e.name = std::move(name);
    e.category = category;
    e.start_ns = start_ns;
    e.duration_ns = duration_ns;
    e.thread_id = this_thread_id();
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(e));
}

void Tracer::counter(std::string name, double value) {
    if (!enabled()) return;
    TraceEvent e;
    e.name = std::move(name);
    e.category = "counter";
    e.start_ns = now_ns();
    e.thread_id = this_thread_id();
    e.counter_value = value;
    e.is_counter = true;
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(e));
}

std::size_t Tracer::num_events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

Json Tracer::to_json() const {
    Json trace_events = Json::array();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const TraceEvent& e : events_) {
            Json ev = Json::object();
            ev.set("name", e.name);
            ev.set("cat", e.category);
            ev.set("pid", 1);
            ev.set("tid", static_cast<std::uint64_t>(e.thread_id));
            // The trace-event format uses microsecond timestamps.
            ev.set("ts", static_cast<double>(e.start_ns) * 1e-3);
            if (e.is_counter) {
                ev.set("ph", "C");
                Json args = Json::object();
                args.set("value", e.counter_value);
                ev.set("args", std::move(args));
            } else {
                ev.set("ph", "X");
                ev.set("dur", static_cast<double>(e.duration_ns) * 1e-3);
            }
            trace_events.push_back(std::move(ev));
        }
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(trace_events));
    doc.set("displayTimeUnit", "ms");
    return doc;
}

bool Tracer::write(const std::string& path) const {
    // Temp-file + rename: a crash between spans never leaves a torn
    // trace behind for Perfetto to choke on.
    return atomic_write_file(path, to_json().dump(1) + '\n');
}

void Tracer::set_output_path(std::string path) {
    const std::lock_guard<std::mutex> lock(mutex_);
    output_path_ = std::move(path);
}

std::string Tracer::output_path() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return output_path_;
}

}  // namespace fastmon
