// Crash-safe file emission.
//
// Artifact writers (trace, metrics, run manifests) used to stream
// straight into the destination path; a crash or kill signal mid-write
// left a truncated, unparsable file that downstream tooling then choked
// on.  atomic_write_file() writes `<path>.partial` first and renames it
// over the destination only after a successful flush, so readers either
// see the previous complete artifact or the new complete artifact —
// never a torn one.  A stray `.partial` file on disk is the tombstone
// of an interrupted write and is safe to delete.
#pragma once

#include <string>
#include <string_view>

namespace fastmon {

/// Suffix used for in-flight writes ("<path>.partial").
inline constexpr std::string_view kPartialSuffix = ".partial";

/// Writes `contents` to `path` via temp-file + rename.  Returns false
/// (leaving any previous file at `path` untouched and cleaning up the
/// temp file) when the temp file cannot be written or renamed.
bool atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace fastmon
