#include "util/fault_inject.hpp"

#include <cstdlib>

namespace fastmon {

InjectedFault::InjectedFault(std::string_view point)
    : std::runtime_error("injected fault at '" + std::string(point) + "'"),
      point_(point) {}

FaultInjector& FaultInjector::global() {
    // Leaked like the other observability singletons; injection points
    // can fire from atexit-adjacent code paths.
    static FaultInjector* injector = [] {
        auto* inj = new FaultInjector();
        if (const char* env = std::getenv("FASTMON_FAULT_INJECT")) {
            inj->arm_spec(env);
        }
        return inj;
    }();
    return *injector;
}

void FaultInjector::arm(std::string_view point, std::uint64_t hit) {
    if (point.empty()) return;
    if (hit == 0) hit = 1;
    std::lock_guard<std::mutex> lock(mutex_);
    if (Point* existing = find_locked(point)) {
        existing->trip_at = hit;
        existing->hits = 0;
        existing->tripped = false;
    } else {
        points_.push_back(Point{std::string(point), hit, 0, false});
    }
    enabled_.store(true, std::memory_order_relaxed);
}

bool FaultInjector::arm_spec(std::string_view spec) {
    bool all_ok = true;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string_view::npos) comma = spec.size();
        std::string_view elem = spec.substr(start, comma - start);
        start = comma + 1;
        if (elem.empty()) continue;
        std::string_view name = elem;
        std::uint64_t hit = 1;
        if (const std::size_t at = elem.find('@');
            at != std::string_view::npos) {
            name = elem.substr(0, at);
            const std::string count(elem.substr(at + 1));
            char* end = nullptr;
            const unsigned long long parsed =
                std::strtoull(count.c_str(), &end, 10);
            if (count.empty() || *end != '\0' || parsed == 0) {
                all_ok = false;
                continue;
            }
            hit = parsed;
        }
        if (name.empty()) {
            all_ok = false;
            continue;
        }
        arm(name, hit);
    }
    return all_ok;
}

void FaultInjector::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    points_.clear();
    enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::armed(std::string_view point) const {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Point& p : points_) {
        if (p.name == point && !p.tripped) return true;
    }
    return false;
}

FaultInjector::Point* FaultInjector::find_locked(std::string_view point) {
    for (Point& p : points_) {
        if (p.name == point) return &p;
    }
    return nullptr;
}

void FaultInjector::fire_slow(std::string_view point) {
    if (trip_slow(point)) throw InjectedFault(point);
}

bool FaultInjector::trip_slow(std::string_view point) {
    std::lock_guard<std::mutex> lock(mutex_);
    Point* p = find_locked(point);
    if (p == nullptr || p->tripped) return false;
    ++p->hits;
    if (p->hits < p->trip_at) return false;
    p->tripped = true;
    return true;
}

}  // namespace fastmon
