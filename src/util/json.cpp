#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace fastmon {

const Json* Json::find(std::string_view key) const {
    if (type_ != Type::Object) return nullptr;
    for (const auto& [k, v] : obj_) {
        if (k == key) return &v;
    }
    return nullptr;
}

Json& Json::set(std::string_view key, Json value) {
    if (type_ == Type::Null) type_ = Type::Object;
    for (auto& [k, v] : obj_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    obj_.emplace_back(std::string(key), std::move(value));
    return *this;
}

Json& Json::push_back(Json value) {
    if (type_ == Type::Null) type_ = Type::Array;
    arr_.push_back(std::move(value));
    return *this;
}

bool operator==(const Json& a, const Json& b) {
    if (a.type_ != b.type_) return false;
    switch (a.type_) {
        case Json::Type::Null: return true;
        case Json::Type::Bool: return a.bool_ == b.bool_;
        case Json::Type::Number: return a.num_ == b.num_;
        case Json::Type::String: return a.str_ == b.str_;
        case Json::Type::Array: return a.arr_ == b.arr_;
        case Json::Type::Object: return a.obj_ == b.obj_;
    }
    return false;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void number_into(std::string& out, double v) {
    if (!std::isfinite(v)) {  // JSON has no inf/nan
        out += "null";
        return;
    }
    // Integers (the common case: counters, ids) print without exponent
    // or trailing zeros; everything else round-trips via %.17g.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
    switch (type_) {
        case Type::Null: out += "null"; break;
        case Type::Bool: out += bool_ ? "true" : "false"; break;
        case Type::Number: number_into(out, num_); break;
        case Type::String: escape_into(out, str_); break;
        case Type::Array: {
            if (arr_.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            for (std::size_t i = 0; i < arr_.size(); ++i) {
                if (i > 0) out += ',';
                newline_indent(out, indent, depth + 1);
                arr_[i].dump_to(out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out += ']';
            break;
        }
        case Type::Object: {
            if (obj_.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            for (std::size_t i = 0; i < obj_.size(); ++i) {
                if (i > 0) out += ',';
                newline_indent(out, indent, depth + 1);
                escape_into(out, obj_[i].first);
                out += indent > 0 ? ": " : ":";
                obj_[i].second.dump_to(out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out += '}';
            break;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

namespace {

struct Parser {
    std::string_view text;
    std::size_t pos = 0;
    std::string error;
    std::size_t error_offset = 0;
    std::size_t depth = 0;

    [[nodiscard]] bool at_end() const { return pos >= text.size(); }
    [[nodiscard]] char peek() const { return text[pos]; }

    void skip_ws() {
        while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                             text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool fail(const std::string& msg) {
        if (error.empty()) {
            error = msg;
            error_offset = pos;
        }
        return false;
    }

    /// 1-based line/column of `offset` (error paths only, so the scan
    /// over the prefix is fine).
    void locate(std::size_t offset, std::size_t& line,
                std::size_t& column) const {
        line = 1;
        column = 1;
        const std::size_t limit = std::min(offset, text.size());
        for (std::size_t i = 0; i < limit; ++i) {
            if (text[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
    }

    bool consume(char c, const char* what) {
        skip_ws();
        if (at_end() || text[pos] != c) {
            return fail(std::string("expected ") + what);
        }
        ++pos;
        return true;
    }

    bool literal(std::string_view word) {
        if (text.substr(pos, word.size()) != word) {
            return fail("invalid literal");
        }
        pos += word.size();
        return true;
    }

    bool parse_string(std::string& out) {
        if (!consume('"', "string")) return false;
        out.clear();
        while (true) {
            if (at_end()) return fail("unterminated string");
            const char c = text[pos++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                return fail("control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (at_end()) return fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos + 4 > text.size()) return fail("bad \\u escape");
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            return fail("bad \\u escape");
                        }
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs
                    // are passed through as two encoded halves; the
                    // artifacts this parser reads never contain them).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: return fail("bad escape");
            }
        }
    }

    bool parse_value(Json& out) {
        skip_ws();
        if (at_end()) return fail("unexpected end of input");
        const char c = peek();
        if (c == '{') return parse_object(out);
        if (c == '[') return parse_array(out);
        if (c == '"') {
            std::string s;
            if (!parse_string(s)) return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true")) return false;
            out = Json(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false")) return false;
            out = Json(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null")) return false;
            out = Json();
            return true;
        }
        return parse_number(out);
    }

    bool parse_number(Json& out) {
        const std::size_t start = pos;
        if (!at_end() && peek() == '-') ++pos;
        while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                             peek() == '.' || peek() == 'e' || peek() == 'E' ||
                             peek() == '+' || peek() == '-')) {
            ++pos;
        }
        double v = 0.0;
        const auto [end, ec] =
            std::from_chars(text.data() + start, text.data() + pos, v);
        if (ec != std::errc{} || end != text.data() + pos || pos == start) {
            pos = start;
            return fail("invalid number");
        }
        out = Json(v);
        return true;
    }

    bool parse_array(Json& out) {
        if (!consume('[', "'['")) return false;
        if (++depth > Json::kMaxParseDepth) return fail("nesting too deep");
        const bool ok = parse_array_body(out);
        --depth;
        return ok;
    }

    bool parse_array_body(Json& out) {
        JsonArray arr;
        skip_ws();
        if (!at_end() && peek() == ']') {
            ++pos;
            out = Json(std::move(arr));
            return true;
        }
        while (true) {
            Json v;
            if (!parse_value(v)) return false;
            arr.push_back(std::move(v));
            skip_ws();
            if (at_end()) return fail("unterminated array");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                out = Json(std::move(arr));
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parse_object(Json& out) {
        if (!consume('{', "'{'")) return false;
        if (++depth > Json::kMaxParseDepth) return fail("nesting too deep");
        const bool ok = parse_object_body(out);
        --depth;
        return ok;
    }

    bool parse_object_body(Json& out) {
        JsonObject obj;
        skip_ws();
        if (!at_end() && peek() == '}') {
            ++pos;
            out = Json(std::move(obj));
            return true;
        }
        while (true) {
            skip_ws();
            std::string key;
            if (!parse_string(key)) return false;
            if (!consume(':', "':'")) return false;
            Json v;
            if (!parse_value(v)) return false;
            obj.emplace_back(std::move(key), std::move(v));
            skip_ws();
            if (at_end()) return fail("unterminated object");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                out = Json(std::move(obj));
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text,
                                JsonParseError& error) {
    Parser p{text};
    Json value;
    bool ok = p.parse_value(value);
    if (ok) {
        p.skip_ws();
        if (!p.at_end()) ok = p.fail("trailing characters");
    }
    if (!ok) {
        error.offset = p.error_offset;
        error.message = p.error;
        p.locate(p.error_offset, error.line, error.column);
        return std::nullopt;
    }
    return value;
}

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
    JsonParseError detail;
    std::optional<Json> value = parse(text, detail);
    if (!value && error != nullptr) {
        *error = detail.message + " at line " + std::to_string(detail.line) +
                 ", column " + std::to_string(detail.column) + " (offset " +
                 std::to_string(detail.offset) + ")";
    }
    return value;
}

}  // namespace fastmon
