// Minimal POSIX subprocess control for the fleet supervisor.
//
// The fleet campaign service launches shard workers as real processes
// (so a crashed or SIGKILL'd shard cannot take the supervisor down)
// and needs exactly three capabilities: spawn with per-child
// environment overrides, non-blocking liveness polls, and a kill
// switch for hung workers.  This wraps fork/execvp/waitpid behind a
// value type; it deliberately does not do pipes or ptys — shard
// workers communicate through crash-safe artifact files, never stdout.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>

namespace fastmon {

struct SpawnOptions {
    /// Environment overrides added on top of the inherited environ
    /// (e.g. {"FASTMON_FAULT_INJECT", "shard.crash@10"}).
    std::vector<std::pair<std::string, std::string>> env;
    /// When non-empty, the child's stdout AND stderr are appended to
    /// this file (the supervisor keeps one log per shard attempt).
    std::string output_path;
};

/// One spawned child process.  Movable, not copyable; the destructor
/// reaps a still-running child (SIGKILL + wait) so the supervisor's
/// error paths can never leak zombies.
class Subprocess {
public:
    Subprocess(Subprocess&& other) noexcept;
    Subprocess& operator=(Subprocess&& other) noexcept;
    Subprocess(const Subprocess&) = delete;
    Subprocess& operator=(const Subprocess&) = delete;
    ~Subprocess();

    /// Forks and execvp's argv[0] with the given arguments.  Returns
    /// std::nullopt (and a reason in `error`) when the fork fails; an
    /// exec failure inside the child surfaces as exit code 127.
    static std::optional<Subprocess> spawn(
        const std::vector<std::string>& argv,
        const SpawnOptions& options = {}, std::string* error = nullptr);

    [[nodiscard]] pid_t pid() const { return pid_; }

    /// Non-blocking: std::nullopt while the child runs, otherwise the
    /// shell-style status (exit code, or 128 + signal number when the
    /// child died on a signal).  Idempotent after the child is reaped.
    std::optional<int> poll();

    /// Blocks until the child exits; returns the same encoding.
    int exit_code();

    /// Sends `sig` (default SIGKILL).  False when the child is already
    /// reaped.  The caller still polls/waits to reap.
    bool kill(int sig = 9);

    [[nodiscard]] bool running() { return !poll().has_value(); }

private:
    Subprocess() = default;

    pid_t pid_ = -1;
    std::optional<int> status_;  ///< cached once reaped
};

}  // namespace fastmon
