#include "util/atomic_file.hpp"

#include <cstdio>
#include <fstream>

namespace fastmon {

bool atomic_write_file(const std::string& path, std::string_view contents) {
    const std::string tmp = path + std::string(kPartialSuffix);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    // std::rename replaces an existing destination atomically on POSIX.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

}  // namespace fastmon
