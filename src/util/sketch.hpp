// Mergeable streaming quantile sketch (DDSketch-style).
//
// The campaign engine needs distribution summaries (per-device roll
// latency, first-alert years, failure years) that (a) never drop tail
// samples the way the old decimating histogram reservoir did, (b) can
// be merged associatively across worker shards — the aggregate
// primitive a future `--shard i/N` fleet mode needs — and (c) survive
// a JSON round trip bit-for-bit so sketches can ride in checkpoints
// and heartbeat sidecars.
//
// The sketch buckets values logarithmically: bucket i covers
// (gamma^(i-1), gamma^i] with gamma = (1 + alpha) / (1 - alpha), so
// any quantile estimate carries a relative error of at most `alpha`
// regardless of how many samples streamed through.  Counts are exact
// integers, so merge() is associative and commutative on the bucket
// contents (the tracked `sum` is a double and associative only up to
// floating-point addition order).  Memory is O(buckets touched):
// ~log(max/min)/log(gamma) entries, a few thousand even across
// eighteen decades at the default alpha.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "util/json.hpp"

namespace fastmon {

class QuantileSketch {
public:
    /// Default relative accuracy: 0.5 %, tight enough that p50 of a
    /// 1..100 stream lands within the old exact-histogram tolerances.
    static constexpr double kDefaultAlpha = 0.005;

    explicit QuantileSketch(double alpha = kDefaultAlpha);

    /// Records `n` occurrences of x.  Non-finite values are ignored
    /// (the percentile helpers reject NaN the same way); negatives go
    /// to a mirrored store, zero to a dedicated bucket.
    void record(double x, std::uint64_t n = 1);

    /// Folds `other` into this sketch.  Associative and commutative on
    /// counts/min/max (sum is FP-addition-order sensitive).  Throws
    /// std::invalid_argument when the relative accuracies differ.
    void merge(const QuantileSketch& other);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
    [[nodiscard]] double mean() const {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    [[nodiscard]] double alpha() const { return alpha_; }

    /// Value at percentile p in [0, 100] with relative error <= alpha
    /// (clamped to the exact [min, max] envelope; 0 on an empty
    /// sketch).  p <= 0 returns min, p >= 100 returns max.
    [[nodiscard]] double quantile(double p) const;

    void reset();

    /// Exact serialization: to_json -> parse -> from_json -> to_json
    /// is bit-stable, and a deserialized sketch merges/quantiles
    /// identically to the original.
    [[nodiscard]] Json to_json() const;
    static std::optional<QuantileSketch> from_json(const Json& j);

    /// {count, sum, min, max, mean, p50, p90, p99} — the summary shape
    /// manifests and heartbeat sidecars embed.
    [[nodiscard]] Json summary() const;

    /// Deep equality on alpha + every bucket + exact stats (doubles
    /// compare bitwise, matching the JSON round-trip contract).
    friend bool operator==(const QuantileSketch& a, const QuantileSketch& b);

private:
    using Buckets = std::map<std::int32_t, std::uint64_t>;

    [[nodiscard]] std::int32_t bucket_index(double magnitude) const;
    [[nodiscard]] double bucket_value(std::int32_t index) const;

    double alpha_ = kDefaultAlpha;
    double gamma_ = 0.0;          ///< (1 + alpha) / (1 - alpha)
    double inv_log_gamma_ = 0.0;  ///< 1 / log(gamma)
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t zero_count_ = 0;
    Buckets positive_;  ///< index -> count for x > 0
    Buckets negative_;  ///< index -> count for |x|, x < 0
};

}  // namespace fastmon
