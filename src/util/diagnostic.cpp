#include "util/diagnostic.hpp"

#include <algorithm>

#include "util/fault_inject.hpp"

namespace fastmon {

std::string Diagnostic::format(const std::string& source,
                               const std::string& file, std::size_t line,
                               std::size_t column,
                               const std::string& message,
                               const std::string& excerpt) {
    // "<file>:<line>:<col>: <source> parse error: <message>\n  <excerpt>"
    // with unknown positional parts elided; mirrors the compiler-style
    // convention so editors and CI logs can hyperlink it.
    std::string out;
    if (!file.empty()) {
        out += file;
        if (line > 0) {
            out += ':';
            out += std::to_string(line);
            if (column > 0) {
                out += ':';
                out += std::to_string(column);
            }
        }
        out += ": ";
    } else if (line > 0) {
        out += "line ";
        out += std::to_string(line);
        if (column > 0) {
            out += ':';
            out += std::to_string(column);
        }
        out += ": ";
    }
    out += source;
    out += " parse error: ";
    out += message;
    if (!excerpt.empty()) {
        out += "\n  ";
        out += excerpt;
    }
    return out;
}

Diagnostic::Diagnostic(std::string source, std::string file,
                       std::size_t line, std::size_t column,
                       std::string message, std::string excerpt)
    : std::runtime_error(
          format(source, file, line, column, message, excerpt)),
      source_(std::move(source)),
      file_(std::move(file)),
      line_(line),
      column_(column),
      message_(std::move(message)),
      excerpt_(std::move(excerpt)) {}

Json parse_json_or_throw(std::string_view text, std::string_view file) {
    if (FaultInjector::global().trip("parser.json")) {
        throw Diagnostic("json", std::string(file), 0, 0,
                         "injected parse failure", "");
    }
    JsonParseError err;
    std::optional<Json> value = Json::parse(text, err);
    if (!value) {
        // Excerpt: the line the error points into, trimmed to something
        // log-friendly.
        std::size_t begin = text.rfind('\n', err.offset);
        begin = begin == std::string_view::npos ? 0 : begin + 1;
        std::size_t end = text.find('\n', err.offset);
        if (end == std::string_view::npos) end = text.size();
        std::string excerpt(text.substr(begin, std::min<std::size_t>(
                                                   end - begin, 120)));
        throw Diagnostic("json", std::string(file), err.line, err.column,
                         err.message, std::move(excerpt));
    }
    return std::move(*value);
}

Json Diagnostic::to_json() const {
    Json j = Json::object();
    j.set("source", source_);
    if (!file_.empty()) j.set("file", file_);
    if (line_ > 0) j.set("line", line_);
    if (column_ > 0) j.set("column", column_);
    j.set("message", message_);
    if (!excerpt_.empty()) j.set("excerpt", excerpt_);
    return j;
}

}  // namespace fastmon
