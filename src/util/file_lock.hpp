// Advisory exclusive file locking (flock).
//
// The bench-history ledger is a read-check-append file: two concurrent
// bench runs interleaving their appends would corrupt the JSONL stream
// that every future regression gate depends on.  FileLock wraps
// flock(2) in an RAII type — the lock is released when the object is
// destroyed (or the process dies, which is what makes flock the right
// primitive: a crashed holder can never wedge the ledger).  Locks are
// advisory: every writer must take one, readers of atomically-renamed
// artifacts need none.
#pragma once

#include <optional>
#include <string>

namespace fastmon {

class FileLock {
public:
    /// Blocks until the exclusive lock on `path` is held (the file is
    /// created if missing).  std::nullopt (and a reason in `error`)
    /// when the lock file cannot be opened.
    static std::optional<FileLock> exclusive(const std::string& path,
                                             std::string* error = nullptr);

    /// Non-blocking variant: std::nullopt when another holder has the
    /// lock (error, when given, then says "held elsewhere").
    static std::optional<FileLock> try_exclusive(
        const std::string& path, std::string* error = nullptr);

    FileLock(FileLock&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    FileLock& operator=(FileLock&& other) noexcept;
    FileLock(const FileLock&) = delete;
    FileLock& operator=(const FileLock&) = delete;
    ~FileLock();

private:
    explicit FileLock(int fd) : fd_(fd) {}
    static std::optional<FileLock> acquire(const std::string& path,
                                           bool block, std::string* error);

    int fd_ = -1;
};

}  // namespace fastmon
