#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace fastmon {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const {
    return std::sqrt(variance());
}

double percentile(std::vector<double> values, double p) {
    // NaN has no rank; letting it through would poison the sort order.
    std::erase_if(values, [](double v) { return std::isnan(v); });
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

namespace {

/// Finite samples sorted by decreasing score (prediction-first order).
std::vector<ClassifierSample> sorted_by_score(
    std::span<const ClassifierSample> samples) {
    std::vector<ClassifierSample> sorted;
    sorted.reserve(samples.size());
    for (const ClassifierSample& s : samples) {
        if (!std::isnan(s.score)) sorted.push_back(s);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const ClassifierSample& a, const ClassifierSample& b) {
                  return a.score > b.score;
              });
    return sorted;
}

}  // namespace

double roc_auc(std::span<const ClassifierSample> samples) {
    const std::vector<ClassifierSample> sorted = sorted_by_score(samples);
    // Rank-sum with midranks for ties: walk groups of equal score; every
    // member of a group gets the group's average rank.
    double positive_rank_sum = 0.0;
    std::size_t num_pos = 0;
    std::size_t i = 0;
    std::size_t rank = 1;  // 1-based rank in decreasing-score order
    while (i < sorted.size()) {
        std::size_t j = i;
        std::size_t group_pos = 0;
        while (j < sorted.size() && sorted[j].score == sorted[i].score) {
            if (sorted[j].positive) ++group_pos;
            ++j;
        }
        const double midrank =
            static_cast<double>(rank) +
            static_cast<double>(j - i - 1) / 2.0;
        positive_rank_sum += midrank * static_cast<double>(group_pos);
        num_pos += group_pos;
        rank += j - i;
        i = j;
    }
    const std::size_t num_neg = sorted.size() - num_pos;
    if (num_pos == 0 || num_neg == 0) return 0.5;
    // Ranks are in decreasing score order, so low rank = high score.
    // U = sum over positives of (negatives ranked below them).
    const double u = static_cast<double>(num_pos) *
                         static_cast<double>(sorted.size() + 1) -
                     positive_rank_sum -
                     static_cast<double>(num_pos) *
                         static_cast<double>(num_pos + 1) / 2.0;
    return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

std::vector<PrPoint> precision_recall_curve(
    std::span<const ClassifierSample> samples) {
    const std::vector<ClassifierSample> sorted = sorted_by_score(samples);
    std::size_t total_pos = 0;
    for (const ClassifierSample& s : sorted) {
        if (s.positive) ++total_pos;
    }
    std::vector<PrPoint> curve;
    if (total_pos == 0) return curve;
    std::size_t tp = 0;
    std::size_t predicted = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (sorted[i].positive) ++tp;
        ++predicted;
        // Emit one point per distinct threshold (after the last sample
        // of each equal-score group, so ties share an operating point).
        if (i + 1 < sorted.size() && sorted[i + 1].score == sorted[i].score) {
            continue;
        }
        curve.push_back(PrPoint{
            sorted[i].score,
            static_cast<double>(tp) / static_cast<double>(predicted),
            static_cast<double>(tp) / static_cast<double>(total_pos)});
    }
    return curve;
}

double average_precision(std::span<const ClassifierSample> samples) {
    double ap = 0.0;
    double prev_recall = 0.0;
    for (const PrPoint& p : precision_recall_curve(samples)) {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    return ap;
}

}  // namespace fastmon
