// Unified parser/input diagnostic.
//
// Every parser in the tree (bench, verilog, sdf, pattern, json) used to
// throw its own ad-hoc std::runtime_error with a hand-rolled message.
// Diagnostic keeps the runtime_error base — existing `catch
// (std::runtime_error)` / `catch (std::exception)` sites still work —
// but carries the structured fields (file, line, column, source-line
// excerpt) so flow status blocks and tests can report precisely where
// an input went wrong.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace fastmon {

class Diagnostic : public std::runtime_error {
public:
    /// Builder-style construction so parsers only fill what they know:
    ///   throw DiagnosticBuilder("bench").file(path).line(12)
    ///       .excerpt(raw_line).message("unknown gate type 'NANDD'");
    /// `source` names the parser ("bench", "verilog", "sdf", "pattern",
    /// "json"); line/column are 1-based, 0 = unknown.
    Diagnostic(std::string source, std::string file, std::size_t line,
               std::size_t column, std::string message,
               std::string excerpt);

    [[nodiscard]] const std::string& source() const { return source_; }
    [[nodiscard]] const std::string& file() const { return file_; }
    [[nodiscard]] std::size_t line() const { return line_; }
    [[nodiscard]] std::size_t column() const { return column_; }
    [[nodiscard]] const std::string& message() const { return message_; }
    [[nodiscard]] const std::string& excerpt() const { return excerpt_; }

    [[nodiscard]] Json to_json() const;

private:
    static std::string format(const std::string& source,
                              const std::string& file, std::size_t line,
                              std::size_t column,
                              const std::string& message,
                              const std::string& excerpt);

    std::string source_;
    std::string file_;
    std::size_t line_ = 0;
    std::size_t column_ = 0;
    std::string message_;
    std::string excerpt_;
};

/// Parses JSON text, throwing a Diagnostic (source "json") carrying the
/// parser's line/column on failure.  Honors the `parser.json`
/// fault-injection point.  `file` is recorded in the diagnostic only.
Json parse_json_or_throw(std::string_view text, std::string_view file = {});

/// Fluent helper; implicitly convertible to Diagnostic for `throw`.
class DiagnosticBuilder {
public:
    explicit DiagnosticBuilder(std::string_view source) : source_(source) {}

    DiagnosticBuilder& file(std::string_view f) {
        file_ = f;
        return *this;
    }
    DiagnosticBuilder& line(std::size_t l) {
        line_ = l;
        return *this;
    }
    DiagnosticBuilder& column(std::size_t c) {
        column_ = c;
        return *this;
    }
    DiagnosticBuilder& excerpt(std::string_view e) {
        excerpt_ = e;
        return *this;
    }
    DiagnosticBuilder& message(std::string_view m) {
        message_ = m;
        return *this;
    }

    [[nodiscard]] Diagnostic build() const {
        return Diagnostic(source_, file_, line_, column_, message_,
                          excerpt_);
    }
    // NOLINTNEXTLINE(google-explicit-constructor)
    operator Diagnostic() const { return build(); }

private:
    std::string source_;
    std::string file_;
    std::size_t line_ = 0;
    std::size_t column_ = 0;
    std::string message_;
    std::string excerpt_;
};

}  // namespace fastmon
