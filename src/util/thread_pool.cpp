#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "util/fault_inject.hpp"
#include "util/metrics.hpp"

namespace fastmon {

namespace {

/// Index of the current thread in its pool (one pool membership per
/// thread is enough: workers never migrate between pools).
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    queues_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        queues_.push_back(std::make_unique<WorkerQueue>());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool;
    return pool;
}

double ThreadPool::Stats::total_busy_seconds() const {
    return std::accumulate(worker_busy_seconds.begin(),
                           worker_busy_seconds.end(), helper_busy_seconds);
}

ThreadPool::Stats ThreadPool::stats() const {
    Stats s;
    s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
    s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
    s.tasks_injected = tasks_injected_.load(std::memory_order_relaxed);
    s.tasks_drained = tasks_drained_.load(std::memory_order_relaxed);
    s.max_inject_depth = max_inject_depth_.load(std::memory_order_relaxed);
    s.helper_busy_seconds =
        static_cast<double>(helper_busy_ns_.load(std::memory_order_relaxed)) *
        1e-9;
    s.worker_busy_seconds.reserve(queues_.size());
    for (const auto& q : queues_) {
        s.worker_busy_seconds.push_back(
            static_cast<double>(q->busy_ns.load(std::memory_order_relaxed)) *
            1e-9);
    }
    return s;
}

void ThreadPool::publish_metrics(MetricsRegistry& registry) const {
    const Stats s = stats();
    registry.gauge("pool.workers").set(static_cast<double>(size()));
    registry.gauge("pool.tasks_executed")
        .set(static_cast<double>(s.tasks_executed));
    registry.gauge("pool.tasks_stolen").set(static_cast<double>(s.tasks_stolen));
    registry.gauge("pool.tasks_injected")
        .set(static_cast<double>(s.tasks_injected));
    registry.gauge("pool.tasks_drained")
        .set(static_cast<double>(s.tasks_drained));
    registry.gauge("pool.max_inject_depth")
        .set(static_cast<double>(s.max_inject_depth));
    registry.gauge("pool.busy_seconds").set(s.total_busy_seconds());
    registry.gauge("pool.helper_busy_seconds").set(s.helper_busy_seconds);
    Histogram& h = registry.histogram("pool.worker_busy_seconds");
    h.reset();
    for (const double v : s.worker_busy_seconds) h.record(v);
}

std::size_t ThreadPool::effective_lanes(std::size_t total,
                                        std::size_t max_workers) const {
    const std::size_t lanes =
        max_workers == 0 ? size() + 1 : std::min(max_workers, size() + 1);
    return std::max<std::size_t>(1, std::min(lanes, total));
}

void ThreadPool::enqueue(std::function<void()> task) {
    if (tls_pool == this) {
        WorkerQueue& q = *queues_[tls_worker_index];
        const std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(std::move(task));
    } else {
        const std::lock_guard<std::mutex> lock(inject_mutex_);
        inject_.push_back(std::move(task));
        tasks_injected_.fetch_add(1, std::memory_order_relaxed);
        const auto depth = static_cast<std::uint64_t>(inject_.size());
        std::uint64_t prev = max_inject_depth_.load(std::memory_order_relaxed);
        while (prev < depth && !max_inject_depth_.compare_exchange_weak(
                                   prev, depth, std::memory_order_relaxed)) {
        }
    }
    work_cv_.notify_one();
}

bool ThreadPool::pop_task(std::size_t self, std::function<void()>& out,
                          TaskSource& source) {
    // Own deque first, newest task (LIFO: best cache locality)...
    if (self < queues_.size()) {
        WorkerQueue& q = *queues_[self];
        const std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            source = TaskSource::Own;
            return true;
        }
    }
    // ...then the injection queue (FIFO)...
    {
        const std::lock_guard<std::mutex> lock(inject_mutex_);
        if (!inject_.empty()) {
            out = std::move(inject_.front());
            inject_.pop_front();
            source = TaskSource::Injected;
            return true;
        }
    }
    // ...then steal the oldest task of a sibling (FIFO: steals grab the
    // largest remaining work items first under recursive splits).
    for (std::size_t k = 1; k <= queues_.size(); ++k) {
        const std::size_t victim = (self + k) % queues_.size();
        WorkerQueue& q = *queues_[victim];
        const std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            source = TaskSource::Stolen;
            return true;
        }
    }
    return false;
}

void ThreadPool::run_task(std::size_t self,
                          const std::function<void()>& task) {
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (self < queues_.size()) {
        queues_[self]->busy_ns.fetch_add(ns, std::memory_order_relaxed);
    } else {
        helper_busy_ns_.fetch_add(ns, std::memory_order_relaxed);
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
}

bool ThreadPool::try_execute_one() {
    std::function<void()> task;
    const std::size_t self =
        tls_pool == this ? tls_worker_index : queues_.size();
    TaskSource source = TaskSource::Own;
    if (!pop_task(self, task, source)) return false;
    if (source == TaskSource::Stolen) {
        tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
    }
    run_task(self, task);
    return true;
}

void ThreadPool::worker_loop(std::size_t index) {
    tls_pool = this;
    tls_worker_index = index;
    for (;;) {
        std::function<void()> task;
        TaskSource source = TaskSource::Own;
        if (pop_task(index, task, source)) {
            if (source == TaskSource::Stolen) {
                tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
            }
            run_task(index, task);
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        if (stopping_) return;
        // Re-check queues under the sleep lock is not possible (queues
        // have their own locks), so sleep with a timeout: a task
        // enqueued between the failed pop and the wait is picked up at
        // the latest after one tick.
        work_cv_.wait_for(lock, std::chrono::milliseconds(1));
        if (stopping_) return;
    }
}

void ThreadPool::TaskGroup::run(std::function<void()> fn) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    pool_->enqueue([this, fn = std::move(fn)] {
        try {
            if (pool_->cancel_requested()) {
                // Drain path: skip the user function but keep the
                // completion bookkeeping below intact so wait() still
                // balances and returns.
                pool_->tasks_drained_.fetch_add(1,
                                                std::memory_order_relaxed);
            } else {
                FaultInjector::global().fire("pool.task");
                fn();
            }
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!first_exception_) first_exception_ = std::current_exception();
        }
        {
            // Notify while still holding the lock: the moment the lock
            // is released with pending_ == 0, the waiter may return and
            // destroy the group, so no member may be touched after.
            const std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0) done_cv_.notify_all();
        }
    });
}

void ThreadPool::TaskGroup::wait() {
    for (;;) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (pending_ == 0) break;
        }
        if (pool_->try_execute_one()) continue;
        // Nothing to steal: the remaining group tasks are running on
        // workers.  Sleep with a short timeout (a task of *this group*
        // may enqueue new tasks that we should help with).
        std::unique_lock<std::mutex> lock(mutex_);
        if (pending_ == 0) break;
        done_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    std::exception_ptr ex;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        std::swap(ex, first_exception_);
    }
    if (ex) std::rethrow_exception(ex);
}

void ThreadPool::TaskGroup::wait_no_throw() noexcept {
    try {
        wait();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
        // Destructor drain: the exception was already delivered to (or
        // abandoned by) the owner; completion is all that matters here.
    }
}

}  // namespace fastmon
