#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace fastmon {

namespace {

/// Index of the current thread in its pool (one pool membership per
/// thread is enough: workers never migrate between pools).
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    queues_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        queues_.push_back(std::make_unique<WorkerQueue>());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool;
    return pool;
}

std::size_t ThreadPool::effective_lanes(std::size_t total,
                                        std::size_t max_workers) const {
    const std::size_t lanes =
        max_workers == 0 ? size() + 1 : std::min(max_workers, size() + 1);
    return std::max<std::size_t>(1, std::min(lanes, total));
}

void ThreadPool::enqueue(std::function<void()> task) {
    if (tls_pool == this) {
        WorkerQueue& q = *queues_[tls_worker_index];
        const std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(std::move(task));
    } else {
        const std::lock_guard<std::mutex> lock(inject_mutex_);
        inject_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

bool ThreadPool::pop_task(std::size_t self, std::function<void()>& out) {
    // Own deque first, newest task (LIFO: best cache locality)...
    if (self < queues_.size()) {
        WorkerQueue& q = *queues_[self];
        const std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            return true;
        }
    }
    // ...then the injection queue (FIFO)...
    {
        const std::lock_guard<std::mutex> lock(inject_mutex_);
        if (!inject_.empty()) {
            out = std::move(inject_.front());
            inject_.pop_front();
            return true;
        }
    }
    // ...then steal the oldest task of a sibling (FIFO: steals grab the
    // largest remaining work items first under recursive splits).
    for (std::size_t k = 1; k <= queues_.size(); ++k) {
        const std::size_t victim = (self + k) % queues_.size();
        WorkerQueue& q = *queues_[victim];
        const std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            return true;
        }
    }
    return false;
}

bool ThreadPool::try_execute_one() {
    std::function<void()> task;
    const std::size_t self =
        tls_pool == this ? tls_worker_index : queues_.size();
    if (!pop_task(self, task)) return false;
    task();
    return true;
}

void ThreadPool::worker_loop(std::size_t index) {
    tls_pool = this;
    tls_worker_index = index;
    for (;;) {
        std::function<void()> task;
        if (pop_task(index, task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        if (stopping_) return;
        // Re-check queues under the sleep lock is not possible (queues
        // have their own locks), so sleep with a timeout: a task
        // enqueued between the failed pop and the wait is picked up at
        // the latest after one tick.
        work_cv_.wait_for(lock, std::chrono::milliseconds(1));
        if (stopping_) return;
    }
}

void ThreadPool::TaskGroup::run(std::function<void()> fn) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    pool_->enqueue([this, fn = std::move(fn)] {
        try {
            fn();
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!first_exception_) first_exception_ = std::current_exception();
        }
        {
            // Notify while still holding the lock: the moment the lock
            // is released with pending_ == 0, the waiter may return and
            // destroy the group, so no member may be touched after.
            const std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0) done_cv_.notify_all();
        }
    });
}

void ThreadPool::TaskGroup::wait() {
    for (;;) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (pending_ == 0) break;
        }
        if (pool_->try_execute_one()) continue;
        // Nothing to steal: the remaining group tasks are running on
        // workers.  Sleep with a short timeout (a task of *this group*
        // may enqueue new tasks that we should help with).
        std::unique_lock<std::mutex> lock(mutex_);
        if (pending_ == 0) break;
        done_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    std::exception_ptr ex;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        std::swap(ex, first_exception_);
    }
    if (ex) std::rethrow_exception(ex);
}

void ThreadPool::TaskGroup::wait_no_throw() noexcept {
    try {
        wait();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
        // Destructor drain: the exception was already delivered to (or
        // abandoned by) the owner; completion is all that matters here.
    }
}

}  // namespace fastmon
