// Persistent work-stealing thread pool.
//
// The fault-simulation engine runs one timing-accurate re-simulation
// per (fault, pattern) pair; spawning threads per pattern (the seed
// implementation) costs more than many of the simulations themselves.
// This pool is created once and reused for the whole analysis: workers
// keep per-thread deques (LIFO for locality), steal FIFO from each
// other when idle, and external submitters feed a shared injection
// queue.
//
// Waiting on a TaskGroup *helps*: the waiting thread executes queued
// tasks instead of blocking, so nested fan-outs and single-core
// machines (pool of size 0 or 1) cannot deadlock and lose no
// throughput to an idle caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fastmon {

class MetricsRegistry;

class ThreadPool {
public:
    /// Cumulative work statistics of a pool (all counters monotone).
    struct Stats {
        std::uint64_t tasks_executed = 0;  ///< includes helping callers
        std::uint64_t tasks_stolen = 0;    ///< taken from a sibling deque
        std::uint64_t tasks_injected = 0;  ///< submitted by non-workers
        std::uint64_t tasks_drained = 0;   ///< skipped by cancel()
        std::uint64_t max_inject_depth = 0;
        /// Per-worker time spent inside tasks (seconds); index ==
        /// worker index.  Caller-helper time is accumulated separately.
        std::vector<double> worker_busy_seconds;
        double helper_busy_seconds = 0.0;

        [[nodiscard]] double total_busy_seconds() const;
    };

    /// Starts `num_threads` workers (0 = hardware concurrency).  The
    /// caller participates via TaskGroup::wait, so even a pool created
    /// with hardware_concurrency() == 1 makes progress.
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads (callers helping during waits come on
    /// top of this).
    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Process-wide pool sized to the hardware, created on first use.
    /// Shared by every analysis in the process so thread creation
    /// happens exactly once.
    static ThreadPool& shared();

    /// Snapshot of the cumulative work statistics (thread-safe; values
    /// of a snapshot taken while tasks run are individually consistent
    /// but not mutually atomic).
    [[nodiscard]] Stats stats() const;

    /// Publishes the current stats into `registry` as pool.* gauges and
    /// counters (pool.tasks_executed, pool.tasks_stolen,
    /// pool.tasks_injected, pool.max_inject_depth, pool.workers,
    /// pool.busy_seconds plus a pool.worker_busy_seconds histogram).
    void publish_metrics(MetricsRegistry& registry) const;

    /// Requests a drain: queued TaskGroup tasks still run their
    /// completion bookkeeping (so wait() returns and pending_ balances)
    /// but skip the user function.  Tasks already executing finish
    /// normally — cancellation inside a task body is the job of the
    /// CancelToken the task polls.
    void cancel() { cancel_requested_.store(true, std::memory_order_relaxed); }

    [[nodiscard]] bool cancel_requested() const {
        return cancel_requested_.load(std::memory_order_relaxed);
    }

    /// Re-enables task execution after a cancel() drain (tests, and
    /// flows that reuse the shared pool for the next circuit).
    void reset_cancel() {
        cancel_requested_.store(false, std::memory_order_relaxed);
    }

    /// A set of tasks whose completion can be awaited collectively.
    /// Tasks may themselves submit into the group.  The first exception
    /// thrown by any task is rethrown from wait().
    class TaskGroup {
    public:
        explicit TaskGroup(ThreadPool& pool) : pool_(&pool) {}
        ~TaskGroup() { wait_no_throw(); }

        TaskGroup(const TaskGroup&) = delete;
        TaskGroup& operator=(const TaskGroup&) = delete;

        /// Submits fn to the pool as part of this group.
        void run(std::function<void()> fn);

        /// Executes queued tasks until every task of the group has
        /// finished; rethrows the first captured exception.
        void wait();

    private:
        void wait_no_throw() noexcept;

        ThreadPool* pool_;
        std::mutex mutex_;
        std::condition_variable done_cv_;
        std::size_t pending_ = 0;
        std::exception_ptr first_exception_;
    };

    /// Runs fn(begin, end) over [0, total) split into roughly
    /// `max_workers` contiguous chunks executed on the pool (the caller
    /// helps).  `max_workers` = 0 means pool size + 1.  Blocks until
    /// every chunk finished; rethrows the first exception.
    template <typename Fn>
    void parallel_chunks(std::size_t total, std::size_t max_workers, Fn&& fn) {
        const std::size_t lanes = effective_lanes(total, max_workers);
        if (lanes <= 1 || total <= 1) {
            if (total > 0) fn(std::size_t{0}, total);
            return;
        }
        TaskGroup group(*this);
        const std::size_t chunk = (total + lanes - 1) / lanes;
        for (std::size_t begin = 0; begin < total; begin += chunk) {
            const std::size_t end = std::min(total, begin + chunk);
            group.run([&fn, begin, end] { fn(begin, end); });
        }
        group.wait();
    }

private:
    friend class TaskGroup;

    struct WorkerQueue {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
        /// Time this worker spent executing tasks, in nanoseconds
        /// (alignas keeps the hot counter off the mutex cache line).
        alignas(64) std::atomic<std::uint64_t> busy_ns{0};
    };

    /// Where a popped task came from, for the steal counter.
    enum class TaskSource : std::uint8_t { Own, Injected, Stolen };

    [[nodiscard]] std::size_t effective_lanes(std::size_t total,
                                              std::size_t max_workers) const;

    /// Enqueues one task (to the submitting worker's own deque if the
    /// caller is a pool worker, to the injection queue otherwise).
    void enqueue(std::function<void()> task);

    /// Pops or steals one task and runs it.  Returns false if every
    /// queue was empty.
    bool try_execute_one();

    void worker_loop(std::size_t index);
    bool pop_task(std::size_t self, std::function<void()>& out,
                  TaskSource& source);

    /// Runs `task`, charging its wall time to worker `self` (or the
    /// helper bucket when the caller is not a pool worker).
    void run_task(std::size_t self, const std::function<void()>& task);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex inject_mutex_;
    std::deque<std::function<void()>> inject_;

    std::atomic<std::uint64_t> tasks_executed_{0};
    std::atomic<std::uint64_t> tasks_stolen_{0};
    std::atomic<std::uint64_t> tasks_injected_{0};
    std::atomic<std::uint64_t> tasks_drained_{0};
    std::atomic<std::uint64_t> max_inject_depth_{0};
    std::atomic<std::uint64_t> helper_busy_ns_{0};
    std::atomic<bool> cancel_requested_{false};

    std::mutex sleep_mutex_;
    std::condition_variable work_cv_;
    bool stopping_ = false;
};

}  // namespace fastmon
