// Deterministic pseudo-random number generation.
//
// All stochastic parts of the library (circuit generation, delay
// variation, random-phase ATPG) draw from this generator so that every
// experiment is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace fastmon {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, and (unlike
/// std::mt19937) guaranteed to produce identical streams on every
/// platform and standard library.
class Prng {
public:
    /// Seeds the four state words through SplitMix64 so that closely
    /// related seeds give unrelated streams.
    explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Deterministic substream `stream_id` of a root `seed`: the child
    /// state depends only on (seed, stream_id), never on how far any
    /// other generator advanced.  Work items seeded this way (one
    /// stream per device, fault, ...) can be sharded across threads in
    /// any order and still reproduce bit-identically.
    static Prng stream(std::uint64_t seed, std::uint64_t stream_id);

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform value in [0, bound); bound must be > 0.
    /// Uses rejection sampling, so the result is exactly uniform.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Standard normal via Box–Muller (no cached spare: keeps the state
    /// trivially serializable).
    double normal();

    /// Normal with given mean and standard deviation.
    double normal(double mean, double sigma);

    /// Bernoulli draw.
    bool chance(double p);

private:
    std::uint64_t s_[4];
};

}  // namespace fastmon
