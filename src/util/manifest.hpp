// Run-manifest artifact: one JSON document per flow/bench run that
// records what ran (tool version, git describe), on what (config,
// circuit statistics), how long each phase took (wall + CPU), and
// every metric of the global registry — the machine-readable sidecar
// written next to BENCH_*.json so perf regressions can be traced to a
// phase without rerunning anything.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace fastmon {

/// Wall/CPU time of one named flow phase.
struct PhaseTime {
    std::string name;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;  ///< process CPU time (all threads)

    friend bool operator==(const PhaseTime&, const PhaseTime&) = default;
};

/// Measures wall + process-CPU time from construction; read with
/// elapsed().  Used by the flow's phase scopes and the benches.
class PhaseStopwatch {
public:
    PhaseStopwatch();
    [[nodiscard]] PhaseTime elapsed(std::string name) const;

    /// Process CPU seconds (sum over threads) since an arbitrary epoch.
    static double process_cpu_seconds();

private:
    std::uint64_t wall_start_ns_ = 0;
    double cpu_start_ = 0.0;
};

class RunManifest {
public:
    RunManifest();

    /// Tool block (name/version/git) is filled by the constructor from
    /// compile-time information; everything else is added by the run.
    void set_config(const std::string& key, Json value);
    void set_circuit(const std::string& key, Json value);
    void add_phase(PhaseTime phase);
    /// Replaces the metrics block (normally
    /// MetricsRegistry::global().to_json()).
    void set_metrics(Json metrics);
    /// Total wall-clock of the run (phases are parts of this).
    void set_total_wall_seconds(double seconds);
    /// Replaces the status block (normally FlowStatus::to_json()); a
    /// null value removes it.  Manifests without a status block stay
    /// valid — the block only appears on runs that track degradation.
    void set_status(Json status);

    [[nodiscard]] const std::vector<PhaseTime>& phases() const {
        return phases_;
    }
    [[nodiscard]] double total_phase_wall_seconds() const;
    [[nodiscard]] double total_wall_seconds() const { return total_wall_; }
    [[nodiscard]] const Json& config() const { return config_; }
    [[nodiscard]] const Json& circuit() const { return circuit_; }
    [[nodiscard]] const Json& metrics() const { return metrics_; }
    [[nodiscard]] const Json& tool() const { return tool_; }
    /// Null when the run did not record a status block.
    [[nodiscard]] const Json& status() const { return status_; }

    [[nodiscard]] Json to_json() const;
    /// Inverse of to_json(); std::nullopt when required blocks are
    /// missing or of the wrong shape.
    static std::optional<RunManifest> from_json(const Json& j);

    /// Writes to_json() to `path` (pretty-printed); false on failure.
    bool write(const std::string& path) const;

    friend bool operator==(const RunManifest& a, const RunManifest& b);

private:
    Json tool_;
    Json config_;
    Json circuit_;
    std::vector<PhaseTime> phases_;
    Json metrics_;
    Json status_;  ///< null unless set_status() was called
    double total_wall_ = 0.0;
};

/// "git describe --always --dirty" captured at configure time
/// ("unknown" when the build did not run inside a git checkout).
[[nodiscard]] const char* build_git_describe();

}  // namespace fastmon
