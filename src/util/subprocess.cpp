#include "util/subprocess.hpp"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace fastmon {

namespace {

/// waitpid status -> shell-style exit code (128 + N for signal N).
int encode_status(int raw) {
    if (WIFEXITED(raw)) return WEXITSTATUS(raw);
    if (WIFSIGNALED(raw)) return 128 + WTERMSIG(raw);
    return 128;  // stopped/continued never reach here (no WUNTRACED)
}

}  // namespace

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), status_(other.status_) {
    other.pid_ = -1;
    other.status_ = 0;  // moved-from: nothing left to reap
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
    if (this != &other) {
        if (pid_ > 0 && !status_) {
            ::kill(pid_, SIGKILL);
            int raw = 0;
            (void)::waitpid(pid_, &raw, 0);
        }
        pid_ = other.pid_;
        status_ = other.status_;
        other.pid_ = -1;
        other.status_ = 0;
    }
    return *this;
}

Subprocess::~Subprocess() {
    if (pid_ > 0 && !status_) {
        ::kill(pid_, SIGKILL);
        int raw = 0;
        (void)::waitpid(pid_, &raw, 0);
    }
}

std::optional<Subprocess> Subprocess::spawn(
    const std::vector<std::string>& argv, const SpawnOptions& options,
    std::string* error) {
    if (argv.empty()) {
        if (error) *error = "empty argv";
        return std::nullopt;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        if (error) *error = std::string("fork: ") + std::strerror(errno);
        return std::nullopt;
    }
    if (pid == 0) {
        // Child.  Only async-signal-unsafe work that cannot corrupt the
        // parent happens here (we exec or _exit immediately after).
        for (const auto& [key, value] : options.env) {
            ::setenv(key.c_str(), value.c_str(), /*overwrite=*/1);
        }
        if (!options.output_path.empty()) {
            const int fd = ::open(options.output_path.c_str(),
                                  O_WRONLY | O_CREAT | O_APPEND, 0644);
            if (fd >= 0) {
                ::dup2(fd, STDOUT_FILENO);
                ::dup2(fd, STDERR_FILENO);
                if (fd > STDERR_FILENO) ::close(fd);
            }
        }
        std::vector<char*> cargv;
        cargv.reserve(argv.size() + 1);
        for (const std::string& a : argv) {
            cargv.push_back(const_cast<char*>(a.c_str()));
        }
        cargv.push_back(nullptr);
        ::execvp(cargv[0], cargv.data());
        ::_exit(127);  // exec failed; 127 is the shell convention
    }
    Subprocess proc;
    proc.pid_ = pid;
    return proc;
}

std::optional<int> Subprocess::poll() {
    if (status_) return status_;
    if (pid_ <= 0) return status_;
    int raw = 0;
    const pid_t r = ::waitpid(pid_, &raw, WNOHANG);
    if (r == pid_) {
        status_ = encode_status(raw);
    } else if (r < 0 && errno == ECHILD) {
        status_ = 128;  // reaped elsewhere; treat as abnormal
    }
    return status_;
}

int Subprocess::exit_code() {
    if (status_) return *status_;
    int raw = 0;
    while (::waitpid(pid_, &raw, 0) < 0) {
        if (errno != EINTR) {
            status_ = 128;
            return *status_;
        }
    }
    status_ = encode_status(raw);
    return *status_;
}

bool Subprocess::kill(int sig) {
    if (status_ || pid_ <= 0) return false;
    return ::kill(pid_, sig) == 0;
}

}  // namespace fastmon
