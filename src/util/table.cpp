#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace fastmon {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::begin_row() {
    rows_.emplace_back();
}

void TextTable::cell(std::string value) {
    rows_.back().push_back(std::move(value));
}

void TextTable::cell(long long value) {
    cell(std::to_string(value));
}

void TextTable::cell(std::size_t value) {
    cell(std::to_string(value));
}

void TextTable::cell(int value) {
    cell(std::to_string(value));
}

void TextTable::cell(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    cell(std::string(buf));
}

void TextTable::cell_percent(double percent, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "(%+.*f%%)", decimals, percent);
    cell(std::string(buf));
}

void TextTable::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& v = c < row.size() ? row[c] : std::string();
            os << (c == 0 ? "| " : " | ");
            os << v << std::string(widths[c] - v.size(), ' ');
        }
        os << " |\n";
    };
    print_row(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c) {
        os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    os << "-|\n";
    for (const auto& row : rows_) print_row(row);
}

}  // namespace fastmon
