// Live progress telemetry for long-running campaigns.
//
// A multi-minute fleet campaign used to be a black box until exit.
// ProgressReporter makes it observable without touching the hot loops:
// workers publish monotone counters into padded per-worker slots
// (relaxed atomics, written only at batch boundaries so the SoA lane
// loops stay vectorized), and a sampler thread snapshots the slots
// every `interval_seconds` into an atomically-rewritten heartbeat JSON
// sidecar — readers (fastmon_status, CI assertions) either see the
// previous complete snapshot or the new one, never a torn file.  An
// optional throttled stderr line mirrors the same snapshot for humans.
//
// The final snapshot (written by stop()) carries the honest terminal
// state — "finished", "cancelled", or "degraded" — and totals that
// match the exported campaign report.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace fastmon {

struct ProgressConfig {
    /// Heartbeat sidecar path; empty = no file (stderr line only).
    std::string path;
    /// Sampler period in seconds (clamped to >= 1 ms).
    double interval_seconds = 1.0;
    /// Emit a throttled one-line progress report to stderr per sample.
    bool stderr_line = false;
    /// Campaign label (circuit name) echoed into every snapshot.
    std::string label;
    std::uint64_t devices_total = 0;
    /// Year-grid points per device; lane-year progress is reported
    /// against devices_total * grid_points (an upper bound — lanes
    /// settling early finish sooner).
    std::uint64_t grid_points = 0;
};

class ProgressReporter {
public:
    /// One cache line per worker so concurrent publishers never share.
    /// All counters are monotone; the sampler reads them relaxed.
    struct alignas(64) WorkerSlot {
        std::atomic<std::uint64_t> devices{0};
        std::atomic<std::uint64_t> lane_years{0};
        std::atomic<std::uint64_t> settled_early{0};
        std::atomic<std::uint64_t> batches{0};
        std::atomic<std::uint64_t> busy_ns{0};
    };

    explicit ProgressReporter(ProgressConfig config);
    /// Joins the sampler; writes the "finished" snapshot if the owner
    /// never called stop() (so the sidecar always ends honest).
    ~ProgressReporter();

    ProgressReporter(const ProgressReporter&) = delete;
    ProgressReporter& operator=(const ProgressReporter&) = delete;

    /// Devices trusted from a resume checkpoint: counted into
    /// devices_done so the final snapshot matches the report's
    /// devices_completed.
    void add_resumed(std::uint64_t n) {
        resumed_.fetch_add(n, std::memory_order_relaxed);
    }

    /// Stable per-thread slot (assigned on first call; reused across
    /// checkpoint blocks).  Cheap, but call once per shard, not per
    /// batch.
    WorkerSlot& slot_for_this_thread();

    /// Starts the sampler thread (no-op when already running).
    void start();

    /// Writes the final snapshot with `final_state` ("finished",
    /// "cancelled", "degraded") and joins the sampler.  Idempotent —
    /// the first stop wins.
    void stop(const std::string& final_state);

    /// One snapshot document (exposed for tests and the final write).
    [[nodiscard]] Json snapshot(const std::string& state);

    /// Forces one sidecar write outside the sampler cadence (tests).
    bool write_snapshot(const std::string& state);

    [[nodiscard]] const ProgressConfig& config() const { return config_; }
    [[nodiscard]] std::uint64_t devices_done() const;

private:
    void sampler_loop();

    ProgressConfig config_;
    std::uint64_t epoch_ns_ = 0;

    /// Slot storage never reallocates (deque-of-values semantics via
    /// unique_ptr), so WorkerSlot references stay valid for the
    /// reporter's lifetime.
    mutable std::mutex slots_mutex_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::map<std::thread::id, std::size_t> slot_of_thread_;

    std::atomic<std::uint64_t> resumed_{0};
    std::atomic<std::uint64_t> sequence_{0};

    std::mutex sampler_mutex_;
    std::condition_variable sampler_cv_;
    bool stop_requested_ = false;
    bool stopped_ = false;
    std::thread sampler_;

    /// Throughput window: progress at the previous snapshot.
    std::uint64_t last_done_ = 0;
    std::uint64_t last_ns_ = 0;
};

}  // namespace fastmon
