#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>

namespace fastmon {

namespace {

LogLevel g_level = LogLevel::Info;
std::once_flag g_env_once;
std::mutex g_emit_mutex;

/// Epoch of the debug-level timestamps (first logging activity).
std::chrono::steady_clock::time_point log_epoch() {
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

/// Small stable id of the calling thread for debug prefixes.
std::uint32_t log_thread_id() {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void init_from_env() {
    (void)log_epoch();
    const char* env = std::getenv("FASTMON_LOG");
    if (env == nullptr) return;
    const std::string v(env);
    if (v == "quiet") {
        g_level = LogLevel::Quiet;
    } else if (v == "warn") {
        g_level = LogLevel::Warn;
    } else if (v == "info") {
        g_level = LogLevel::Info;
    } else if (v == "debug") {
        g_level = LogLevel::Debug;
    } else {
        // Unknown value: warn once and keep the Info default instead of
        // silently ignoring a typo like FASTMON_LOG=verbose.
        g_level = LogLevel::Info;
        std::cerr << "[warn] FASTMON_LOG: unknown level '" << v
                  << "' (expected quiet|warn|info|debug), defaulting to info\n";
    }
}

}  // namespace

LogLevel log_level() {
    std::call_once(g_env_once, init_from_env);
    return g_level;
}

void set_log_level(LogLevel level) {
    std::call_once(g_env_once, init_from_env);
    g_level = level;
}

namespace detail {

void log_emit(LogLevel level, std::string_view msg) {
    const char* tag = "";
    switch (level) {
        case LogLevel::Warn: tag = "[warn] "; break;
        case LogLevel::Info: tag = "[info] "; break;
        case LogLevel::Debug: tag = "[debug] "; break;
        case LogLevel::Quiet: break;
    }
    // At Debug verbosity every line carries elapsed time and a thread
    // id so interleaved pool output can be attributed.
    char prefix[48] = "";
    if (log_level() >= LogLevel::Debug) {
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          log_epoch())
                .count();
        std::snprintf(prefix, sizeof prefix, "[%10.6fs t%02u] ", secs,
                      log_thread_id());
    }
    const std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::cerr << prefix << tag << msg << '\n';
}

}  // namespace detail

}  // namespace fastmon
