#include "util/log.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>

namespace fastmon {

namespace {

LogLevel g_level = LogLevel::Info;
std::once_flag g_env_once;
std::mutex g_emit_mutex;

void init_from_env() {
    const char* env = std::getenv("FASTMON_LOG");
    if (env == nullptr) return;
    const std::string v(env);
    if (v == "quiet") {
        g_level = LogLevel::Quiet;
    } else if (v == "warn") {
        g_level = LogLevel::Warn;
    } else if (v == "info") {
        g_level = LogLevel::Info;
    } else if (v == "debug") {
        g_level = LogLevel::Debug;
    }
}

}  // namespace

LogLevel log_level() {
    std::call_once(g_env_once, init_from_env);
    return g_level;
}

void set_log_level(LogLevel level) {
    std::call_once(g_env_once, init_from_env);
    g_level = level;
}

namespace detail {

void log_emit(LogLevel level, std::string_view msg) {
    const char* tag = "";
    switch (level) {
        case LogLevel::Warn: tag = "[warn] "; break;
        case LogLevel::Info: tag = "[info] "; break;
        case LogLevel::Debug: tag = "[debug] "; break;
        case LogLevel::Quiet: break;
    }
    const std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::cerr << tag << msg << '\n';
}

}  // namespace detail

}  // namespace fastmon
