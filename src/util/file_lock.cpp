#include "util/file_lock.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace fastmon {

FileLock& FileLock::operator=(FileLock&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

FileLock::~FileLock() {
    // close() drops the flock held through this descriptor.
    if (fd_ >= 0) ::close(fd_);
}

std::optional<FileLock> FileLock::acquire(const std::string& path,
                                          bool block, std::string* error) {
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
        if (error) {
            *error = "cannot open lock file " + path + ": " +
                     std::strerror(errno);
        }
        return std::nullopt;
    }
    int flags = LOCK_EX;
    if (!block) flags |= LOCK_NB;
    while (::flock(fd, flags) != 0) {
        if (errno == EINTR) continue;
        if (error) {
            *error = (!block && errno == EWOULDBLOCK)
                         ? "lock on " + path + " held elsewhere"
                         : "flock " + path + ": " + std::strerror(errno);
        }
        ::close(fd);
        return std::nullopt;
    }
    return FileLock(fd);
}

std::optional<FileLock> FileLock::exclusive(const std::string& path,
                                            std::string* error) {
    return acquire(path, /*block=*/true, error);
}

std::optional<FileLock> FileLock::try_exclusive(const std::string& path,
                                                std::string* error) {
    return acquire(path, /*block=*/false, error);
}

}  // namespace fastmon
