#include "schedule/discretize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace fastmon {

namespace {

/// Sweep over interval endpoints: candidate times (midpoint of the
/// elementary interval preceding each closing boundary) plus the number
/// of detection ranges active there.
struct RawCandidates {
    std::vector<Time> times;
    std::vector<std::uint32_t> counts;
};

RawCandidates sweep_candidates(std::span<const IntervalSet> fault_ranges) {
    struct Event {
        Time t;
        bool open;
    };
    std::vector<Event> events;
    for (const IntervalSet& r : fault_ranges) {
        for (const Interval& iv : r.intervals()) {
            events.push_back(Event{iv.lo, true});
            events.push_back(Event{iv.hi, false});
        }
    }
    RawCandidates raw;
    if (events.empty()) return raw;
    std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
        if (a.t != b.t) return a.t < b.t;
        return a.open < b.open;  // closings first at equal times
    });

    std::uint32_t active = 0;
    Time prev_boundary = events.front().t;
    std::size_t i = 0;
    while (i < events.size()) {
        const Time t = events[i].t;
        const bool any_close = !events[i].open;
        if (any_close && active > 0 && t > prev_boundary + kTimeEps) {
            raw.times.push_back(0.5 * (prev_boundary + t));
            raw.counts.push_back(active);
        }
        while (i < events.size() && events[i].t <= t + kTimeEps) {
            active += events[i].open ? 1 : 0;
            active -= events[i].open ? 0 : 1;
            ++i;
        }
        prev_boundary = t;
    }
    return raw;
}

}  // namespace

DiscretizationResult discretize_observation_times(
    std::span<const IntervalSet> fault_ranges,
    const DiscretizeOptions& options) {
    const TraceSpan span("discretize", "schedule");
    DiscretizationResult result;
    RawCandidates raw = sweep_candidates(fault_ranges);
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("schedule.discretize.calls").add(1);
    reg.counter("schedule.discretize.raw_candidates").add(raw.times.size());
    if (raw.times.empty()) return result;

    std::vector<Time> kept;
    if (options.max_candidates == 0 ||
        raw.times.size() <= options.max_candidates) {
        kept = raw.times;
    } else {
        // Reduction to "representative intervals": keep the candidates
        // where most faults are detected plus a uniform backbone, then
        // repair coverage per fault.
        const std::size_t cap = options.max_candidates;
        const std::size_t n = raw.times.size();
        std::vector<std::size_t> order(n);
        for (std::size_t c = 0; c < n; ++c) order[c] = c;
        std::sort(order.begin(), order.end(), [&raw](std::size_t a, std::size_t b) {
            return raw.counts[a] > raw.counts[b];
        });
        std::vector<bool> keep(n, false);
        const std::size_t top = (cap * 3) / 4;
        for (std::size_t k = 0; k < top; ++k) keep[order[k]] = true;
        const std::size_t backbone = cap - top;
        for (std::size_t k = 0; k < backbone; ++k) {
            keep[k * (n - 1) / std::max<std::size_t>(backbone - 1, 1)] = true;
        }
        for (std::size_t c = 0; c < n; ++c) {
            if (keep[c]) kept.push_back(raw.times[c]);
        }
        // Coverage repair: every fault with a non-empty range must
        // contain a kept candidate.
        for (const IntervalSet& r : fault_ranges) {
            bool hit = false;
            for (const Interval& iv : r.intervals()) {
                auto it = std::lower_bound(kept.begin(), kept.end(), iv.lo);
                if (it != kept.end() && *it < iv.hi) {
                    hit = true;
                    break;
                }
            }
            if (!hit && !r.empty()) {
                // Midpoint of the widest interval.
                const Interval* widest = &r[0];
                for (const Interval& iv : r.intervals()) {
                    if (iv.length() > widest->length()) widest = &iv;
                }
                const Time m = widest->midpoint();
                kept.insert(std::lower_bound(kept.begin(), kept.end(), m), m);
            }
        }
    }
    std::sort(kept.begin(), kept.end());
    kept.erase(std::unique(kept.begin(), kept.end(),
                           [](Time a, Time b) { return std::abs(a - b) <= kTimeEps; }),
               kept.end());

    // Materialize columns by membership test.
    result.candidates = kept;
    result.covered.assign(kept.size(), {});
    for (std::uint32_t fi = 0; fi < fault_ranges.size(); ++fi) {
        for (const Interval& iv : fault_ranges[fi].intervals()) {
            auto it = std::lower_bound(kept.begin(), kept.end(), iv.lo);
            for (; it != kept.end() && *it < iv.hi; ++it) {
                result.covered[static_cast<std::size_t>(it - kept.begin())]
                    .push_back(fi);
            }
        }
    }
    // Drop candidates that cover nothing (can appear after the repair).
    DiscretizationResult cleaned;
    for (std::size_t c = 0; c < result.candidates.size(); ++c) {
        if (result.covered[c].empty()) continue;
        cleaned.candidates.push_back(result.candidates[c]);
        cleaned.covered.push_back(std::move(result.covered[c]));
    }
    reg.counter("schedule.discretize.kept_candidates")
        .add(cleaned.candidates.size());
    return cleaned;
}

}  // namespace fastmon
