// Robustness of a frequency selection under timing variation.
//
// Sec. IV-A selects the *mid-points* of representative intervals "to
// cover the targeted faults robustly even under variations".  This
// module quantifies that: the margin of a selection is, per fault, the
// distance of its best covering period to the nearest boundary of the
// fault's detection range; coverage_under_scaling shifts all detection
// ranges by a global delay-scaling factor (the first-order effect of
// voltage/temperature/process shifts: all delays — and hence all
// detection boundaries — scale together) and recounts coverage.
#pragma once

#include <span>
#include <vector>

#include "util/interval.hpp"

namespace fastmon {

struct RobustnessReport {
    /// Per covered fault: max over covering periods of the distance to
    /// the nearest range boundary (ps); uncovered faults are skipped.
    std::vector<Time> margins;
    Time min_margin = 0.0;
    Time median_margin = 0.0;
    std::size_t covered = 0;
};

/// Margins of `periods` against `fault_ranges`.
RobustnessReport selection_margins(std::span<const IntervalSet> fault_ranges,
                                   std::span<const Time> periods);

/// Fraction of originally covered faults still covered when every
/// detection range is scaled by `scale` (boundaries multiplied) while
/// the test periods stay fixed.
double coverage_under_scaling(std::span<const IntervalSet> fault_ranges,
                              std::span<const Time> periods, double scale);

/// Sweep over scales; returns one retained-coverage fraction per scale.
std::vector<double> robustness_sweep(std::span<const IntervalSet> fault_ranges,
                                     std::span<const Time> periods,
                                     std::span<const double> scales);

}  // namespace fastmon
