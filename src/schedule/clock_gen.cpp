#include "schedule/clock_gen.hpp"

#include <algorithm>
#include <cmath>

namespace fastmon {

ClockGenerator::ClockGenerator(ClockGenConfig config) : config_(config) {
    // Enumerate the realizable grid once.  Ratios repeat (e.g. 2/16 ==
    // 1/8); keep the first witness per distinct period.
    for (std::uint32_t m = config_.multiplier_min; m <= config_.multiplier_max;
         ++m) {
        for (std::uint32_t d = config_.divider_min; d <= config_.divider_max;
             ++d) {
            const Time period = config_.reference_period *
                                static_cast<Time>(d) / static_cast<Time>(m);
            grid_.push_back(ClockSetting{m, d, period});
        }
    }
    std::sort(grid_.begin(), grid_.end(),
              [](const ClockSetting& a, const ClockSetting& b) {
                  return a.period < b.period;
              });
    grid_.erase(std::unique(grid_.begin(), grid_.end(),
                            [](const ClockSetting& a, const ClockSetting& b) {
                                return std::abs(a.period - b.period) <=
                                       kTimeEps;
                            }),
                grid_.end());
}

std::optional<ClockSetting> ClockGenerator::quantize(Time period, Time lo,
                                                     Time hi) const {
    auto it = std::lower_bound(
        grid_.begin(), grid_.end(), period,
        [](const ClockSetting& s, Time p) { return s.period < p; });
    // Candidates: nearest on each side; prefer the closer one inside
    // [lo, hi).
    std::optional<ClockSetting> best;
    auto consider = [&](std::vector<ClockSetting>::const_iterator c) {
        if (c == grid_.end()) return;
        if (c->period < lo || c->period >= hi) return;
        if (!best ||
            std::abs(c->period - period) < std::abs(best->period - period)) {
            best = *c;
        }
    };
    consider(it);
    if (it != grid_.begin()) consider(std::prev(it));
    if (best) return best;
    // Fall back to any grid point inside the window (closest to period).
    auto lo_it = std::lower_bound(
        grid_.begin(), grid_.end(), lo,
        [](const ClockSetting& s, Time p) { return s.period < p; });
    if (lo_it != grid_.end() && lo_it->period < hi) return *lo_it;
    return std::nullopt;
}

ClockSetting ClockGenerator::nearest(Time period) const {
    auto it = std::lower_bound(
        grid_.begin(), grid_.end(), period,
        [](const ClockSetting& s, Time p) { return s.period < p; });
    if (it == grid_.end()) return grid_.back();
    if (it == grid_.begin()) return grid_.front();
    const ClockSetting& hi = *it;
    const ClockSetting& lo = *std::prev(it);
    return std::abs(hi.period - period) < std::abs(lo.period - period) ? hi
                                                                       : lo;
}

double ClockGenerator::max_relative_error(Time lo, Time hi,
                                          std::size_t samples) const {
    double worst = 0.0;
    for (std::size_t k = 0; k < samples; ++k) {
        const Time p = lo + (hi - lo) * static_cast<Time>(k) /
                                static_cast<Time>(samples - 1);
        const ClockSetting s = nearest(p);
        worst = std::max(worst, std::abs(s.period - p) / p);
    }
    return worst;
}

QuantizedSelection quantize_selection(
    const ClockGenerator& gen, std::span<const Time> periods,
    std::span<const IntervalSet> fault_ranges) {
    QuantizedSelection out;
    for (Time t : periods) {
        // Stay within a +-2 % band around the requested period (beyond
        // that the candidate leaves its elementary interval anyway).
        const auto setting = gen.quantize(t, 0.98 * t, 1.02 * t);
        if (setting) {
            out.settings.push_back(*setting);
            out.periods.push_back(setting->period);
        } else {
            const ClockSetting fallback = gen.nearest(t);
            out.settings.push_back(fallback);
            out.periods.push_back(fallback.period);
            ++out.unrealizable;
        }
    }
    // Coverage re-check: a fault keeps coverage if ANY realized period
    // lies in its range.
    for (std::uint32_t fi = 0; fi < fault_ranges.size(); ++fi) {
        const IntervalSet& r = fault_ranges[fi];
        if (r.empty()) continue;
        bool ideal_covered = false;
        for (Time t : periods) {
            if (r.contains(t)) {
                ideal_covered = true;
                break;
            }
        }
        if (!ideal_covered) continue;  // was never covered; not a loss
        bool still = false;
        for (Time t : out.periods) {
            if (r.contains(t)) {
                still = true;
                break;
            }
        }
        if (!still) out.coverage_lost.push_back(fi);
    }
    return out;
}

}  // namespace fastmon
