// Test frequency selection — optimization step 1 (Sec. IV-B/C).
//
// Because every frequency switch forces a PLL relock costing thousands
// of cycles, the number of FAST frequencies dominates test time; step 1
// therefore covers all (or a target fraction of) the target faults with
// the minimum number of test clock periods.  Candidates come from the
// observation-time discretization; the covering problem is solved
// either greedily (the baseline heuristic of [17]) or exactly by branch
// and bound (the paper's ILP).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "opt/set_cover.hpp"
#include "schedule/discretize.hpp"

namespace fastmon {

enum class SelectMethod : std::uint8_t {
    Greedy,         ///< heuristic baseline [17]
    BranchAndBound, ///< exact within budget (the paper's ILP)
    /// Exact interval stabbing (classic earliest-right-endpoint sweep):
    /// provably minimal when every fault's detection range is a single
    /// contiguous interval; falls back to BranchAndBound otherwise.
    /// Only supports full coverage.
    Stabbing,
};

/// Minimum piercing points for single-interval ranges (empty ranges are
/// skipped); returns std::nullopt if some range has several intervals
/// or `coverage`-style partial covering is requested elsewhere.
std::optional<std::vector<Time>> stabbing_periods(
    std::span<const IntervalSet> fault_ranges);

struct FrequencySelection {
    /// Selected test clock periods, increasing.
    std::vector<Time> periods;
    /// Per selected period: covered fault indices (into the input span).
    std::vector<std::vector<std::uint32_t>> covered;
    std::size_t num_covered_faults = 0;
    bool proven_optimal = false;
    bool feasible = false;
};

struct FrequencySelectOptions {
    SelectMethod method = SelectMethod::BranchAndBound;
    double coverage = 1.0;  ///< fraction of coverable faults to cover
    DiscretizeOptions discretize;
    SetCoverOptions solver;
};

/// Selects periods covering `coverage` of the faults that are coverable
/// at all (faults with empty ranges are excluded from the base).
FrequencySelection select_frequencies(std::span<const IntervalSet> fault_ranges,
                                      const FrequencySelectOptions& options);

}  // namespace fastmon
