#include "schedule/validate.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <unordered_set>

namespace fastmon {

ScheduleValidation validate_schedule(
    const TestSchedule& schedule, std::span<const DetectionEntry> entries,
    std::span<const std::uint32_t> target_faults) {
    // Selected applications as a lookup set.
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t>> selected;
    for (const ScheduleEntry& e : schedule.entries) {
        selected.emplace(e.period_index, e.pattern, e.config);
    }
    std::unordered_set<std::uint32_t> covered;
    for (const DetectionEntry& d : entries) {
        if (selected.contains({d.period, d.pattern, d.config})) {
            covered.insert(d.fault_index);
        }
    }
    ScheduleValidation v;
    for (std::uint32_t f : target_faults) {
        if (covered.contains(f)) {
            ++v.covered;
        } else {
            v.uncovered_faults.push_back(f);
        }
    }
    std::sort(v.uncovered_faults.begin(), v.uncovered_faults.end());
    v.valid = v.uncovered_faults.empty();
    return v;
}

void write_schedule_csv(std::ostream& os, const TestSchedule& schedule) {
    os << "period_ps,frequency_index,pattern,config\n";
    std::vector<ScheduleEntry> ordered(schedule.entries.begin(),
                                       schedule.entries.end());
    std::sort(ordered.begin(), ordered.end(),
              [&schedule](const ScheduleEntry& a, const ScheduleEntry& b) {
                  const Time ta = schedule.periods[a.period_index];
                  const Time tb = schedule.periods[b.period_index];
                  if (ta != tb) return ta < tb;
                  if (a.pattern != b.pattern) return a.pattern < b.pattern;
                  return a.config < b.config;
              });
    for (const ScheduleEntry& e : ordered) {
        os << schedule.periods[e.period_index] << ',' << e.period_index << ','
           << e.pattern << ',' << e.config << '\n';
    }
}

}  // namespace fastmon
