// Schedule validation and ATE-handoff export.
//
// A schedule is only as good as its coverage proof: validate_schedule
// re-checks, against the pass-B detection table, that every target
// fault is detected by at least one selected (frequency, pattern,
// configuration) application.  write_schedule_csv emits the schedule in
// a tester-friendly order (grouped by frequency — one PLL relock per
// group, configurations loaded during scan shift-in).
#pragma once

#include <iosfwd>
#include <span>

#include "fault/detection_range.hpp"
#include "schedule/schedule.hpp"

namespace fastmon {

struct ScheduleValidation {
    bool valid = false;
    std::size_t covered = 0;
    std::vector<std::uint32_t> uncovered_faults;
};

/// Checks that every fault in `target_faults` is covered by some entry
/// of `schedule` according to `entries` (period indices in both refer
/// to schedule.periods).
ScheduleValidation validate_schedule(const TestSchedule& schedule,
                                     std::span<const DetectionEntry> entries,
                                     std::span<const std::uint32_t> target_faults);

/// CSV columns: period_ps, frequency_rel_index, pattern, config.
/// Entries are grouped by period (ascending), then pattern.
void write_schedule_csv(std::ostream& os, const TestSchedule& schedule);

}  // namespace fastmon
