// Scan-chain infrastructure and the cycle-accurate test-time model.
//
// The paper's test-time argument (Sec. IV-B) weighs PLL relocks against
// pattern applications; the per-pattern cost is dominated by scan
// shift-in.  This module partitions the flip-flops into balanced scan
// chains (monitor shadow registers are stitched into the same chains —
// their configuration bits load "concurrently during shift-in of the
// test patterns", as the paper assumes) and prices a schedule in clock
// cycles: shift = longest chain, plus launch/capture, plus a relock per
// frequency change.
#pragma once

#include <cstdint>
#include <vector>

#include "monitor/placement.hpp"
#include "netlist/netlist.hpp"
#include "schedule/schedule.hpp"

namespace fastmon {

struct ScanChains {
    /// chain[c] lists the flip-flop node ids of chain c, scan-in first.
    std::vector<std::vector<GateId>> chains;
    /// Extra stitched cells per chain (monitor shadow registers and
    /// their configuration latches).
    std::vector<std::size_t> extra_cells;

    [[nodiscard]] std::size_t num_chains() const { return chains.size(); }
    /// Cycles to shift one pattern: the longest chain including
    /// stitched monitor cells.
    [[nodiscard]] std::size_t shift_cycles() const;
    /// Total scan cells across all chains.
    [[nodiscard]] std::size_t total_cells() const;
};

/// Balanced partition of the circuit's flip-flops into `num_chains`
/// chains (round-robin over a topological FF order); monitored FFs
/// contribute their shadow register + one config cell to the chain.
ScanChains build_scan_chains(const Netlist& netlist,
                             const MonitorPlacement& placement,
                             std::size_t num_chains);

/// Cycle-accurate test-time model.
struct ScanTestTimeModel {
    double relock_cycles = 25000.0;  ///< per frequency switch
    double launch_capture_cycles = 2.0;

    /// Cycles for `schedule` with the given chains: one relock per
    /// distinct period plus (shift + launch/capture) per application.
    /// Configuration loads ride along with shift-in: config changes
    /// between applications cost nothing extra.
    [[nodiscard]] double cycles(const TestSchedule& schedule,
                                const ScanChains& chains) const;

    /// The naive reference: every pattern under every configuration at
    /// every frequency.
    [[nodiscard]] double naive_cycles(std::size_t num_frequencies,
                                      std::size_t num_patterns,
                                      std::size_t num_configs,
                                      const ScanChains& chains) const;
};

}  // namespace fastmon
