#include "schedule/schedule.hpp"

namespace fastmon {

double schedule_reduction_percent(std::size_t schedule_size,
                                  std::size_t naive_size) {
    if (naive_size == 0) return 0.0;
    return (1.0 - static_cast<double>(schedule_size) /
                      static_cast<double>(naive_size)) *
           100.0;
}

}  // namespace fastmon
