// Test observation time discretization (Sec. IV-A).
//
// The boundaries of all fault detection intervals partition the FAST
// window into elementary intervals; all observation times inside one
// elementary interval detect the same faults.  Candidate test periods
// are the midpoints of representative elementary intervals.  This
// implementation keeps the candidates that precede a right endpoint of
// some detection interval — a classical exchange argument shows an
// optimal cover exists using only those — and, when the candidate count
// exceeds `max_candidates`, reduces further (greedy-cover core plus the
// highest-coverage candidates), mirroring the paper's representative-
// interval reduction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/interval.hpp"

namespace fastmon {

struct DiscretizationResult {
    /// Candidate observation times (midpoints), increasing.
    std::vector<Time> candidates;
    /// Per candidate: indices (into the input span) of faults whose
    /// detection range contains the candidate.
    std::vector<std::vector<std::uint32_t>> covered;
};

struct DiscretizeOptions {
    /// Cap on the number of candidates (0 = unlimited).
    std::size_t max_candidates = 384;
};

/// `fault_ranges` are the per-fault detection ranges already clipped to
/// the FAST window.  Faults with empty ranges contribute nothing.
DiscretizationResult discretize_observation_times(
    std::span<const IntervalSet> fault_ranges,
    const DiscretizeOptions& options = {});

}  // namespace fastmon
