// Programmable test clock generation.
//
// The paper's test time argument rests on PLL-based clock generators
// ([21], [22]: a 4-PLL spread-spectrum part): every frequency switch
// costs a relock, and — equally important for deployment — only a
// discrete grid of periods is realizable (reference / divider /
// multiplier combinations).  This model quantizes ideal observation
// times onto a realizable grid and re-validates a frequency selection
// under quantization: a candidate period that cannot be realized
// inside every detection interval it pierces costs coverage.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/interval.hpp"

namespace fastmon {

struct ClockGenConfig {
    /// Reference oscillator period (ps).
    Time reference_period = 10000.0;  // 100 MHz crystal
    /// Feedback multiplier range (VCO multiplication).
    std::uint32_t multiplier_min = 8;
    std::uint32_t multiplier_max = 128;
    /// Output divider range.
    std::uint32_t divider_min = 1;
    std::uint32_t divider_max = 512;
    /// Relock time per reprogramming, in reference cycles.
    double relock_reference_cycles = 200.0;
};

/// A realizable PLL setting: period = reference * divider / multiplier.
struct ClockSetting {
    std::uint32_t multiplier = 1;
    std::uint32_t divider = 1;
    Time period = 0.0;
};

class ClockGenerator {
public:
    explicit ClockGenerator(ClockGenConfig config = {});

    /// The closest realizable setting to `period` within [lo, hi);
    /// std::nullopt if no setting lands in the window.
    [[nodiscard]] std::optional<ClockSetting> quantize(
        Time period, Time lo, Time hi) const;

    /// Closest realizable setting to `period`, unconstrained.
    [[nodiscard]] ClockSetting nearest(Time period) const;

    /// Worst-case relative quantization error over [lo, hi] (sampled on
    /// the realizable grid): max over requested periods of
    /// |realized - requested| / requested.
    [[nodiscard]] double max_relative_error(Time lo, Time hi,
                                            std::size_t samples = 256) const;

    /// Relock duration in ps.
    [[nodiscard]] Time relock_time() const {
        return config_.relock_reference_cycles * config_.reference_period;
    }

    [[nodiscard]] const ClockGenConfig& config() const { return config_; }

private:
    ClockGenConfig config_;
    /// All realizable periods (sorted, deduplicated) with one witness
    /// setting each.
    std::vector<ClockSetting> grid_;
};

/// Result of quantizing a frequency selection.
struct QuantizedSelection {
    std::vector<ClockSetting> settings;   ///< per input period (kept order)
    std::vector<Time> periods;            ///< realized periods
    std::size_t unrealizable = 0;         ///< periods with no in-window setting
    /// Faults (indices into the range span) that lost coverage because
    /// their piercing period moved outside their detection range.
    std::vector<std::uint32_t> coverage_lost;
};

/// Quantizes `periods` against the detection ranges they must pierce:
/// each period is replaced by the nearest realizable period that stays
/// within the same elementary region where possible; coverage loss is
/// reported per fault.
QuantizedSelection quantize_selection(const ClockGenerator& gen,
                                      std::span<const Time> periods,
                                      std::span<const IntervalSet> fault_ranges);

}  // namespace fastmon
