#include "schedule/freq_select.hpp"

#include <algorithm>
#include <limits>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace fastmon {

std::optional<std::vector<Time>> stabbing_periods(
    std::span<const IntervalSet> fault_ranges) {
    std::vector<Interval> intervals;
    for (const IntervalSet& r : fault_ranges) {
        if (r.empty()) continue;
        if (r.size() > 1) return std::nullopt;
        intervals.push_back(r[0]);
    }
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) { return a.hi < b.hi; });
    std::vector<Time> points;
    Time last = -std::numeric_limits<Time>::infinity();
    for (const Interval& iv : intervals) {
        if (last >= iv.lo && last < iv.hi) continue;  // already pierced
        // Pierce strictly inside the half-open interval, just below hi
        // (the earliest-deadline point of the classic exchange argument).
        last = iv.hi - 1e-6 * iv.length();
        points.push_back(last);
    }
    return points;
}

FrequencySelection select_frequencies(
    std::span<const IntervalSet> fault_ranges,
    const FrequencySelectOptions& options) {
    const TraceSpan span("freq_select", "schedule");
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("schedule.freq_select.calls").add(1);
    reg.counter("schedule.freq_select.faults").add(fault_ranges.size());
    FrequencySelection sel;

    if (options.method == SelectMethod::Stabbing && options.coverage >= 1.0) {
        if (const auto points = stabbing_periods(fault_ranges)) {
            sel.periods = *points;
            sel.proven_optimal = true;
            sel.feasible = true;
            std::vector<bool> fault_done(fault_ranges.size(), false);
            for (Time t : sel.periods) {
                std::vector<std::uint32_t> covered;
                for (std::uint32_t fi = 0; fi < fault_ranges.size(); ++fi) {
                    if (fault_ranges[fi].contains(t)) {
                        covered.push_back(fi);
                        if (!fault_done[fi]) {
                            fault_done[fi] = true;
                            ++sel.num_covered_faults;
                        }
                    }
                }
                sel.covered.push_back(std::move(covered));
            }
            reg.counter("schedule.freq_select.periods").add(sel.periods.size());
            return sel;
        }
        // Multi-interval ranges: fall through to branch and bound.
    }

    const DiscretizationResult disc =
        discretize_observation_times(fault_ranges, options.discretize);
    if (disc.candidates.empty()) {
        sel.feasible = fault_ranges.empty();
        sel.proven_optimal = true;
        return sel;
    }

    // Coverable faults (non-empty range) form the element base; the
    // coverage target refers to them.
    std::vector<std::uint32_t> coverable;
    std::vector<std::uint32_t> element_of_fault(fault_ranges.size(), UINT32_MAX);
    for (std::uint32_t fi = 0; fi < fault_ranges.size(); ++fi) {
        if (!fault_ranges[fi].empty()) {
            element_of_fault[fi] = static_cast<std::uint32_t>(coverable.size());
            coverable.push_back(fi);
        }
    }

    SetCoverInstance inst;
    inst.num_elements = static_cast<std::uint32_t>(coverable.size());
    inst.sets.resize(disc.candidates.size());
    for (std::size_t c = 0; c < disc.candidates.size(); ++c) {
        for (std::uint32_t fi : disc.covered[c]) {
            inst.sets[c].push_back(element_of_fault[fi]);
        }
        std::sort(inst.sets[c].begin(), inst.sets[c].end());
    }

    SetCoverOptions solver = options.solver;
    solver.coverage = options.coverage;
    const SetCoverResult cover =
        options.method == SelectMethod::Greedy
            ? greedy_set_cover(inst, solver)
            : solve_set_cover(inst, solver);

    sel.feasible = cover.feasible;
    sel.proven_optimal =
        options.method != SelectMethod::Greedy && cover.proven_optimal;

    std::vector<std::uint32_t> chosen = cover.chosen;
    std::sort(chosen.begin(), chosen.end(), [&disc](std::uint32_t a, std::uint32_t b) {
        return disc.candidates[a] < disc.candidates[b];
    });
    std::vector<bool> fault_done(fault_ranges.size(), false);
    for (std::uint32_t c : chosen) {
        sel.periods.push_back(disc.candidates[c]);
        std::vector<std::uint32_t> faults = disc.covered[c];
        std::sort(faults.begin(), faults.end());
        sel.covered.push_back(std::move(faults));
    }
    for (const auto& faults : sel.covered) {
        for (std::uint32_t fi : faults) {
            if (!fault_done[fi]) {
                fault_done[fi] = true;
                ++sel.num_covered_faults;
            }
        }
    }
    reg.counter("schedule.freq_select.periods").add(sel.periods.size());
    return sel;
}

}  // namespace fastmon
