#include "schedule/pattern_config_select.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace fastmon {

PatternConfigResult select_pattern_configs(
    std::span<const DetectionEntry> entries, std::span<const Time> periods,
    std::span<const std::uint32_t> target_faults,
    const PatternConfigOptions& options) {
    const TraceSpan span("pattern_config_select", "schedule");
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("schedule.pattern_config.calls").add(1);
    reg.counter("schedule.pattern_config.entries").add(entries.size());
    reg.counter("schedule.pattern_config.periods").add(periods.size());
    PatternConfigResult result;
    result.proven_optimal = true;
    result.schedule.periods.assign(periods.begin(), periods.end());

    const std::unordered_set<std::uint32_t> targets(target_faults.begin(),
                                                    target_faults.end());

    // Per period: which target faults are detectable there at all.
    std::vector<std::unordered_set<std::uint32_t>> detectable(periods.size());
    for (const DetectionEntry& e : entries) {
        if (targets.contains(e.fault_index)) {
            detectable[e.period].insert(e.fault_index);
        }
    }

    // Fault dropping: periods ordered by detectable count (descending);
    // each fault is assigned to the first period that detects it.
    std::vector<std::uint32_t> period_order(periods.size());
    for (std::uint32_t i = 0; i < periods.size(); ++i) period_order[i] = i;
    std::sort(period_order.begin(), period_order.end(),
              [&detectable](std::uint32_t a, std::uint32_t b) {
                  return detectable[a].size() > detectable[b].size();
              });
    std::unordered_map<std::uint32_t, std::uint32_t> assigned_period;
    for (std::uint32_t pi : period_order) {
        for (std::uint32_t fi : detectable[pi]) {
            assigned_period.emplace(fi, pi);  // keeps the first assignment
        }
    }
    for (std::uint32_t fi : target_faults) {
        if (!assigned_period.contains(fi)) result.uncovered_faults.push_back(fi);
    }

    // Per period: set cover over (pattern, config) pairs.
    for (std::uint32_t pi = 0; pi < periods.size(); ++pi) {
        // Fault share of this period.
        std::vector<std::uint32_t> share;
        for (const auto& [fi, p] : assigned_period) {
            if (p == pi) share.push_back(fi);
        }
        if (share.empty()) continue;
        std::sort(share.begin(), share.end());
        std::unordered_map<std::uint32_t, std::uint32_t> element_of;
        for (std::uint32_t k = 0; k < share.size(); ++k) {
            element_of.emplace(share[k], k);
        }

        // Columns: (pattern, config) -> covered elements at this period.
        std::map<std::pair<std::uint32_t, std::uint16_t>,
                 std::vector<std::uint32_t>>
            columns;
        for (const DetectionEntry& e : entries) {
            if (e.period != pi) continue;
            auto it = element_of.find(e.fault_index);
            if (it == element_of.end()) continue;
            columns[{e.pattern, e.config}].push_back(it->second);
        }

        SetCoverInstance inst;
        inst.num_elements = static_cast<std::uint32_t>(share.size());
        std::vector<std::pair<std::uint32_t, std::uint16_t>> column_keys;
        for (auto& [key, elems] : columns) {
            std::sort(elems.begin(), elems.end());
            elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
            column_keys.push_back(key);
            inst.sets.push_back(std::move(elems));
        }

        SetCoverOptions solver = options.solver;
        solver.coverage = 1.0;
        const SetCoverResult cover = options.method == SelectMethod::Greedy
                                         ? greedy_set_cover(inst, solver)
                                         : solve_set_cover(inst, solver);
        if (options.method == SelectMethod::BranchAndBound &&
            !cover.proven_optimal) {
            result.proven_optimal = false;
        }
        for (std::uint32_t s : cover.chosen) {
            result.schedule.entries.push_back(ScheduleEntry{
                pi, column_keys[s].first, column_keys[s].second});
        }
        if (!cover.feasible) {
            // Elements uncoverable at the assigned period (should not
            // happen; defensive accounting).
            std::vector<bool> covered(inst.num_elements, false);
            for (std::uint32_t s : cover.chosen) {
                for (std::uint32_t e : inst.sets[s]) covered[e] = true;
            }
            for (std::uint32_t k = 0; k < share.size(); ++k) {
                if (!covered[k]) result.uncovered_faults.push_back(share[k]);
            }
        }
    }

    std::sort(result.uncovered_faults.begin(), result.uncovered_faults.end());
    reg.counter("schedule.pattern_config.chosen")
        .add(result.schedule.entries.size());
    reg.counter("schedule.pattern_config.uncovered")
        .add(result.uncovered_faults.size());
    return result;
}

}  // namespace fastmon
