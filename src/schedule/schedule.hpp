// Test schedule representation and test-time model.
//
// A schedule S is a set of (frequency, pattern, configuration)
// combinations (Sec. III-A): at test period `period`, pattern `pattern`
// is applied while all monitors are set to configuration `config`.
// The test-time model charges a PLL relock per distinct frequency plus
// a per-application cost, reflecting that frequency switches dominate
// (Sec. IV-B, [21, 22]).
#pragma once

#include <cstdint>
#include <vector>

#include "util/interval.hpp"

namespace fastmon {

struct ScheduleEntry {
    std::uint32_t period_index = 0;  ///< index into TestSchedule::periods
    std::uint32_t pattern = 0;
    std::uint16_t config = 0;
};

struct TestSchedule {
    std::vector<Time> periods;            ///< distinct test clock periods
    std::vector<ScheduleEntry> entries;   ///< the set S

    [[nodiscard]] std::size_t num_frequencies() const { return periods.size(); }
    [[nodiscard]] std::size_t size() const { return entries.size(); }
};

struct TestTimeModel {
    /// Cycles lost per frequency switch (PLL relock; "thousands of
    /// instruction cycles", Sec. IV-B).
    double relock_cycles = 25000.0;
    /// Cycles per pattern application (scan load + launch/capture).
    double cycles_per_pattern = 100.0;

    /// Total cost of a schedule in cycles.
    [[nodiscard]] double cycles(const TestSchedule& schedule) const {
        return relock_cycles * static_cast<double>(schedule.num_frequencies()) +
               cycles_per_pattern * static_cast<double>(schedule.size());
    }

    /// Cost of the naive application: every pattern under every
    /// configuration at every frequency.
    [[nodiscard]] double naive_cycles(std::size_t num_frequencies,
                                      std::size_t num_patterns,
                                      std::size_t num_configs) const {
        return relock_cycles * static_cast<double>(num_frequencies) +
               cycles_per_pattern * static_cast<double>(num_frequencies) *
                   static_cast<double>(num_patterns) *
                   static_cast<double>(num_configs);
    }
};

/// Relative reduction (percent) as reported in Tables II/III:
/// (1 - |S| / |P x C x F|) * 100.
double schedule_reduction_percent(std::size_t schedule_size,
                                  std::size_t naive_size);

}  // namespace fastmon
