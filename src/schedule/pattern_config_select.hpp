// Pattern and monitor-configuration selection — optimization step 2
// (Sec. IV-B/C).
//
// After frequency selection, faults are partitioned over the selected
// periods by a fault-dropping heuristic (periods sorted by covered
// count; each fault goes to the first period that detects it).  For
// each period the minimal set of (pattern, configuration) pairs
// covering its fault share is selected — again a set-covering problem
// solved greedily or exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/detection_range.hpp"
#include "schedule/freq_select.hpp"
#include "schedule/schedule.hpp"

namespace fastmon {

struct PatternConfigOptions {
    SelectMethod method = SelectMethod::BranchAndBound;
    SetCoverOptions solver;
};

struct PatternConfigResult {
    TestSchedule schedule;
    /// Faults (indices into the analyzed fault list) with no detecting
    /// (pattern, config, period) entry — should be empty when pass B ran
    /// on the same periods that cover them.
    std::vector<std::uint32_t> uncovered_faults;
    bool proven_optimal = false;
};

/// `entries` is the pass-B detection table over `periods` (period
/// indices in the entries refer to positions in `periods`);
/// `target_faults` lists the fault indices that must be covered.
PatternConfigResult select_pattern_configs(
    std::span<const DetectionEntry> entries, std::span<const Time> periods,
    std::span<const std::uint32_t> target_faults,
    const PatternConfigOptions& options);

}  // namespace fastmon
