#include "schedule/scan.hpp"

#include <algorithm>
#include <stdexcept>

namespace fastmon {

std::size_t ScanChains::shift_cycles() const {
    std::size_t longest = 0;
    for (std::size_t c = 0; c < chains.size(); ++c) {
        longest = std::max(longest, chains[c].size() + extra_cells[c]);
    }
    return longest;
}

std::size_t ScanChains::total_cells() const {
    std::size_t total = 0;
    for (std::size_t c = 0; c < chains.size(); ++c) {
        total += chains[c].size() + extra_cells[c];
    }
    return total;
}

ScanChains build_scan_chains(const Netlist& netlist,
                             const MonitorPlacement& placement,
                             std::size_t num_chains) {
    if (num_chains == 0) {
        throw std::invalid_argument("build_scan_chains: zero chains");
    }
    ScanChains sc;
    sc.chains.resize(num_chains);
    sc.extra_cells.assign(num_chains, 0);

    // Monitored flip-flop nodes (via their observation points).
    std::vector<bool> has_monitor(netlist.size(), false);
    const auto ops = netlist.observe_points();
    for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        if (oi < placement.monitored.size() && placement.monitored[oi]) {
            has_monitor[ops[oi].node] = true;
        }
    }

    std::size_t cursor = 0;
    for (GateId q : netlist.flip_flops()) {
        const std::size_t c = cursor++ % num_chains;
        sc.chains[c].push_back(q);
        if (has_monitor[q]) {
            // Shadow register + its configuration latch share the chain.
            sc.extra_cells[c] += 2;
        }
    }
    return sc;
}

double ScanTestTimeModel::cycles(const TestSchedule& schedule,
                                 const ScanChains& chains) const {
    const double per_pattern =
        static_cast<double>(chains.shift_cycles()) + launch_capture_cycles;
    return relock_cycles * static_cast<double>(schedule.num_frequencies()) +
           per_pattern * static_cast<double>(schedule.size());
}

double ScanTestTimeModel::naive_cycles(std::size_t num_frequencies,
                                       std::size_t num_patterns,
                                       std::size_t num_configs,
                                       const ScanChains& chains) const {
    const double per_pattern =
        static_cast<double>(chains.shift_cycles()) + launch_capture_cycles;
    return relock_cycles * static_cast<double>(num_frequencies) +
           per_pattern * static_cast<double>(num_frequencies) *
               static_cast<double>(num_patterns) *
               static_cast<double>(num_configs);
}

}  // namespace fastmon
