#include "schedule/robustness.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace fastmon {

namespace {

/// Distance from t to the nearest boundary of the interval containing
/// it; negative if t is outside every interval.
Time containment_margin(const IntervalSet& range, Time t) {
    for (const Interval& iv : range.intervals()) {
        if (iv.contains(t)) {
            return std::min(t - iv.lo, iv.hi - t);
        }
    }
    return -1.0;
}

}  // namespace

RobustnessReport selection_margins(std::span<const IntervalSet> fault_ranges,
                                   std::span<const Time> periods) {
    RobustnessReport report;
    std::vector<double> margins;
    for (const IntervalSet& r : fault_ranges) {
        if (r.empty()) continue;
        Time best = -1.0;
        for (Time t : periods) {
            best = std::max(best, containment_margin(r, t));
        }
        if (best >= 0.0) {
            report.margins.push_back(best);
            margins.push_back(best);
            ++report.covered;
        }
    }
    if (!margins.empty()) {
        report.min_margin = *std::min_element(margins.begin(), margins.end());
        report.median_margin = percentile(margins, 50.0);
    }
    return report;
}

double coverage_under_scaling(std::span<const IntervalSet> fault_ranges,
                              std::span<const Time> periods, double scale) {
    std::size_t baseline = 0;
    std::size_t retained = 0;
    for (const IntervalSet& r : fault_ranges) {
        if (r.empty()) continue;
        bool covered = false;
        bool covered_scaled = false;
        for (Time t : periods) {
            if (r.contains(t)) covered = true;
            // Scaling all delays by `scale` multiplies every detection
            // boundary; equivalently, test at t/scale in the original.
            if (r.contains(t / scale)) covered_scaled = true;
        }
        if (covered) {
            ++baseline;
            if (covered_scaled) ++retained;
        }
    }
    if (baseline == 0) return 1.0;
    return static_cast<double>(retained) / static_cast<double>(baseline);
}

std::vector<double> robustness_sweep(std::span<const IntervalSet> fault_ranges,
                                     std::span<const Time> periods,
                                     std::span<const double> scales) {
    std::vector<double> out;
    out.reserve(scales.size());
    for (double s : scales) {
        out.push_back(coverage_under_scaling(fault_ranges, periods, s));
    }
    return out;
}

}  // namespace fastmon
