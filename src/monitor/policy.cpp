#include "monitor/policy.hpp"

#include <algorithm>

namespace fastmon {

std::string to_string(PolicyEventKind kind) {
    switch (kind) {
        case PolicyEventKind::Alert: return "alert";
        case PolicyEventKind::Countermeasure: return "countermeasure";
        case PolicyEventKind::Reconfigure: return "reconfigure";
        case PolicyEventKind::ImminentFailure: return "imminent-failure";
        case PolicyEventKind::TimingFailure: return "timing-failure";
    }
    return "?";
}

PolicyRun run_adaptive_policy(const LifetimeSimulator& simulator,
                              const MonitorPlacement& placement,
                              const PolicyConfig& config) {
    PolicyRun run;
    if (placement.config_delays.size() < 2) return run;  // no guard bands

    // Start with the widest guard band (Fig. 2 (b)).
    auto active = static_cast<ConfigIndex>(placement.config_delays.size() - 1);
    double aging_rate = 1.0;
    double effective_age = 0.0;
    const Time clk = simulator.clock_period();

    // Arrival history for the trend-based prediction.
    double prev_years = 0.0;
    Time prev_arrival = 0.0;
    bool have_prev = false;
    bool predicted = false;

    for (double t = 0.0; t <= config.horizon_years + 1e-9;
         t += config.step_years) {
        const LifetimePoint point =
            simulator.evaluate(effective_age, placement);

        if (point.timing_failure) {
            run.events.push_back(
                PolicyEvent{t, PolicyEventKind::TimingFailure, active});
            run.failure_years = t;
            break;
        }

        if (point.alerts[active]) {
            run.events.push_back(PolicyEvent{t, PolicyEventKind::Alert, active});
            if (!predicted && have_prev &&
                point.worst_monitored_arrival > prev_arrival + 1e-12) {
                // Linear extrapolation of the monitored arrival trend to
                // the clock period.
                const double slope =
                    (point.worst_monitored_arrival - prev_arrival) /
                    (t - prev_years);
                run.predicted_failure_years =
                    t + (clk - point.worst_monitored_arrival) / slope;
                predicted = true;
            }
            if (active == 1) {
                // Narrowest band: imminent failure (Fig. 2 (c) endpoint).
                if (run.imminent_failure_years < 0.0) {
                    run.events.push_back(PolicyEvent{
                        t, PolicyEventKind::ImminentFailure, active});
                    run.imminent_failure_years = t;
                }
            } else {
                // Mitigate and narrow the guard band.
                aging_rate *= config.countermeasure_rate_scale;
                run.events.push_back(
                    PolicyEvent{t, PolicyEventKind::Countermeasure, active});
                --active;
                run.events.push_back(
                    PolicyEvent{t, PolicyEventKind::Reconfigure, active});
            }
        }

        prev_years = t;
        prev_arrival = point.worst_monitored_arrival;
        have_prev = true;
        effective_age += config.step_years * aging_rate;
    }
    return run;
}

}  // namespace fastmon
