#include "monitor/overhead.hpp"

namespace fastmon {

namespace {

/// Rough NAND2-equivalent area per cell type.
double cell_ge(CellType type, std::size_t arity) {
    switch (type) {
        case CellType::Inv: return 0.7;
        case CellType::Buf: return 1.0;
        case CellType::Nand:
        case CellType::Nor:
            return 1.0 + 0.5 * static_cast<double>(arity > 2 ? arity - 2 : 0);
        case CellType::And:
        case CellType::Or:
            return 1.5 + 0.5 * static_cast<double>(arity > 2 ? arity - 2 : 0);
        case CellType::Xor:
        case CellType::Xnor:
            return 2.5 + 1.0 * static_cast<double>(arity > 2 ? arity - 2 : 0);
        case CellType::Mux2: return 2.25;
        case CellType::Aoi21:
        case CellType::Oai21: return 1.75;
        case CellType::Dff: return 4.5;
        default: return 0.0;  // pads
    }
}

}  // namespace

double MonitorCostModel::monitor_ge(std::size_t num_elements) const {
    return shadow_register_ge + xor_ge +
           delay_element_ge * static_cast<double>(num_elements) +
           mux_ge_per_input * static_cast<double>(num_elements) + control_ge;
}

double circuit_gate_equivalents(const Netlist& netlist) {
    double total = 0.0;
    for (const Gate& g : netlist.gates()) {
        total += cell_ge(g.type, g.fanin.size());
    }
    return total;
}

OverheadReport estimate_overhead(const Netlist& netlist,
                                 const MonitorPlacement& placement,
                                 const MonitorCostModel& model) {
    OverheadReport report;
    report.circuit_ge = circuit_gate_equivalents(netlist);
    report.num_monitors = placement.num_monitors();
    // config_delays holds the off state at index 0.
    report.delay_elements_per_monitor =
        placement.config_delays.empty() ? 0 : placement.config_delays.size() - 1;
    report.monitors_ge =
        static_cast<double>(report.num_monitors) *
        model.monitor_ge(report.delay_elements_per_monitor);
    report.area_overhead =
        report.circuit_ge > 0.0 ? report.monitors_ge / report.circuit_ge : 0.0;
    return report;
}

}  // namespace fastmon
