// Hardware overhead estimation for monitor insertion.
//
// The appeal of the paper's approach is *reuse*: the monitors are
// already in the design for aging prediction, so FAST gets their
// observability for free.  This model quantifies what that existing
// investment costs — shadow register, XOR comparator, delay elements
// and the selection MUX per monitor — in gate-equivalent area and
// leakage-power proxies, relative to the mission logic.  Useful for
// placement-fraction trade-off studies (see the config_sweep example).
#pragma once

#include <cstddef>

#include "monitor/placement.hpp"
#include "netlist/netlist.hpp"

namespace fastmon {

/// Per-monitor cost in gate equivalents (GE; 1 GE = one NAND2).
struct MonitorCostModel {
    double shadow_register_ge = 4.5;  ///< scan-capable FF
    double xor_ge = 2.5;
    double delay_element_ge = 1.5;    ///< per selectable element
    double mux_ge_per_input = 0.75;   ///< selection MUX
    double control_ge = 2.0;          ///< per-monitor config latch share

    /// GE cost of one monitor with `num_elements` delay elements.
    [[nodiscard]] double monitor_ge(std::size_t num_elements) const;
};

struct OverheadReport {
    double circuit_ge = 0.0;        ///< mission logic area (GE)
    double monitors_ge = 0.0;       ///< total monitor area (GE)
    double area_overhead = 0.0;     ///< monitors_ge / circuit_ge
    std::size_t num_monitors = 0;
    std::size_t delay_elements_per_monitor = 0;
};

/// Gate-equivalent area of the mission logic (sums per-cell GE factors).
double circuit_gate_equivalents(const Netlist& netlist);

/// Overhead of a placement on a circuit.
OverheadReport estimate_overhead(const Netlist& netlist,
                                 const MonitorPlacement& placement,
                                 const MonitorCostModel& model = {});

}  // namespace fastmon
