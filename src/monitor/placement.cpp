#include "monitor/placement.hpp"

#include <algorithm>
#include <cmath>

namespace fastmon {

MonitorPlacement place_monitors(const Netlist& netlist, const StaResult& sta,
                                double fraction,
                                std::span<const double> delay_fractions) {
    MonitorPlacement placement;
    const auto ops = netlist.observe_points();
    placement.monitored.assign(ops.size(), false);

    // Rank pseudo primary outputs by arrival time (long path ends).
    std::vector<std::uint32_t> pseudo;
    for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        if (ops[oi].is_pseudo) pseudo.push_back(oi);
    }
    std::stable_sort(pseudo.begin(), pseudo.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return sta.max_arrival[ops[a].signal] >
                                sta.max_arrival[ops[b].signal];
                     });
    const auto count = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(pseudo.size())));
    for (std::size_t i = 0; i < std::min(count, pseudo.size()); ++i) {
        placement.monitored[pseudo[i]] = true;
        placement.monitor_observes.push_back(pseudo[i]);
    }

    placement.config_delays.push_back(0.0);
    for (double f : delay_fractions) {
        placement.config_delays.push_back(f * sta.clock_period);
    }
    std::sort(placement.config_delays.begin(), placement.config_delays.end());
    return placement;
}

MonitorPlacement place_paper_monitors(const Netlist& netlist,
                                      const StaResult& sta) {
    return place_monitors(netlist, sta, 0.25, paper_delay_fractions());
}

}  // namespace fastmon
