// Monitor insertion.
//
// Following Sec. V (after Agarwal et al. [25]), monitors are integrated
// at "long path ends": the pseudo primary outputs (flip-flop D inputs)
// with the largest STA arrival times, covering a configurable fraction
// (paper: 25 %) of all pseudo primary outputs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "monitor/monitor.hpp"
#include "timing/sta.hpp"

namespace fastmon {

struct MonitorPlacement {
    /// Per observation-point index: carries a monitor?
    std::vector<bool> monitored;
    /// Indices (into Netlist::observe_points()) of monitored points,
    /// in decreasing path-length order.
    std::vector<std::uint32_t> monitor_observes;
    /// Shared configuration delays, index 0 = off (all monitors share
    /// one setting per test application, as assumed in Sec. IV-B).
    std::vector<Time> config_delays;

    [[nodiscard]] std::size_t num_monitors() const {
        return monitor_observes.size();
    }
    [[nodiscard]] Time max_delay() const {
        return config_delays.empty() ? 0.0 : config_delays.back();
    }
};

/// Places monitors on the top `fraction` of pseudo primary outputs by
/// arrival time.  `delay_fractions` are multiplied by the nominal clock
/// to obtain the configurable delay elements.
MonitorPlacement place_monitors(const Netlist& netlist, const StaResult& sta,
                                double fraction,
                                std::span<const double> delay_fractions);

/// Paper defaults: fraction 0.25, delays {0.05, 0.1, 0.15, 1/3} x clk.
MonitorPlacement place_paper_monitors(const Netlist& netlist,
                                      const StaResult& sta);

}  // namespace fastmon
