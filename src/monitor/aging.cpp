#include "monitor/aging.hpp"

#include <algorithm>
#include <cmath>

#include "util/prng.hpp"
#include "wearout/wearout.hpp"

namespace fastmon {

double AgingModel::factor(double years) const {
    if (years <= 0.0) return 1.0;
    return 1.0 + amplitude * pow_term(years);
}

double AgingModel::pow_term(double years) const {
    // Anchored at exactly 0.0 for years <= 0 (and NaN, via the negated
    // comparison): pow() of a negative ratio is NaN and pow(0, n) is 1
    // or inf for n <= 0 — none of which a phase boundary at t = 0
    // should ever observe.
    if (!(years > 0.0)) return 0.0;
    return std::pow(years / t_ref_years, exponent);
}

Time MarginalDefect::delta_at(double years) const {
    if (delta0 <= 0.0) return 0.0;
    const double exponent = growth_per_year * std::max(years, 0.0);
    if (delta_max > 0.0) {
        // Saturation test in the log domain: exp() at a multi-century
        // horizon overflows to inf long before std::min() could clamp.
        if (exponent >= std::log(delta_max / delta0)) return delta_max;
        return delta0 * std::exp(exponent);
    }
    // Unbounded defect: cap the magnification so extreme horizons
    // saturate at a huge finite delay instead of overflowing to inf.
    constexpr double kMaxLogMagnification = 600.0;  // e^600 ~ 3.8e260
    return delta0 * std::exp(std::min(exponent, kMaxLogMagnification));
}

Json LifetimePoint::to_json() const {
    Json j = Json::object();
    j.set("years", years);
    j.set("worst_monitored_arrival", worst_monitored_arrival);
    j.set("worst_arrival", worst_arrival);
    Json a = Json::array();
    for (bool alert : alerts) a.push_back(alert);
    j.set("alerts", std::move(a));
    j.set("timing_failure", timing_failure);
    return j;
}

std::optional<LifetimePoint> LifetimePoint::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* years = j.find("years");
    const Json* monitored = j.find("worst_monitored_arrival");
    const Json* worst = j.find("worst_arrival");
    const Json* alerts = j.find("alerts");
    const Json* failure = j.find("timing_failure");
    if (!years || !years->is_number() || !monitored ||
        !monitored->is_number() || !worst || !worst->is_number() ||
        !alerts || !alerts->is_array() || !failure || !failure->is_bool()) {
        return std::nullopt;
    }
    LifetimePoint point;
    point.years = years->as_number();
    point.worst_monitored_arrival = monitored->as_number();
    point.worst_arrival = worst->as_number();
    for (const Json& a : alerts->as_array()) {
        if (!a.is_bool()) return std::nullopt;
        point.alerts.push_back(a.as_bool());
    }
    point.timing_failure = failure->as_bool();
    return point;
}

void DeviceDegradation::reset(const Netlist& netlist, AgingModel model,
                              std::uint64_t seed,
                              const WearoutModel* wearout) {
    model_ = model;
    defects_.clear();
    // Per-gate aging-rate jitter: gates with high switching activity
    // (HCI) or high duty cycle (BTI) degrade faster; modelled as a
    // uniform +-50 % spread around the nominal rate.
    Prng rng(seed ^ 0xA61713ULL);
    activity_.resize(netlist.size());
    for (double& a : activity_) a = rng.uniform(0.5, 1.5);
    comb_gates_.clear();
    comb_activity_.clear();
    for (GateId id = 0; id < netlist.size(); ++id) {
        if (is_combinational(netlist.gate(id).type)) {
            comb_gates_.push_back(id);
            comb_activity_.push_back(activity_[id]);
        }
    }
    wearout_ = wearout;
    mech_stress_.clear();
    mech_stress_sum_.clear();
    device_scale_.clear();
    if (!wearout_) return;
    // Pack mechanism stress in comb-gate order on top of the legacy
    // jitter (so a constant activity profile degenerates to exactly
    // the jitter, and waveform-derived stress rides on it).
    const std::size_t n = comb_gates_.size();
    const std::size_t num_mechs = wearout_->num_mechanisms();
    mech_stress_.resize(num_mechs * n);
    mech_stress_sum_.assign(num_mechs, 0.0);
    for (std::size_t m = 0; m < num_mechs; ++m) {
        const std::vector<double>& gate_stress = wearout_->gate_stress(m);
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double s = gate_stress[comb_gates_[i]] * comb_activity_[i];
            mech_stress_[m * n + i] = s;
            sum += s;
        }
        mech_stress_sum_[m] = sum;
    }
    wearout_->device_scales(seed, device_scale_);
}

void DeviceDegradation::fill_delta(double years, DelayDelta& delta) const {
    if (wearout_) {
        fill_wearout(years, delta);
        return;
    }
    fill_from_factor(years, model_.factor(years), delta);
}

void DeviceDegradation::fill_delta(double years, DelayDelta& delta,
                                   double pow_term) const {
    if (wearout_) {
        // Mechanism curves are per-device (Weibull scales, mission
        // stress), so the batch-shared hint does not apply.
        fill_wearout(years, delta);
        return;
    }
    // Same expression tree as AgingModel::factor, with the caller's
    // precomputed (t / t_ref)^n — bit-identical when pow_term matches
    // model().pow_term(years).
    const double factor =
        years <= 0.0 ? 1.0 : 1.0 + model_.amplitude * pow_term;
    fill_from_factor(years, factor, delta);
}

double DeviceDegradation::mechanism_coefficient(std::size_t m,
                                                double years) const {
    const MechanismConfig& cfg = wearout_->mechanism(m);
    const double tau = wearout_->equivalent_years(m, years);
    if (!(tau > 0.0)) return 0.0;
    if (cfg.kind == MechanismKind::LegacyPowerLaw) {
        // The legacy knob rides the device's sampled AgingModel, and
        // reproduces fill_from_factor's rounding exactly — (1 + A*S) -
        // 1, not A*S — so a unit-rate mission with constant activity
        // is bit-identical to the profile-free path.
        return (1.0 + model_.amplitude * model_.pow_term(tau)) - 1.0;
    }
    return cfg.amplitude * device_scale_[m] * cfg.stress_integral(tau);
}

void DeviceDegradation::fill_wearout(double years, DelayDelta& delta) const {
    delta.uniform_scale = 1.0;
    const std::size_t n = comb_gates_.size();
    const std::size_t num_mechs = wearout_->num_mechanisms();
    coef_.resize(num_mechs);
    for (std::size_t m = 0; m < num_mechs; ++m) {
        coef_[m] = mechanism_coefficient(m, years);
    }
    delta.scales.resize(n);
    DelayDelta::GateScale* const scales = delta.scales.data();
    for (std::size_t i = 0; i < n; ++i) {
        // Contributions compose additively in registry order before
        // the single per-gate scale is formed (DESIGN.md section 12).
        double sum = 0.0;
        for (std::size_t m = 0; m < num_mechs; ++m) {
            sum += coef_[m] * mech_stress_[m * n + i];
        }
        scales[i] = DelayDelta::GateScale{comb_gates_[i], 1.0 + sum};
    }
    append_defects(years, delta);
}

const char* DeviceDegradation::dominant_mechanism(double years,
                                                  double* share) const {
    if (share) *share = 0.0;
    if (!wearout_) return nullptr;
    const std::size_t num_mechs = wearout_->num_mechanisms();
    double total = 0.0;
    double best = 0.0;
    std::size_t best_m = num_mechs;
    for (std::size_t m = 0; m < num_mechs; ++m) {
        // Total-delay attribution: coefficient x summed gate stress is
        // each mechanism's aggregate contribution to the device's
        // degradation at `years`.
        const double w = mechanism_coefficient(m, years) *
                         mech_stress_sum_[m];
        total += w;
        if (w > best) {
            best = w;
            best_m = m;
        }
    }
    if (best_m == num_mechs || !(total > 0.0)) return nullptr;
    if (share) *share = best / total;
    return mechanism_name(wearout_->mechanism(best_m).kind);
}

void DeviceDegradation::fill_from_factor(double years, double factor,
                                         DelayDelta& delta) const {
    // In-place refresh instead of clear() + push_back: the scale list's
    // shape (every combinational gate, ascending) is fixed per device
    // and this runs once per lane per grid year in the campaign hot
    // path.  Contents are bit-identical to the rebuild.
    delta.uniform_scale = 1.0;
    const double base_factor = factor - 1.0;
    const std::size_t n = comb_gates_.size();
    delta.scales.resize(n);
    DelayDelta::GateScale* const scales = delta.scales.data();
    for (std::size_t i = 0; i < n; ++i) {
        scales[i] = DelayDelta::GateScale{
            comb_gates_[i], 1.0 + base_factor * comb_activity_[i]};
    }
    append_defects(years, delta);
}

void DeviceDegradation::append_defects(double years,
                                       DelayDelta& delta) const {
    delta.extras.clear();
    for (const MarginalDefect& defect : defects_) {
        const Time extra = defect.delta_at(years);
        if (extra <= 0.0) continue;
        const std::uint32_t pin = defect.site.pin == FaultSite::kOutputPin
                                      ? DelayDelta::kAllPins
                                      : defect.site.pin;
        delta.add(defect.site.gate, pin, extra);
    }
}

LifetimeSimulator::LifetimeSimulator(const Netlist& netlist,
                                     const DelayAnnotation& base,
                                     Time clock_period, AgingModel model,
                                     std::uint64_t seed, StaEngine* engine,
                                     const WearoutModel* wearout)
    : netlist_(&netlist),
      base_(&base),
      clock_period_(clock_period),
      shared_engine_(engine) {
    degradation_.reset(netlist, model, seed, wearout);
    if (shared_engine_) shared_engine_->rebase(base);
}

StaEngine& LifetimeSimulator::engine() const {
    if (shared_engine_) return *shared_engine_;
    if (!owned_engine_) {
        // Monitor evaluation needs only arrival times; skip the
        // backward/path passes entirely.
        owned_engine_ = std::make_unique<StaEngine>(
            *netlist_, *base_, 1.0, StaEngine::Scope::Arrivals);
    }
    return *owned_engine_;
}

void LifetimeSimulator::fill_delta(double years, DelayDelta& delta) const {
    degradation_.fill_delta(years, delta);
}

DelayDelta LifetimeSimulator::degradation_delta(double years) const {
    DelayDelta delta;
    fill_delta(years, delta);
    return delta;
}

DelayAnnotation LifetimeSimulator::degraded(double years) const {
    fill_delta(years, scratch_delta_);
    return base_->transformed(scratch_delta_);
}

LifetimePoint LifetimeSimulator::evaluate(
    double years, const MonitorPlacement& placement) const {
    LifetimePoint point;
    evaluate_into(years, placement, point);
    return point;
}

void LifetimeSimulator::evaluate_into(double years,
                                      const MonitorPlacement& placement,
                                      LifetimePoint& out) const {
    fill_delta(years, scratch_delta_);
    const StaResult* sta = nullptr;
    StaResult rebuilt;
    if (sta_mode_ == StaMode::Incremental) {
        sta = &engine().update(scratch_delta_);
    } else {
        // Legacy reference path: transform a private annotation copy and
        // run a from-scratch pass (same arithmetic; bit-identical).
        const DelayAnnotation ann = base_->transformed(scratch_delta_);
        StaEngine full(*netlist_, ann, 1.0, StaEngine::Scope::Full);
        full.analyze();
        rebuilt = full.take_result();
        sta = &rebuilt;
    }

    out.years = years;
    out.worst_monitored_arrival = 0.0;
    out.worst_arrival = 0.0;
    const auto ops = netlist_->observe_points();
    for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        const Time arrival = sta->max_arrival[ops[oi].signal];
        out.worst_arrival = std::max(out.worst_arrival, arrival);
        if (oi < placement.monitored.size() && placement.monitored[oi]) {
            out.worst_monitored_arrival =
                std::max(out.worst_monitored_arrival, arrival);
        }
    }
    out.alerts.assign(placement.config_delays.size(), false);
    for (std::size_t c = 1; c < placement.config_delays.size(); ++c) {
        // Guard-band check: the latest monitored transition falls inside
        // the detection window (clk - d, clk].
        out.alerts[c] = out.worst_monitored_arrival >
                        clock_period_ - placement.config_delays[c];
    }
    out.timing_failure = out.worst_arrival > clock_period_;
}

std::vector<LifetimePoint> LifetimeSimulator::sweep(
    std::span<const double> years, const MonitorPlacement& placement) const {
    std::vector<LifetimePoint> points;
    points.reserve(years.size());
    for (double y : years) points.push_back(evaluate(y, placement));
    return points;
}

std::vector<double> LifetimeSimulator::first_alert_years(
    std::span<const double> years, const MonitorPlacement& placement) const {
    std::vector<double> first(placement.config_delays.size(), -1.0);
    for (const LifetimePoint& p : sweep(years, placement)) {
        for (std::size_t c = 0; c < p.alerts.size(); ++c) {
            if (p.alerts[c] && first[c] < 0.0) first[c] = p.years;
        }
    }
    return first;
}

}  // namespace fastmon
