#include "monitor/aging.hpp"

#include <algorithm>
#include <cmath>

#include "timing/sta.hpp"
#include "util/prng.hpp"

namespace fastmon {

double AgingModel::factor(double years) const {
    if (years <= 0.0) return 1.0;
    return 1.0 + amplitude * std::pow(years / t_ref_years, exponent);
}

Time MarginalDefect::delta_at(double years) const {
    if (delta0 <= 0.0) return 0.0;
    const double exponent = growth_per_year * std::max(years, 0.0);
    if (delta_max > 0.0) {
        // Saturation test in the log domain: exp() at a multi-century
        // horizon overflows to inf long before std::min() could clamp.
        if (exponent >= std::log(delta_max / delta0)) return delta_max;
        return delta0 * std::exp(exponent);
    }
    // Unbounded defect: cap the magnification so extreme horizons
    // saturate at a huge finite delay instead of overflowing to inf.
    constexpr double kMaxLogMagnification = 600.0;  // e^600 ~ 3.8e260
    return delta0 * std::exp(std::min(exponent, kMaxLogMagnification));
}

LifetimeSimulator::LifetimeSimulator(const Netlist& netlist,
                                     const DelayAnnotation& base,
                                     Time clock_period, AgingModel model,
                                     std::uint64_t seed)
    : netlist_(&netlist),
      base_(&base),
      clock_period_(clock_period),
      model_(model) {
    // Per-gate aging-rate jitter: gates with high switching activity
    // (HCI) or high duty cycle (BTI) degrade faster; modelled as a
    // uniform +-50 % spread around the nominal rate.
    Prng rng(seed ^ 0xA61713ULL);
    activity_.resize(netlist.size());
    for (double& a : activity_) a = rng.uniform(0.5, 1.5);
}

DelayAnnotation LifetimeSimulator::degraded(double years) const {
    DelayAnnotation ann = *base_;
    const double base_factor = model_.factor(years) - 1.0;
    for (GateId id = 0; id < netlist_->size(); ++id) {
        if (!is_combinational(netlist_->gate(id).type)) continue;
        ann.scale_gate(id, 1.0 + base_factor * activity_[id]);
    }
    for (const MarginalDefect& defect : defects_) {
        const Time extra = defect.delta_at(years);
        if (extra <= 0.0) continue;
        const Gate& g = netlist_->gate(defect.site.gate);
        if (defect.site.pin == FaultSite::kOutputPin) {
            for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
                PinDelay d = ann.arc(defect.site.gate, pin);
                d.rise += extra;
                d.fall += extra;
                ann.set_arc(defect.site.gate, pin, d);
            }
        } else {
            PinDelay d = ann.arc(defect.site.gate, defect.site.pin);
            d.rise += extra;
            d.fall += extra;
            ann.set_arc(defect.site.gate, defect.site.pin, d);
        }
    }
    return ann;
}

LifetimePoint LifetimeSimulator::evaluate(
    double years, const MonitorPlacement& placement) const {
    const DelayAnnotation ann = degraded(years);
    const StaResult sta = run_sta(*netlist_, ann, 1.0);

    LifetimePoint point;
    point.years = years;
    const auto ops = netlist_->observe_points();
    for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        const Time arrival = sta.max_arrival[ops[oi].signal];
        point.worst_arrival = std::max(point.worst_arrival, arrival);
        if (oi < placement.monitored.size() && placement.monitored[oi]) {
            point.worst_monitored_arrival =
                std::max(point.worst_monitored_arrival, arrival);
        }
    }
    point.alerts.assign(placement.config_delays.size(), false);
    for (std::size_t c = 1; c < placement.config_delays.size(); ++c) {
        // Guard-band check: the latest monitored transition falls inside
        // the detection window (clk - d, clk].
        point.alerts[c] = point.worst_monitored_arrival >
                          clock_period_ - placement.config_delays[c];
    }
    point.timing_failure = point.worst_arrival > clock_period_;
    return point;
}

std::vector<LifetimePoint> LifetimeSimulator::sweep(
    std::span<const double> years, const MonitorPlacement& placement) const {
    std::vector<LifetimePoint> points;
    points.reserve(years.size());
    for (double y : years) points.push_back(evaluate(y, placement));
    return points;
}

std::vector<double> LifetimeSimulator::first_alert_years(
    std::span<const double> years, const MonitorPlacement& placement) const {
    std::vector<double> first(placement.config_delays.size(), -1.0);
    for (const LifetimePoint& p : sweep(years, placement)) {
        for (std::size_t c = 0; c < p.alerts.size(); ++c) {
            if (p.alerts[c] && first[c] < 0.0) first[c] = p.years;
        }
    }
    return first;
}

}  // namespace fastmon
