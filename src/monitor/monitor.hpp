// Behavioral model of the programmable delay monitor (Fig. 2 of the
// paper, after Saliva et al. [6]).
//
// A monitor extends a standard capture flip-flop with a programmable
// delay element (MUX-selected), a shadow flip-flop sampling the delayed
// data signal D' = D(t - d), and an XOR comparing the two captures.
// In aging-prediction mode an alert means the signal toggled inside the
// detection window (guard band) of width d before the capture edge; in
// FAST reuse the shadow register acts as an extra observation point
// whose detection range is the flip-flop range shifted right by d.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/waveform.hpp"

namespace fastmon {

/// Monitor configuration index; 0 is the "monitor off" configuration
/// (delay 0: the shadow register mirrors the main flip-flop).
using ConfigIndex = std::uint16_t;

class ProgrammableDelayMonitor {
public:
    /// Creates a monitor with the given selectable delay elements
    /// (excluding the implicit off state).
    explicit ProgrammableDelayMonitor(std::vector<Time> delay_elements);

    /// Number of selectable configurations including "off".
    [[nodiscard]] std::size_t num_configs() const { return delays_.size(); }

    /// Delay of configuration c (0 for c == 0).
    [[nodiscard]] Time delay(ConfigIndex c) const { return delays_.at(c); }

    /// All configuration delays, index 0 first.
    [[nodiscard]] std::span<const Time> delays() const { return delays_; }

    /// Main flip-flop capture of data waveform `d` at capture time t.
    [[nodiscard]] static bool capture_main(const Waveform& d, Time t);

    /// Shadow register capture: the delayed signal D'(t) = D(t - delay).
    [[nodiscard]] bool capture_shadow(const Waveform& d, Time t,
                                      ConfigIndex c) const;

    /// Aging alert: XOR of main and shadow captures (Fig. 2 (a)).
    [[nodiscard]] bool alert(const Waveform& d, Time t, ConfigIndex c) const;

    /// Detection-window view of the same check: true iff the signal
    /// toggles an odd number of times within (t - delay, t]; equivalent
    /// to alert().
    [[nodiscard]] bool window_violation(const Waveform& d, Time t,
                                        ConfigIndex c) const;

private:
    std::vector<Time> delays_;  ///< [0, d1, d2, ...]
};

/// The paper's monitor: four delay elements
/// {0.05, 0.1, 0.15, 1/3} x clk (Sec. V).
ProgrammableDelayMonitor make_paper_monitor(Time clock_period);

/// The delay fractions of the paper's monitor.
std::span<const double> paper_delay_fractions();

}  // namespace fastmon
