// Wear-out and early-life degradation model — the prediction side of
// the paper's title.
//
// Aging mechanisms (BTI/HCI, Sec. I) gradually increase gate delays; a
// marginal device additionally carries a small defect whose delay grows
// quickly after deployment (the "hidden delay fault" that magnifies,
// Sec. I).  The LifetimeSimulator degrades an annotated netlist over
// operational time and evaluates the programmable monitors' guard-band
// checks: with a wide window (large delay element) the first alert
// fires early in the degradation (Fig. 2 (b)); after reconfiguration to
// a smaller element, the next alert indicates imminent failure
// (Fig. 2 (c)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "monitor/placement.hpp"
#include "sim/fault_sim.hpp"

namespace fastmon {

/// Power-law delay degradation: factor(t) = 1 + A * (t / t_ref)^n.
/// Typical BTI fits use n around 0.2-0.3 and A around 10 % at ten
/// years [1].
struct AgingModel {
    double amplitude = 0.10;
    double exponent = 0.25;
    double t_ref_years = 10.0;

    [[nodiscard]] double factor(double years) const;
};

/// An early-life marginal defect: initial extra delay delta0 at a fault
/// site, growing exponentially with operational time until saturation.
struct MarginalDefect {
    FaultSite site;
    Time delta0 = 0.0;              ///< extra delay at deployment
    double growth_per_year = 1.0;   ///< exponential growth rate
    Time delta_max = 0.0;           ///< saturation (0 = unbounded)

    [[nodiscard]] Time delta_at(double years) const;
};

/// State of the device at one point of its lifetime.
struct LifetimePoint {
    double years = 0.0;
    Time worst_monitored_arrival = 0.0;  ///< max arrival at monitored PPOs
    Time worst_arrival = 0.0;            ///< max arrival at any endpoint
    std::vector<bool> alerts;            ///< per configuration index
    bool timing_failure = false;         ///< worst_arrival exceeds the clock
};

class LifetimeSimulator {
public:
    /// `base` must be the annotation the clock was derived from;
    /// `clock_period` stays fixed over the lifetime (the deployed f_nom).
    LifetimeSimulator(const Netlist& netlist, const DelayAnnotation& base,
                      Time clock_period, AgingModel model,
                      std::uint64_t seed = 1);

    void add_defect(MarginalDefect defect) { defects_.push_back(defect); }

    /// Degraded annotation at `years` (aging factors plus defects).
    [[nodiscard]] DelayAnnotation degraded(double years) const;

    /// Evaluates monitors at `years`: a configuration alerts when the
    /// latest monitored transition violates its guard band, i.e.
    /// worst monitored arrival > clk - d_c.
    [[nodiscard]] LifetimePoint evaluate(double years,
                                         const MonitorPlacement& placement) const;

    [[nodiscard]] std::vector<LifetimePoint> sweep(
        std::span<const double> years,
        const MonitorPlacement& placement) const;

    /// First time (on the given grid) each configuration alerts;
    /// -1 if it never does.  Index 0 (off) never alerts.
    [[nodiscard]] std::vector<double> first_alert_years(
        std::span<const double> years,
        const MonitorPlacement& placement) const;

    [[nodiscard]] Time clock_period() const { return clock_period_; }

private:
    const Netlist* netlist_;
    const DelayAnnotation* base_;
    Time clock_period_;
    AgingModel model_;
    std::vector<double> activity_;  ///< per-gate aging-rate jitter
    std::vector<MarginalDefect> defects_;
};

}  // namespace fastmon
