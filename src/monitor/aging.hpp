// Wear-out and early-life degradation model — the prediction side of
// the paper's title.
//
// Aging mechanisms (BTI/HCI, Sec. I) gradually increase gate delays; a
// marginal device additionally carries a small defect whose delay grows
// quickly after deployment (the "hidden delay fault" that magnifies,
// Sec. I).  The LifetimeSimulator degrades an annotated netlist over
// operational time and evaluates the programmable monitors' guard-band
// checks: with a wide window (large delay element) the first alert
// fires early in the degradation (Fig. 2 (b)); after reconfiguration to
// a smaller element, the next alert indicates imminent failure
// (Fig. 2 (c)).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "monitor/placement.hpp"
#include "sim/fault_sim.hpp"
#include "timing/sta_engine.hpp"
#include "util/json.hpp"

namespace fastmon {

class WearoutModel;

/// Power-law delay degradation: factor(t) = 1 + A * (t / t_ref)^n.
/// Typical BTI fits use n around 0.2-0.3 and A around 10 % at ten
/// years [1].
struct AgingModel {
    double amplitude = 0.10;
    double exponent = 0.25;
    double t_ref_years = 10.0;

    [[nodiscard]] double factor(double years) const;

    /// The year-dependent part of factor(): (t / t_ref)^n for
    /// years > 0, exactly 0.0 at years <= 0 (and NaN) — so mission
    /// phases anchored at t = 0 and pre-deployment queries are safe
    /// for every exponent.  factor(years) == 1 + amplitude *
    /// pow_term(years) bit-for-bit, so a batch of devices differing
    /// only in amplitude (the campaign's per-device jitter) can share
    /// one pow() per year.
    [[nodiscard]] double pow_term(double years) const;
};

/// An early-life marginal defect: initial extra delay delta0 at a fault
/// site, growing exponentially with operational time until saturation.
struct MarginalDefect {
    FaultSite site;
    Time delta0 = 0.0;              ///< extra delay at deployment
    double growth_per_year = 1.0;   ///< exponential growth rate
    Time delta_max = 0.0;           ///< saturation (0 = unbounded)

    [[nodiscard]] Time delta_at(double years) const;
};

/// State of the device at one point of its lifetime.
struct LifetimePoint {
    double years = 0.0;
    Time worst_monitored_arrival = 0.0;  ///< max arrival at monitored PPOs
    Time worst_arrival = 0.0;            ///< max arrival at any endpoint
    std::vector<bool> alerts;            ///< per configuration index
    bool timing_failure = false;         ///< worst_arrival exceeds the clock

    [[nodiscard]] Json to_json() const;
    static std::optional<LifetimePoint> from_json(const Json& j);

    friend bool operator==(const LifetimePoint&,
                           const LifetimePoint&) = default;
};

/// Degradation state of one device: its aging model, per-gate
/// aging-rate jitter, and accumulated marginal defects.  Renders the
/// state at any lifetime point as a composable DelayDelta on the
/// device's base annotation — the single formula both the scalar
/// LifetimeSimulator and the batched campaign rollout evaluate, so the
/// two paths degrade bit-identically.  reset() reuses the internal
/// buffers, letting a batch lane cycle through many devices without
/// reallocating.
class DeviceDegradation {
public:
    /// Re-seeds the state for a new device.  The jitter draw order
    /// (one uniform per gate, ascending id, stream seed ^ 0xA61713) is
    /// part of the campaign determinism contract.  A non-null
    /// `wearout` switches the fill to the multi-mechanism path: the
    /// jitter draw is unchanged, per-mechanism stress is packed on top
    /// of it, and the device's Weibull severity scales are drawn from
    /// their own substreams (seed, wearout tag + mechanism).
    void reset(const Netlist& netlist, AgingModel model, std::uint64_t seed,
               const WearoutModel* wearout = nullptr);

    void add_defect(MarginalDefect defect) { defects_.push_back(defect); }

    /// Overwrites `delta` with the degradation at `years`: per-gate
    /// aging scales (ascending id) then defect extras (entry order).
    /// With wear-out enabled the per-gate factor composes every
    /// mechanism: 1 + sum_m coef_m(t) * stress_m[gate].
    void fill_delta(double years, DelayDelta& delta) const;

    /// Same, with the caller's precomputed model().pow_term(years):
    /// lanes of a batch at the same grid year differ only in amplitude
    /// and jitter, so one pow() serves the whole batch.  Bit-identical
    /// to the two-argument overload when pow_term matches.  Under
    /// wear-out the hint is ignored (mechanism curves are per-device);
    /// BatchRollout disables its shared-term shortcut accordingly.
    void fill_delta(double years, DelayDelta& delta, double pow_term) const;

    /// Name of the mechanism contributing the largest total delay
    /// degradation at `years` (coef_m(t) x summed gate stress), with
    /// its contribution share in `share` if non-null.  nullptr when
    /// wear-out is off or nothing has degraded yet.
    [[nodiscard]] const char* dominant_mechanism(
        double years, double* share = nullptr) const;

    [[nodiscard]] const AgingModel& model() const { return model_; }
    [[nodiscard]] const WearoutModel* wearout() const { return wearout_; }
    [[nodiscard]] const std::vector<MarginalDefect>& defects() const {
        return defects_;
    }

private:
    void fill_from_factor(double years, double factor,
                          DelayDelta& delta) const;
    void fill_wearout(double years, DelayDelta& delta) const;
    void append_defects(double years, DelayDelta& delta) const;
    [[nodiscard]] double mechanism_coefficient(std::size_t m,
                                               double years) const;
    AgingModel model_;
    std::vector<double> activity_;    ///< per-gate aging-rate jitter
    std::vector<GateId> comb_gates_;  ///< aging targets, ascending
    /// activity_[comb_gates_[i]] packed for the fill loop.
    std::vector<double> comb_activity_;
    std::vector<MarginalDefect> defects_;
    /// Multi-mechanism wear-out state (null = legacy single-knob path).
    const WearoutModel* wearout_ = nullptr;
    /// Mechanism m's stress at packed gate i (gate stress x jitter),
    /// at [m * comb_gates_.size() + i].
    std::vector<double> mech_stress_;
    std::vector<double> mech_stress_sum_;  ///< per-mechanism attribution
    std::vector<double> device_scale_;     ///< per-mechanism Weibull draw
    mutable std::vector<double> coef_;     ///< per-fill scratch
};

class LifetimeSimulator {
public:
    /// How evaluate() obtains arrival times.  Incremental (default)
    /// applies each year's degradation as a DelayDelta to a persistent
    /// StaEngine; FullRebuild copies + transforms the annotation and
    /// runs a from-scratch pass (the legacy cost profile, kept as the
    /// differential reference).  Both produce bit-identical points.
    enum class StaMode : std::uint8_t { Incremental, FullRebuild };

    /// `base` must be the annotation the clock was derived from;
    /// `clock_period` stays fixed over the lifetime (the deployed f_nom).
    /// A non-null `engine` (constructed for the same netlist, margin
    /// 1.0) is rebased to `base` and reused — the campaign shares one
    /// engine per worker across its whole device shard.  A non-null
    /// `wearout` degrades via the multi-mechanism registry instead of
    /// the single power-law knob.
    LifetimeSimulator(const Netlist& netlist, const DelayAnnotation& base,
                      Time clock_period, AgingModel model,
                      std::uint64_t seed = 1, StaEngine* engine = nullptr,
                      const WearoutModel* wearout = nullptr);

    void add_defect(MarginalDefect defect) {
        degradation_.add_defect(defect);
    }

    void set_sta_mode(StaMode mode) { sta_mode_ = mode; }
    [[nodiscard]] StaMode sta_mode() const { return sta_mode_; }

    /// The device's degradation state at `years` (aging factors plus
    /// defect extras) as a composable delta on the base annotation.
    [[nodiscard]] DelayDelta degradation_delta(double years) const;

    /// Degraded annotation at `years` (base transformed by the delta).
    [[nodiscard]] DelayAnnotation degraded(double years) const;

    /// Evaluates monitors at `years`: a configuration alerts when the
    /// latest monitored transition violates its guard band, i.e.
    /// worst monitored arrival > clk - d_c.
    [[nodiscard]] LifetimePoint evaluate(double years,
                                         const MonitorPlacement& placement) const;

    /// Allocation-free variant for tight grid loops: overwrites `out`
    /// (reusing its alerts buffer) with the state at `years`.  The
    /// campaign rollout reuses one point across a device's whole grid.
    void evaluate_into(double years, const MonitorPlacement& placement,
                       LifetimePoint& out) const;

    [[nodiscard]] std::vector<LifetimePoint> sweep(
        std::span<const double> years,
        const MonitorPlacement& placement) const;

    /// First time (on the given grid) each configuration alerts;
    /// -1 if it never does.  Index 0 (off) never alerts.
    [[nodiscard]] std::vector<double> first_alert_years(
        std::span<const double> years,
        const MonitorPlacement& placement) const;

    [[nodiscard]] Time clock_period() const { return clock_period_; }
    [[nodiscard]] const DeviceDegradation& degradation() const {
        return degradation_;
    }

private:
    void fill_delta(double years, DelayDelta& delta) const;
    StaEngine& engine() const;

    const Netlist* netlist_;
    const DelayAnnotation* base_;
    Time clock_period_;
    DeviceDegradation degradation_;
    StaMode sta_mode_ = StaMode::Incremental;
    /// Engine shared by the caller (campaign worker shard), or lazily
    /// owned.  Mutated from const evaluate(): the simulator is
    /// logically const but caches timing state; not thread-safe per
    /// instance (each campaign worker owns its simulators).
    StaEngine* shared_engine_ = nullptr;
    mutable std::unique_ptr<StaEngine> owned_engine_;
    mutable DelayDelta scratch_delta_;
};

}  // namespace fastmon
