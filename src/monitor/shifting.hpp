// Detection-range shifting (Sec. III-B).
//
// The shadow register of a monitor observes the data signal delayed by
// the selected element d, so its detection range is the flip-flop range
// shifted right:  I_SR(phi, o) = I_FF(phi, o) + d.  Across all
// configurations C:  I_SR(phi, o) = U_{d in C} [I_FF(phi, o) + d], and
// the full observable range of a fault is I_FF U I_SR.
#pragma once

#include <span>

#include "fault/detection_range.hpp"
#include "monitor/placement.hpp"

namespace fastmon {

/// Union of `base` shifted by every configuration delay (index 0, the
/// off state, contributes the unshifted set).
IntervalSet shifted_union(const IntervalSet& base,
                          std::span<const Time> config_delays);

/// Full observable detection range of a fault with monitors:
/// I_FF  U  U_c (I_SR + d_c).
IntervalSet full_detection_range(const FaultRanges& ranges,
                                 std::span<const Time> config_delays);

/// The FAST observation window (t_min, t_nom]: times t with
/// t_nom / fmax_factor < t <= t_nom, as a (half-open, epsilon-padded)
/// interval usable with IntervalSet::intersects.
Interval fast_window(Time t_nom, double fmax_factor);

/// True iff the range allows detection exactly at the nominal period
/// (at-speed detection, relevant for removing monitor-at-speed
/// detectable faults from the FAST target set).
bool detects_at_speed(const IntervalSet& range, Time t_nom);

}  // namespace fastmon
