#include "monitor/monitor.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace fastmon {

ProgrammableDelayMonitor::ProgrammableDelayMonitor(
    std::vector<Time> delay_elements) {
    delays_.reserve(delay_elements.size() + 1);
    delays_.push_back(0.0);
    for (Time d : delay_elements) {
        if (d <= 0.0) {
            throw std::invalid_argument("monitor delay elements must be > 0");
        }
        delays_.push_back(d);
    }
    std::sort(delays_.begin(), delays_.end());
}

bool ProgrammableDelayMonitor::capture_main(const Waveform& d, Time t) {
    return d.value_at(t);
}

bool ProgrammableDelayMonitor::capture_shadow(const Waveform& d, Time t,
                                              ConfigIndex c) const {
    return d.value_at(t - delays_.at(c));
}

bool ProgrammableDelayMonitor::alert(const Waveform& d, Time t,
                                     ConfigIndex c) const {
    return capture_main(d, t) != capture_shadow(d, t, c);
}

bool ProgrammableDelayMonitor::window_violation(const Waveform& d, Time t,
                                                ConfigIndex c) const {
    // Odd number of toggles in (t - delay, t] flips the value between
    // the two captures.
    const Time lo = t - delays_.at(c);
    std::size_t toggles = 0;
    for (Time tt : d.transitions()) {
        if (tt > lo + kTimeEps && tt <= t + kTimeEps) ++toggles;
        if (tt > t + kTimeEps) break;
    }
    return (toggles % 2) == 1;
}

ProgrammableDelayMonitor make_paper_monitor(Time clock_period) {
    std::vector<Time> elements;
    for (double f : paper_delay_fractions()) {
        elements.push_back(f * clock_period);
    }
    return ProgrammableDelayMonitor(std::move(elements));
}

std::span<const double> paper_delay_fractions() {
    static constexpr std::array<double, 4> kFractions = {0.05, 0.10, 0.15,
                                                         1.0 / 3.0};
    return kFractions;
}

}  // namespace fastmon
