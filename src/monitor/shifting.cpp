#include "monitor/shifting.hpp"

#include <algorithm>

namespace fastmon {

IntervalSet shifted_union(const IntervalSet& base,
                          std::span<const Time> config_delays) {
    IntervalSet out;
    for (Time d : config_delays) {
        IntervalSet shifted = base;
        shifted.shift(d);
        out.unite(shifted);
    }
    return out;
}

IntervalSet full_detection_range(const FaultRanges& ranges,
                                 std::span<const Time> config_delays) {
    IntervalSet out = ranges.ff;
    out.unite(shifted_union(ranges.sr, config_delays));
    return out;
}

Interval fast_window(Time t_nom, double fmax_factor) {
    // Half-open [lo, hi) approximating (t_min, t_nom]: nudge so that
    // t_min itself is excluded and t_nom itself is included.  The min()
    // keeps the window non-empty when fmax == fnom, where it degenerates
    // to (essentially) the single at-speed observation time t_nom.
    const Time t_min = t_nom / fmax_factor;
    const Time nudge = 1e-6 * t_nom;
    return Interval{std::min(t_min + nudge, t_nom), t_nom + nudge};
}

bool detects_at_speed(const IntervalSet& range, Time t_nom) {
    return range.contains(t_nom);
}

}  // namespace fastmon
