// Closed-loop in-field monitoring policy.
//
// Implements the operating procedure the paper sketches around Fig. 2:
// start with the widest guard band to sense the initial degradation
// state; on an alert, (a) trigger an aging countermeasure — frequency
// or voltage scaling that slows further degradation — and (b)
// reconfigure the monitor to the next narrower guard band to track the
// remaining margin; the final (narrowest) band's alert flags imminent
// failure.  The policy also produces a remaining-useful-life estimate
// from the observed arrival trend.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/aging.hpp"

namespace fastmon {

struct PolicyConfig {
    /// Fraction by which each triggered countermeasure slows subsequent
    /// aging (0.5 = the degradation rate halves).
    double countermeasure_rate_scale = 0.5;
    /// Lifetime grid step (years).
    double step_years = 0.1;
    double horizon_years = 15.0;
};

enum class PolicyEventKind : std::uint8_t {
    Alert,              ///< guard band violated at the current config
    Countermeasure,     ///< aging mitigation engaged
    Reconfigure,        ///< switched to a narrower guard band
    ImminentFailure,    ///< narrowest guard band violated
    TimingFailure,      ///< worst arrival exceeded the clock
};

struct PolicyEvent {
    double years = 0.0;
    PolicyEventKind kind = PolicyEventKind::Alert;
    ConfigIndex config = 0;  ///< active configuration at the event
};

std::string to_string(PolicyEventKind kind);

struct PolicyRun {
    std::vector<PolicyEvent> events;
    /// -1 if the device survives the horizon.
    double failure_years = -1.0;
    double imminent_failure_years = -1.0;
    /// Linear-trend remaining-useful-life estimate made at the first
    /// alert (-1 if never alerted or trend flat).
    double predicted_failure_years = -1.0;

    [[nodiscard]] bool failed() const { return failure_years >= 0.0; }
    /// Warning time between the imminent-failure alert and the actual
    /// failure (-1 if either never happened).
    [[nodiscard]] double warning_years() const {
        if (failure_years < 0.0 || imminent_failure_years < 0.0) return -1.0;
        return failure_years - imminent_failure_years;
    }
};

/// Runs the adaptive policy over the device lifetime.  `simulator`
/// provides the degradation physics; countermeasures are modelled by
/// stretching the effective aging time (rate scaling), so the
/// simulator itself stays immutable.
PolicyRun run_adaptive_policy(const LifetimeSimulator& simulator,
                              const MonitorPlacement& placement,
                              const PolicyConfig& config = {});

}  // namespace fastmon
