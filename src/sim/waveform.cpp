#include "sim/waveform.hpp"

#include <algorithm>
#include <cmath>

namespace fastmon {

Waveform Waveform::constant(bool value) {
    Waveform w;
    w.initial_ = value;
    return w;
}

Waveform Waveform::step(bool initial, Time t) {
    Waveform w;
    w.initial_ = initial;
    w.transitions_.push_back(t);
    return w;
}

Waveform Waveform::from_events(bool initial,
                               std::span<const std::pair<Time, bool>> events) {
    Waveform w;
    w.initial_ = initial;
    bool value = initial;
    for (const auto& [t, v] : events) {
        if (v == value) continue;
        // A toggle landing at (or before) the previous one cancels it
        // (the later-scheduled value wins at equal times).
        if (!w.transitions_.empty() && t <= w.transitions_.back() + kTimeEps) {
            w.transitions_.pop_back();
        } else {
            w.transitions_.push_back(t);
        }
        value = v;
    }
    return w;
}

bool Waveform::value_at(Time t) const {
    const auto it = std::upper_bound(transitions_.begin(), transitions_.end(),
                                     t + kTimeEps);
    const auto toggles = static_cast<std::size_t>(it - transitions_.begin());
    return (toggles % 2 == 0) ? initial_ : !initial_;
}

void Waveform::filter_pulses(Time min_width) {
    if (min_width <= 0.0 || transitions_.size() < 2) return;
    std::vector<Time> kept;
    kept.reserve(transitions_.size());
    for (Time t : transitions_) {
        if (!kept.empty() && t - kept.back() < min_width - kTimeEps) {
            kept.pop_back();  // the pulse [back, t) is swallowed
        } else {
            kept.push_back(t);
        }
    }
    transitions_ = std::move(kept);
}

Waveform Waveform::with_slowed_edges(bool rising, Time delta) const {
    // Delay the affected edge direction; when a delayed edge is
    // overtaken by its successor, the pulse between them is swallowed
    // (a delay element cannot emit an end-of-pulse before the pulse
    // started).  Classic edge-cancellation stack: edges arrive in the
    // original order; an edge landing at or before the previous
    // surviving edge cancels it, removing the pulse pair.
    Waveform w;
    w.initial_ = initial_;
    bool value = initial_;
    for (Time t : transitions_) {
        value = !value;
        const Time shifted = value == rising ? t + delta : t;
        if (!w.transitions_.empty() &&
            shifted <= w.transitions_.back() + kTimeEps) {
            w.transitions_.pop_back();
        } else {
            w.transitions_.push_back(shifted);
        }
    }
    return w;
}

Waveform Waveform::xor_of(const Waveform& a, const Waveform& b) {
    // XOR toggles whenever either operand toggles; simultaneous toggles
    // cancel.
    Waveform w;
    w.initial_ = a.initial_ != b.initial_;
    w.transitions_.reserve(a.transitions_.size() + b.transitions_.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.transitions_.size() || j < b.transitions_.size()) {
        Time t = 0.0;
        if (j == b.transitions_.size()) {
            t = a.transitions_[i++];
        } else if (i == a.transitions_.size()) {
            t = b.transitions_[j++];
        } else if (std::abs(a.transitions_[i] - b.transitions_[j]) <= kTimeEps) {
            // Simultaneous toggles in both operands: XOR unchanged.
            ++i;
            ++j;
            continue;
        } else if (a.transitions_[i] < b.transitions_[j]) {
            t = a.transitions_[i++];
        } else {
            t = b.transitions_[j++];
        }
        w.transitions_.push_back(t);
    }
    return w;
}

IntervalSet Waveform::ones(Time horizon) const {
    IntervalSet s;
    bool value = initial_;
    Time start = value ? 0.0 : -1.0;
    for (Time t : transitions_) {
        if (t >= horizon) break;
        value = !value;
        if (value) {
            start = std::max(t, 0.0);
        } else if (start >= 0.0) {
            s.add(start, t);
            start = -1.0;
        }
    }
    if (value && start >= 0.0 && start < horizon) {
        s.add(start, horizon);
    }
    return s;
}

}  // namespace fastmon
