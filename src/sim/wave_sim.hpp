// Timing-accurate full-waveform simulation of pattern pairs.
//
// For a test pattern pair (v1, v2) every combinational source carries a
// step waveform (value v1, toggling to v2 at the launch edge t = 0).
// Gates are evaluated in topological order; each gate maps its fanin
// waveforms to an output waveform using the annotated pin-to-pin
// rise/fall delays, followed by inertial pulse filtering.  This is the
// CPU equivalent of the GPU waveform simulator the paper uses [20].
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic_sim.hpp"
#include "sim/waveform.hpp"
#include "timing/delay_model.hpp"

namespace fastmon {

struct WaveSimConfig {
    /// Pulses narrower than this fraction of the gate's mean arc delay
    /// are swallowed at the gate output (inertial delay model).
    /// 0 disables gate-level filtering.
    double inertial_fraction = 0.4;
};

class WaveSim {
public:
    WaveSim(const Netlist& netlist, const DelayAnnotation& delays,
            WaveSimConfig config = {});

    /// Waveforms of all nodes for the pattern pair (v1, v2); both
    /// vectors are indexed like Netlist::comb_sources().
    /// Output/Dff nodes mirror their fanin waveform (zero-delay pads).
    [[nodiscard]] std::vector<Waveform> simulate(
        std::span<const Bit> v1, std::span<const Bit> v2) const;

    /// Evaluates one gate from explicit fanin waveforms.
    /// `pin_override` (optional) substitutes the waveform seen by one
    /// pin — the hook used to inject input-pin delay faults.
    [[nodiscard]] Waveform eval_gate(
        GateId gate, std::span<const Waveform* const> fanin_waves) const;

    [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
    [[nodiscard]] const DelayAnnotation& delays() const { return *delays_; }
    [[nodiscard]] const WaveSimConfig& config() const { return config_; }

    /// The inertial threshold applied at the output of `gate`.
    [[nodiscard]] Time inertial_threshold(GateId gate) const;

private:
    const Netlist* netlist_;
    const DelayAnnotation* delays_;
    WaveSimConfig config_;
};

}  // namespace fastmon
