#include "sim/wave_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fastmon {

WaveSim::WaveSim(const Netlist& netlist, const DelayAnnotation& delays,
                 WaveSimConfig config)
    : netlist_(&netlist), delays_(&delays), config_(config) {
    if (!netlist.finalized()) {
        throw std::logic_error("WaveSim requires a finalized netlist");
    }
}

Time WaveSim::inertial_threshold(GateId gate) const {
    if (config_.inertial_fraction <= 0.0) return 0.0;
    const Gate& g = netlist_->gate(gate);
    if (!is_combinational(g.type) || g.fanin.empty()) return 0.0;
    Time mean = 0.0;
    for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
        const PinDelay d = delays_->arc(gate, pin);
        mean += 0.5 * (d.rise + d.fall);
    }
    mean /= static_cast<Time>(g.fanin.size());
    return config_.inertial_fraction * mean;
}

Waveform WaveSim::eval_gate(
    GateId gate, std::span<const Waveform* const> fanin_waves) const {
    const Gate& g = netlist_->gate(gate);
    assert(fanin_waves.size() == g.fanin.size());

    if (!is_combinational(g.type)) {
        // Output pads and DFF D pins observe their fanin directly.
        return *fanin_waves[0];
    }

    const auto arity = static_cast<std::uint32_t>(g.fanin.size());

    // Gather all input events: (input time, pin).
    struct InEvent {
        Time t;
        std::uint32_t pin;
    };
    std::vector<InEvent> in_events;
    for (std::uint32_t pin = 0; pin < arity; ++pin) {
        for (Time t : fanin_waves[pin]->transitions()) {
            in_events.push_back(InEvent{t, pin});
        }
    }
    std::sort(in_events.begin(), in_events.end(),
              [](const InEvent& a, const InEvent& b) { return a.t < b.t; });

    // Walk input events in time order, tracking the instantaneous input
    // state; every change of the output function value produces an
    // output event delayed by the causing pin's arc.
    bool state[8];
    for (std::uint32_t pin = 0; pin < arity; ++pin) {
        state[pin] = fanin_waves[pin]->initial();
    }
    bool out_value = eval_cell(g.type, std::span<const bool>(state, arity));
    const bool out_initial = out_value;

    // Preemptive transition scheduling: an output event computed from a
    // later input state supersedes any pending output event at an equal
    // or later time (unequal pin delays can schedule out of order; the
    // newest computation of the output value wins).
    std::vector<std::pair<Time, bool>> pending;  // (time, value-after)
    auto scheduled_value = [&pending, out_initial] {
        return pending.empty() ? out_initial : pending.back().second;
    };
    std::size_t i = 0;
    while (i < in_events.size()) {
        // Group input events within the comparison tolerance.
        const Time t = in_events[i].t;
        Time min_delay_rise = std::numeric_limits<Time>::max();
        Time min_delay_fall = std::numeric_limits<Time>::max();
        while (i < in_events.size() && in_events[i].t <= t + kTimeEps) {
            const std::uint32_t pin = in_events[i].pin;
            state[pin] = !state[pin];
            const PinDelay d = delays_->arc(gate, pin);
            min_delay_rise = std::min(min_delay_rise, d.rise);
            min_delay_fall = std::min(min_delay_fall, d.fall);
            ++i;
        }
        const bool v = eval_cell(g.type, std::span<const bool>(state, arity));
        if (v == out_value) continue;
        out_value = v;
        const Time when = t + (v ? min_delay_rise : min_delay_fall);
        while (!pending.empty() && pending.back().first >= when - kTimeEps) {
            pending.pop_back();
        }
        if (v != scheduled_value()) pending.emplace_back(when, v);
    }

    Waveform out = Waveform::from_events(out_initial, pending);
    out.filter_pulses(inertial_threshold(gate));
    return out;
}

std::vector<Waveform> WaveSim::simulate(std::span<const Bit> v1,
                                        std::span<const Bit> v2) const {
    const Netlist& nl = *netlist_;
    assert(v1.size() == nl.comb_sources().size());
    assert(v2.size() == v1.size());

    std::vector<Waveform> waves(nl.size(), Waveform::constant(false));
    std::vector<const Waveform*> fanin_waves;
    for (GateId id : nl.topo_order()) {
        const Gate& g = nl.gate(id);
        const std::uint32_t src = nl.source_index(id);
        if (src != std::numeric_limits<std::uint32_t>::max()) {
            waves[id] = v1[src] == v2[src]
                            ? Waveform::constant(v1[src] != 0)
                            : Waveform::step(v1[src] != 0, 0.0);
            continue;
        }
        fanin_waves.clear();
        for (GateId f : g.fanin) fanin_waves.push_back(&waves[f]);
        waves[id] = eval_gate(id, fanin_waves);
    }
    return waves;
}

}  // namespace fastmon
